//! Loss functions, built from differentiable tape primitives.

use relgraph_tensor::{Graph, Var};

/// Binary cross-entropy with logits, mean-reduced:
/// `mean(softplus(x) − x·y)` for targets `y ∈ {0,1}` (the numerically stable
/// form of `−[y·ln σ(x) + (1−y)·ln(1−σ(x))]`).
pub fn bce_with_logits(g: &mut Graph, logits: Var, targets: Var) -> Var {
    let sp = g.softplus(logits);
    let xy = g.mul(logits, targets);
    let diff = g.sub(sp, xy);
    g.mean_all(diff)
}

/// Multi-class cross-entropy from logits (`n×k`) and one-hot targets
/// (`n×k`), mean-reduced over rows.
pub fn softmax_cross_entropy(g: &mut Graph, logits: Var, one_hot: Var) -> Var {
    let rows = g.value(logits).rows().max(1) as f64;
    let ls = g.log_softmax(logits);
    let picked = g.mul(ls, one_hot);
    let total = g.sum_all(picked);
    g.scale(total, -1.0 / rows)
}

/// Mean squared error.
pub fn mse(g: &mut Graph, pred: Var, target: Var) -> Var {
    let d = g.sub(pred, target);
    let sq = g.mul(d, d);
    g.mean_all(sq)
}

/// Mean Huber loss with threshold `delta` (robust regression).
pub fn huber(g: &mut Graph, pred: Var, target: Var, delta: f64) -> Var {
    let h = g.huber(pred, target, delta).expect("huber shape mismatch");
    g.mean_all(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_tensor::Tensor;

    #[test]
    fn bce_matches_manual_computation() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[0.0], &[2.0]]));
        let y = g.constant(Tensor::from_rows(&[&[1.0], &[0.0]]));
        let l = bce_with_logits(&mut g, x, y);
        // x=0,y=1: softplus(0) - 0 = ln 2. x=2,y=0: softplus(2).
        let expected = ((2.0_f64).ln() + (1.0 + 2.0_f64.exp()).ln()) / 2.0;
        assert!((g.value(l).item() - expected).abs() < 1e-12);
    }

    #[test]
    fn bce_is_zero_for_perfect_confident_predictions() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[50.0], &[-50.0]]));
        let y = g.constant(Tensor::from_rows(&[&[1.0], &[0.0]]));
        let l = bce_with_logits(&mut g, x, y);
        assert!(g.value(l).item() < 1e-9);
    }

    #[test]
    fn cross_entropy_equals_neg_log_prob() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = g.constant(Tensor::from_rows(&[&[0.0, 0.0, 1.0]]));
        let l = softmax_cross_entropy(&mut g, x, y);
        let z: f64 = [1.0, 2.0, 3.0].iter().map(|&v: &f64| v.exp()).sum();
        let expected = -(3.0_f64.exp() / z).ln();
        assert!((g.value(l).item() - expected).abs() < 1e-12);
    }

    #[test]
    fn mse_known_value() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_rows(&[&[1.0, 3.0]]));
        let t = g.constant(Tensor::from_rows(&[&[0.0, 0.0]]));
        let l = mse(&mut g, p, t);
        assert!((g.value(l).item() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn losses_are_differentiable() {
        for which in 0..4 {
            let mut g = Graph::new();
            let p = g.leaf(Tensor::from_rows(&[&[0.3, -0.7]]));
            let t = g.constant(Tensor::from_rows(&[&[1.0, 0.0]]));
            let l = match which {
                0 => bce_with_logits(&mut g, p, t),
                1 => softmax_cross_entropy(&mut g, p, t),
                2 => mse(&mut g, p, t),
                _ => huber(&mut g, p, t, 1.0),
            };
            g.backward(l).unwrap();
            let grad = g.grad(p).expect("gradient exists");
            assert!(grad.all_finite());
            assert!(grad.norm() > 0.0, "loss {which} has zero gradient");
        }
    }
}
