//! Property-based tests for layers, losses and optimizers.

use proptest::prelude::*;
use relgraph_nn::{
    clip_global_norm, loss, Activation, Adam, Binding, Linear, Mlp, Optimizer, ParamSet, Sgd,
};
use relgraph_tensor::{Graph, Tensor};

fn input_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..5).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f64..2.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_forward_shape_and_determinism(x in input_tensor(), seed in 0u64..1000) {
        let mut ps = ParamSet::new();
        let l = Linear::new(&mut ps, "l", x.cols(), 3, seed);
        let run = |ps: &ParamSet| {
            let mut g = Graph::new();
            let mut b = Binding::new();
            let xv = g.constant(x.clone());
            let y = l.forward(&mut g, &mut b, ps, xv);
            g.value(y).clone()
        };
        let a = run(&ps);
        prop_assert_eq!(a.shape(), (x.rows(), 3));
        prop_assert_eq!(a, run(&ps)); // same params, same output
    }

    #[test]
    fn mlp_output_finite(x in input_tensor(), seed in 0u64..1000) {
        let mut ps = ParamSet::new();
        let mlp = Mlp::new(&mut ps, &[x.cols(), 8, 2], Activation::Relu, seed);
        let mut g = Graph::new();
        let mut b = Binding::new();
        let xv = g.constant(x.clone());
        let y = mlp.forward(&mut g, &mut b, &ps, xv);
        prop_assert!(g.value(y).all_finite());
        prop_assert_eq!(g.value(y).shape(), (x.rows(), 2));
    }

    #[test]
    fn bce_nonnegative_and_zero_iff_perfect(
        logits in proptest::collection::vec(-5.0f64..5.0, 1..20),
        labels in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let n = logits.len().min(labels.len());
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(n, 1, logits[..n].to_vec()));
        let y = g.constant(Tensor::from_vec(
            n,
            1,
            labels[..n].iter().map(|&l| if l { 1.0 } else { 0.0 }).collect(),
        ));
        let l = loss::bce_with_logits(&mut g, x, y);
        prop_assert!(g.value(l).item() >= 0.0);
    }

    #[test]
    fn mse_is_symmetric(
        a in proptest::collection::vec(-5.0f64..5.0, 1..20),
        b in proptest::collection::vec(-5.0f64..5.0, 1..20),
    ) {
        let n = a.len().min(b.len());
        let run = |p: &[f64], t: &[f64]| {
            let mut g = Graph::new();
            let pv = g.leaf(Tensor::from_vec(n, 1, p[..n].to_vec()));
            let tv = g.constant(Tensor::from_vec(n, 1, t[..n].to_vec()));
            let l = loss::mse(&mut g, pv, tv);
            g.value(l).item()
        };
        let ab = run(&a, &b);
        let ba = run(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn sgd_step_moves_against_gradient(start in -5.0f64..5.0, lr in 0.001f64..0.1) {
        // loss = x², grad = 2x: one step must shrink |x| (lr < 1/L).
        let mut ps = ParamSet::new();
        let id = ps.register("x", Tensor::scalar(start));
        ps.grad_mut(id).data_mut()[0] = 2.0 * start;
        Sgd::new(lr).step(&mut ps);
        prop_assert!(ps.value(id).item().abs() <= start.abs() + 1e-12);
    }

    #[test]
    fn adam_converges_on_quadratic(start in -10.0f64..10.0) {
        let mut ps = ParamSet::new();
        let id = ps.register("x", Tensor::scalar(start));
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            let x = ps.value(id).item();
            ps.grad_mut(id).data_mut()[0] = 2.0 * x;
            opt.step(&mut ps);
        }
        prop_assert!(ps.value(id).item().abs() < 0.1, "ended at {}", ps.value(id).item());
    }

    #[test]
    fn clip_never_increases_norm(
        grads in proptest::collection::vec(-10.0f64..10.0, 1..10),
        cap in 0.1f64..20.0,
    ) {
        let mut ps = ParamSet::new();
        for (i, &gv) in grads.iter().enumerate() {
            let id = ps.register(format!("p{i}"), Tensor::scalar(0.0));
            ps.grad_mut(id).data_mut()[0] = gv;
        }
        let before = ps.grad_norm();
        clip_global_norm(&mut ps, cap);
        let after = ps.grad_norm();
        prop_assert!(after <= before + 1e-9);
        prop_assert!(after <= cap + 1e-9);
        // Direction is preserved (scaling only).
        if before > 0.0 {
            let scale = after / before;
            for (id, &gv) in ps.ids().collect::<Vec<_>>().iter().zip(&grads) {
                prop_assert!((ps.grad(*id).item() - gv * scale).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips(vals in proptest::collection::vec(-3.0f64..3.0, 1..8)) {
        let mut ps = ParamSet::new();
        let ids: Vec<_> =
            vals.iter().enumerate().map(|(i, &v)| ps.register(format!("p{i}"), Tensor::scalar(v))).collect();
        let snap = ps.snapshot();
        for &id in &ids {
            ps.value_mut(id).data_mut()[0] = 99.0;
        }
        ps.restore(&snap);
        for (id, &v) in ids.iter().zip(&vals) {
            prop_assert_eq!(ps.value(*id).item(), v);
        }
    }
}
