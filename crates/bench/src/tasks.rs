//! Canonical experiment tasks and the shared model-comparison runner.

use relgraph_datagen::{
    generate_clinic, generate_ecommerce, generate_forum, ClinicConfig, EcommerceConfig, ForumConfig,
};
use relgraph_pq::{execute, ExecConfig, ModelChoice, QueryOutcome};
use relgraph_store::Database;

/// True when `RELGRAPH_QUICK=1` (shrinks every workload ~4×).
pub fn is_quick() -> bool {
    std::env::var("RELGRAPH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scale a size down in quick mode.
pub fn quick_scale(n: usize) -> usize {
    if is_quick() {
        (n / 4).max(60)
    } else {
        n
    }
}

/// The standard e-commerce evaluation database.
pub fn ecommerce_db(seed: u64) -> Database {
    generate_ecommerce(&EcommerceConfig {
        customers: quick_scale(500),
        products: 60,
        seed,
        ..Default::default()
    })
    .expect("generate ecommerce")
}

/// The standard forum evaluation database.
pub fn forum_db(seed: u64) -> Database {
    generate_forum(&ForumConfig {
        users: quick_scale(400),
        seed,
        ..Default::default()
    })
    .expect("generate forum")
}

/// The standard clinic evaluation database.
pub fn clinic_db(seed: u64) -> Database {
    generate_clinic(&ClinicConfig {
        patients: quick_scale(400),
        seed,
        ..Default::default()
    })
    .expect("generate clinic")
}

/// Which leaderboard a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFamily {
    Classification,
    Regression,
    Recommendation,
    Multiclass,
}

/// One canonical evaluation task.
#[derive(Debug, Clone)]
pub struct Task {
    /// Short id used in tables, e.g. `shop-churn`.
    pub id: &'static str,
    /// Which dataset (`ecommerce` / `forum` / `clinic`).
    pub dataset: &'static str,
    /// The predictive query text (without USING).
    pub query: &'static str,
    /// Family (determines models and headline metric).
    pub family: TaskFamily,
}

/// The canonical task set used across T2–T4 and the figures.
pub fn canonical_tasks() -> Vec<Task> {
    vec![
        Task {
            id: "shop-active",
            dataset: "ecommerce",
            query: "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id",
            family: TaskFamily::Classification,
        },
        Task {
            id: "shop-reviewer",
            dataset: "ecommerce",
            query: "PREDICT COUNT(reviews.*, 0, 60) > 0 FOR EACH customers.customer_id",
            family: TaskFamily::Classification,
        },
        Task {
            id: "forum-poster",
            dataset: "forum",
            query: "PREDICT COUNT(posts.*, 0, 30) > 2 FOR EACH users.user_id",
            family: TaskFamily::Classification,
        },
        Task {
            id: "clinic-readmit",
            dataset: "clinic",
            query: "PREDICT EXISTS(visits.*, 0, 60) FOR EACH patients.patient_id",
            family: TaskFamily::Classification,
        },
        Task {
            id: "shop-orders",
            dataset: "ecommerce",
            query: "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id",
            family: TaskFamily::Regression,
        },
        Task {
            id: "shop-spend",
            dataset: "ecommerce",
            query: "PREDICT SUM(orders.amount, 0, 30) FOR EACH customers.customer_id",
            family: TaskFamily::Regression,
        },
        Task {
            id: "clinic-rx",
            dataset: "clinic",
            query: "PREDICT COUNT(prescriptions.*, 0, 90) FOR EACH patients.patient_id",
            family: TaskFamily::Regression,
        },
        Task {
            id: "shop-channel",
            dataset: "ecommerce",
            query: "PREDICT MODE(orders.channel, 0, 60) FOR EACH customers.customer_id",
            family: TaskFamily::Multiclass,
        },
        Task {
            id: "shop-next-items",
            dataset: "ecommerce",
            query: "PREDICT LIST_DISTINCT(orders.product_id, 0, 60) \
                    FOR EACH customers.customer_id",
            family: TaskFamily::Recommendation,
        },
    ]
}

/// Build the dataset a task runs on.
pub fn task_db(task: &Task, seed: u64) -> Database {
    match task.dataset {
        "ecommerce" => ecommerce_db(seed),
        "forum" => forum_db(seed),
        "clinic" => clinic_db(seed),
        other => panic!("unknown dataset `{other}`"),
    }
}

/// The standard execution configuration used by the experiment binaries.
pub fn standard_exec_config() -> ExecConfig {
    ExecConfig {
        epochs: if is_quick() { 6 } else { 25 },
        lr: 0.02,
        hidden_dim: 48,
        fanouts: vec![8, 8],
        max_predictions: Some(0),
        ..Default::default()
    }
}

/// The comparator set per family.
pub fn models_for(family: TaskFamily) -> Vec<ModelChoice> {
    match family {
        TaskFamily::Classification => vec![
            ModelChoice::Gnn,
            ModelChoice::Gbdt,
            ModelChoice::LogReg,
            ModelChoice::Trivial,
        ],
        TaskFamily::Regression => vec![
            ModelChoice::Gnn,
            ModelChoice::Gbdt,
            ModelChoice::LinReg,
            ModelChoice::Trivial,
        ],
        TaskFamily::Recommendation => {
            vec![
                ModelChoice::Gnn,
                ModelChoice::CoVisit,
                ModelChoice::Popularity,
            ]
        }
        TaskFamily::Multiclass => vec![
            ModelChoice::Gnn,
            ModelChoice::Gbdt,
            ModelChoice::LogReg,
            ModelChoice::Trivial,
        ],
    }
}

/// One model's result on one task.
#[derive(Debug, Clone)]
pub struct ModelRun {
    pub model: ModelChoice,
    pub outcome: QueryOutcome,
    pub seconds: f64,
}

/// Run `models` on (`db`, `query`) with per-model timing.
///
/// Honors `RELGRAPH_OBS`: with a sink configured, every model run emits a
/// [`relgraph_obs::RunReport`] fingerprinted by query and model.
pub fn run_models(
    db: &Database,
    query: &str,
    models: &[ModelChoice],
    base: &ExecConfig,
) -> Vec<ModelRun> {
    relgraph_obs::init_from_env();
    models
        .iter()
        .map(|&model| {
            let cfg = ExecConfig {
                model,
                ..base.clone()
            };
            let start = std::time::Instant::now();
            let outcome = execute(db, query, &cfg)
                .unwrap_or_else(|e| panic!("{model} failed on `{query}`: {e}"));
            relgraph_obs::emit_run_report(
                "bench",
                &[
                    ("query", query),
                    ("model", &model.to_string()),
                    ("db", db.name()),
                ],
            );
            relgraph_obs::reset();
            ModelRun {
                model,
                outcome,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_tasks_cover_all_families() {
        let tasks = canonical_tasks();
        for family in [
            TaskFamily::Classification,
            TaskFamily::Regression,
            TaskFamily::Recommendation,
            TaskFamily::Multiclass,
        ] {
            assert!(
                tasks.iter().any(|t| t.family == family),
                "missing {family:?}"
            );
            assert!(!models_for(family).is_empty());
        }
        // Ids unique.
        let mut ids: Vec<_> = tasks.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn task_dbs_build_and_validate() {
        std::env::set_var("RELGRAPH_QUICK", "1");
        for name in ["ecommerce", "forum", "clinic"] {
            let t = Task {
                id: "x",
                dataset: match name {
                    "ecommerce" => "ecommerce",
                    "forum" => "forum",
                    _ => "clinic",
                },
                query: "",
                family: TaskFamily::Classification,
            };
            let db = task_db(&t, 1);
            db.validate().expect("valid db");
        }
    }

    #[test]
    fn quick_mode_runs_one_task_end_to_end() {
        std::env::set_var("RELGRAPH_QUICK", "1");
        let task = &canonical_tasks()[0];
        let db = task_db(task, 3);
        let runs = run_models(
            &db,
            task.query,
            &[ModelChoice::Trivial, ModelChoice::LogReg],
            &standard_exec_config(),
        );
        assert_eq!(runs.len(), 2);
        for r in &runs {
            assert!(r.outcome.metric("accuracy").is_some());
            assert!(r.seconds >= 0.0);
        }
    }
}
