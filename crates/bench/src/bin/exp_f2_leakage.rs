//! F2 — temporal-leakage ablation.
//!
//! Three conditions on the shop-activity task:
//!
//! * **honest** — leak-free temporal sampling in training and evaluation
//!   (the paper's protocol);
//! * **leaky offline** — the sampler ignores time, so "past" neighborhoods
//!   include the label window itself. Offline metrics look spectacular;
//! * **leaky deployed** — the *same leakily-trained model* served with
//!   honest sampling, as deployment inevitably would (the future does not
//!   exist yet). The offline promise evaporates.
//!
//! Expected shape: leaky-offline ≫ honest > leaky-deployed.

use relgraph_bench::{ecommerce_db, is_quick, Table};
use relgraph_db2graph::{build_graph, ConvertOptions};
use relgraph_gnn::{train_node_model, TaskKind, TrainConfig};
use relgraph_graph::{SamplerConfig, Seed};
use relgraph_metrics as metrics;
use relgraph_pq::traintable::TrainTableConfig;
use relgraph_pq::{analyze, build_training_table, parse};

fn main() {
    println!("F2 — Temporal-leakage ablation (shop-active, AUROC)\n");
    let db = ecommerce_db(7);
    let query = "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id";
    let aq = analyze(&db, parse(query).unwrap()).expect("analyze");
    let table = build_training_table(&db, &aq, &TrainTableConfig::default()).expect("train table");
    let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).expect("graph");
    let node_type = mapping.node_type("customers").unwrap();
    let to_seed = |e: &relgraph_pq::Example| Seed {
        node_type,
        node: e.entity_row,
        time: e.anchor,
    };
    let train: Vec<(Seed, f64)> = table
        .train
        .iter()
        .map(|e| (to_seed(e), e.label.scalar()))
        .collect();
    let val: Vec<(Seed, f64)> = table
        .val
        .iter()
        .map(|e| (to_seed(e), e.label.scalar()))
        .collect();
    let test_seeds: Vec<Seed> = table.test.iter().map(to_seed).collect();
    let test_labels: Vec<bool> = table.test.iter().map(|e| e.label.scalar() > 0.5).collect();

    let fanouts = vec![8, 8];
    let mk_cfg = |temporal: bool| TrainConfig {
        epochs: if is_quick() { 5 } else { 20 },
        lr: 0.02,
        hidden_dim: 48,
        fanouts: fanouts.clone(),
        temporal,
        ..Default::default()
    };
    let auroc = |preds: &[f64]| metrics::auroc(preds, &test_labels).unwrap_or(f64::NAN);

    let honest = train_node_model(&graph, TaskKind::Binary, &train, &val, &mk_cfg(true))
        .expect("honest training");
    let honest_auc = auroc(&honest.predict(&graph, &test_seeds));

    let leaky = train_node_model(&graph, TaskKind::Binary, &train, &val, &mk_cfg(false))
        .expect("leaky training");
    let leaky_offline_auc = auroc(&leaky.predict(&graph, &test_seeds));
    let leaky_deployed_auc = auroc(&leaky.predict_with_sampler(
        &graph,
        &test_seeds,
        SamplerConfig::new(fanouts.clone()),
    ));

    let mut t = Table::new(&[
        "condition",
        "sampling (train)",
        "sampling (serve)",
        "test AUROC",
    ]);
    t.row(vec![
        "honest".into(),
        "temporal".into(),
        "temporal".into(),
        format!("{honest_auc:.4}"),
    ]);
    t.row(vec![
        "leaky offline".into(),
        "leaky".into(),
        "leaky".into(),
        format!("{leaky_offline_auc:.4}"),
    ]);
    t.row(vec![
        "leaky deployed".into(),
        "leaky".into(),
        "temporal".into(),
        format!("{leaky_deployed_auc:.4}"),
    ]);
    println!("{t}");
    println!(
        "Shape check: leaky offline ({leaky_offline_auc:.3}) ≫ honest ({honest_auc:.3}) > \
         leaky deployed ({leaky_deployed_auc:.3}).\n\
         Leakage buys a fictitious offline win and a real deployment loss — the\n\
         reason the paper's training-table protocol anchors features strictly in\n\
         the past."
    );
}
