//! Compare two JSONL serving response files under a numeric tolerance.
//!
//! ```text
//! cargo run -p relgraph-bench --bin tolerance_diff -- a.jsonl b.jsonl 1e-3
//! ```
//!
//! Each input is a file of `relgraph serve` response lines
//! (`{"id": N, "prediction": X}`). Lines are matched by `id` (order does
//! not matter — the serve smoke sorts shard output anyway, but this tool
//! does not rely on it), and the run fails when:
//!
//! * either file contains an error response or an unparseable line,
//! * the two files do not answer exactly the same id set, or
//! * any id's predictions differ by more than the tolerance.
//!
//! This is the CI gate for the reduced-precision serving modes: `f64` vs
//! `f64` is compared byte-for-byte elsewhere, while `--precision f32`
//! output is allowed to drift from the `f64` reference only within the
//! `DESIGN.md` §15 tolerance — checked here, per prediction, not in
//! aggregate. Exit status 0 means every prediction matched; any failure
//! prints the first offending id/line and exits 1.
//!
//! No JSON dependency: the parser is hand-rolled over the exact response
//! grammar `response_ok` emits, like everything else in this workspace.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parse one `{"id": N, "prediction": X}` response line.
fn parse_response(line: &str) -> Result<(u64, f64), String> {
    let rest = line.trim();
    let rest = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("response is not a JSON object")?;
    let mut id: Option<u64> = None;
    let mut prediction: Option<f64> = None;
    for field in rest.split(',') {
        let (key, value) = field.split_once(':').ok_or("field without `:`")?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "id" => {
                id = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad id `{value}`"))?,
                )
            }
            "prediction" => {
                prediction = Some(
                    value
                        .parse::<f64>()
                        .map_err(|_| format!("bad prediction `{value}`"))?,
                )
            }
            "error" => return Err(format!("error response: {value}")),
            other => return Err(format!("unknown key `{other}`")),
        }
    }
    Ok((
        id.ok_or("missing `id`")?,
        prediction.ok_or("missing `prediction`")?,
    ))
}

/// Read a whole response file into an id → prediction map, rejecting
/// duplicate ids (two answers for one request is itself a bug).
fn read_responses(path: &str) -> Result<BTreeMap<u64, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (id, pred) = parse_response(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        if out.insert(id, pred).is_some() {
            return Err(format!("{path}: duplicate id {id}"));
        }
    }
    Ok(out)
}

fn run(file_a: &str, file_b: &str, tolerance: f64) -> Result<(), String> {
    let a = read_responses(file_a)?;
    let b = read_responses(file_b)?;
    for id in a.keys() {
        if !b.contains_key(id) {
            return Err(format!("id {id} answered in {file_a} but not {file_b}"));
        }
    }
    for id in b.keys() {
        if !a.contains_key(id) {
            return Err(format!("id {id} answered in {file_b} but not {file_a}"));
        }
    }
    let mut worst: Option<(u64, f64)> = None;
    for (id, &pa) in &a {
        let pb = b[id];
        let diff = (pa - pb).abs();
        if !diff.is_finite() || diff > tolerance {
            return Err(format!(
                "id {id}: |{pa} - {pb}| = {diff:e} exceeds tolerance {tolerance:e}"
            ));
        }
        if worst.is_none_or(|(_, w)| diff > w) {
            worst = Some((*id, diff));
        }
    }
    match worst {
        Some((id, w)) => println!(
            "{} predictions matched within {tolerance:e} (worst |diff| {w:e} at id {id})",
            a.len()
        ),
        None => println!("both files are empty: vacuously within tolerance"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (file_a, file_b, tol) = match args.as_slice() {
        [a, b, t] => match t.parse::<f64>() {
            Ok(tol) if tol.is_finite() && tol >= 0.0 => (a, b, tol),
            _ => {
                eprintln!("tolerance must be a finite non-negative number, got `{t}`");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: tolerance_diff <a.jsonl> <b.jsonl> <tolerance>");
            return ExitCode::FAILURE;
        }
    };
    match run(file_a, file_b, tol) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tolerance_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ok_lines_and_rejects_errors() {
        assert_eq!(
            parse_response(r#"{"id": 7, "prediction": 0.25}"#).unwrap(),
            (7, 0.25)
        );
        assert!(parse_response(r#"{"id": 7, "error": "boom"}"#).is_err());
        assert!(parse_response("not json").is_err());
        assert!(parse_response(r#"{"id": 7}"#).is_err());
    }

    #[test]
    fn diff_logic_respects_tolerance_and_id_sets() {
        let dir = std::env::temp_dir().join(format!("relgraph-toldiff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| {
            let p = dir.join(name);
            std::fs::write(&p, body).unwrap();
            p.to_string_lossy().into_owned()
        };
        let a = write(
            "a.jsonl",
            "{\"id\": 1, \"prediction\": 0.5}\n{\"id\": 2, \"prediction\": 0.25}\n",
        );
        let b = write(
            "b.jsonl",
            "{\"id\": 2, \"prediction\": 0.2504}\n{\"id\": 1, \"prediction\": 0.5}\n",
        );
        assert!(run(&a, &b, 1e-3).is_ok(), "within tolerance, any order");
        assert!(run(&a, &b, 1e-5).is_err(), "0.0004 exceeds 1e-5");
        let c = write("c.jsonl", "{\"id\": 1, \"prediction\": 0.5}\n");
        assert!(run(&a, &c, 1.0).is_err(), "id sets differ");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
