//! T3 — entity regression leaderboard: MAE (lower is better) and RMSE.
//!
//! Expected shape: gnn ≤ gbdt ≤ linreg ≪ trivial (predict-the-mean).

use relgraph_bench::{
    canonical_tasks, models_for, run_models, standard_exec_config, task_db, Table, TaskFamily,
};

fn main() {
    println!("T3 — Entity regression (MAE; lower is better)\n");
    let tasks: Vec<_> = canonical_tasks()
        .into_iter()
        .filter(|t| t.family == TaskFamily::Regression)
        .collect();
    let models = models_for(TaskFamily::Regression);
    let mut header: Vec<String> = vec!["task".to_string()];
    header.extend(models.iter().map(ToString::to_string));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut mae_table = Table::new(&header_refs);
    let mut rmse_table = Table::new(&header_refs);
    for task in &tasks {
        let db = task_db(task, 7);
        let runs = run_models(&db, task.query, &models, &standard_exec_config());
        let mut mae_row = vec![task.id.to_string()];
        let mut rmse_row = vec![task.id.to_string()];
        for r in &runs {
            mae_row.push(Table::metric(r.outcome.metric("mae")));
            rmse_row.push(Table::metric(r.outcome.metric("rmse")));
        }
        mae_table.row(mae_row);
        rmse_table.row(rmse_row);
    }
    println!("{mae_table}");
    println!("RMSE\n\n{rmse_table}");
}
