//! A1 (extension ablation) — neighborhood aggregation function: mean vs
//! sum vs max, on the two headline classification tasks.
//!
//! Expected shape (per the "Some Might Say All You Need Is Sum" line of
//! work): sum is at least as *expressive* as mean, but with explicit
//! degree features supplied, mean tends to train most stably; max is
//! competitive when a single strong neighbor carries the signal.

use relgraph_bench::{clinic_db, ecommerce_db, is_quick, Table};
use relgraph_pq::{execute, ExecConfig};
use relgraph_store::Database;

fn main() {
    println!("A1 — Aggregator ablation (AUROC)\n");
    let tasks: [(&str, Database, &str); 2] = [
        (
            "shop-active",
            ecommerce_db(7),
            "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id",
        ),
        (
            "clinic-readmit",
            clinic_db(23),
            "PREDICT EXISTS(visits.*, 0, 60) FOR EACH patients.patient_id",
        ),
    ];
    let mut t = Table::new(&["task", "mean", "sum", "max"]);
    for (id, db, query) in &tasks {
        let mut row = vec![id.to_string()];
        for agg in ["mean", "sum", "max"] {
            let cfg = ExecConfig {
                epochs: if is_quick() { 5 } else { 20 },
                lr: 0.02,
                hidden_dim: 48,
                fanouts: vec![8, 8],
                max_predictions: Some(0),
                ..Default::default()
            };
            let outcome =
                execute(db, &format!("{query} USING agg = {agg}"), &cfg).expect("execute");
            row.push(Table::metric(outcome.metric("auroc")));
        }
        t.row(row);
    }
    println!("{t}");
}
