//! A2 (extension ablation) — how many historical anchor times the
//! training table needs.
//!
//! Each anchor replays the same entities at a different moment, so more
//! anchors = more (and more temporally diverse) supervised examples from
//! the same database. Expected shape: quality climbs steeply from 1–2
//! anchors and saturates; the marginal anchor is worth less once the
//! dataset's dynamics are covered.

use relgraph_bench::{ecommerce_db, is_quick, Table};
use relgraph_pq::traintable::TrainTableConfig;
use relgraph_pq::{execute, ExecConfig};

fn main() {
    println!("A2 — Anchor-count ablation (shop-active, AUROC)\n");
    let db = ecommerce_db(7);
    let query = "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id";
    let mut t = Table::new(&["anchors", "train examples", "auroc (gnn)", "auroc (gbdt)"]);
    for &anchors in &[2usize, 4, 8, 16] {
        let mk = |model: &str| {
            let cfg = ExecConfig {
                epochs: if is_quick() { 5 } else { 15 },
                lr: 0.02,
                hidden_dim: 48,
                fanouts: vec![8, 8],
                max_predictions: Some(0),
                traintable: TrainTableConfig {
                    num_anchors: anchors,
                    ..Default::default()
                },
                ..Default::default()
            };
            execute(&db, &format!("{query} USING model = {model}"), &cfg).expect("execute")
        };
        let gnn = mk("gnn");
        let gbdt = mk("gbdt");
        t.row(vec![
            anchors.to_string(),
            gnn.train_size.to_string(),
            Table::metric(gnn.metric("auroc")),
            Table::metric(gbdt.metric("auroc")),
        ]);
    }
    println!("{t}");
}
