//! F1 — relative-improvement summary: the GNN's gain over the best
//! non-trivial baseline per task, as a percentage (the paper's headline
//! bar chart, printed as rows).
//!
//! For classification the statistic is AUROC *excess over chance*
//! (`auroc − 0.5`), so "+20%" means a fifth more discriminative power;
//! for regression it is MAE reduction.

use relgraph_bench::{
    canonical_tasks, models_for, run_models, standard_exec_config, task_db, Table, TaskFamily,
};
use relgraph_pq::ModelChoice;

fn main() {
    println!("F1 — GNN improvement over the best tabular baseline\n");
    let mut table = Table::new(&[
        "task",
        "family",
        "gnn",
        "best baseline",
        "baseline",
        "improvement",
    ]);
    for task in canonical_tasks() {
        if task.family == TaskFamily::Recommendation {
            continue; // covered by T4
        }
        let db = task_db(&task, 7);
        let models = models_for(task.family);
        let runs = run_models(&db, task.query, &models, &standard_exec_config());
        let metric = |m: ModelChoice| -> Option<f64> {
            let r = runs.iter().find(|r| r.model == m)?;
            match task.family {
                TaskFamily::Classification => r.outcome.metric("auroc"),
                _ => r.outcome.metric("mae"),
            }
        };
        let gnn = metric(ModelChoice::Gnn);
        let baselines: Vec<(ModelChoice, f64)> = models
            .iter()
            .filter(|&&m| m != ModelChoice::Gnn && m != ModelChoice::Trivial)
            .filter_map(|&m| metric(m).map(|v| (m, v)))
            .collect();
        let best = match task.family {
            TaskFamily::Classification => baselines
                .iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()),
            _ => baselines
                .iter()
                .cloned()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()),
        };
        let (Some(g), Some((bm, bv))) = (gnn, best) else {
            continue;
        };
        let improvement = match task.family {
            // Excess-over-chance AUROC gain.
            TaskFamily::Classification => ((g - 0.5) / (bv - 0.5).max(1e-9) - 1.0) * 100.0,
            // MAE reduction.
            _ => (1.0 - g / bv.max(1e-9)) * 100.0,
        };
        table.row(vec![
            task.id.to_string(),
            format!("{:?}", task.family).to_lowercase(),
            format!("{g:.4}"),
            format!("{bv:.4}"),
            bm.to_string(),
            format!("{improvement:+.1}%"),
        ]);
    }
    println!("{table}");
    println!(
        "Positive numbers reproduce the paper's claim: declarative relational\n\
         learning matches or beats hand-engineered features task-by-task."
    );
}
