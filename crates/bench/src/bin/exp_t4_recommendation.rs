//! T4 — recommendation leaderboard: MAP@10 / Recall@10 / NDCG@10.
//!
//! Expected shape: personalized models (two-tower GNN, co-visitation)
//! clearly beat popularity; co-visitation is a strong heuristic on
//! repeat-purchase data and may edge the GNN — the finding RelBench also
//! reports on its link-prediction tasks.

use relgraph_bench::{
    canonical_tasks, models_for, run_models, standard_exec_config, task_db, Table, TaskFamily,
};
use relgraph_pq::ExecConfig;

fn main() {
    println!("T4 — Recommendation (k = 10)\n");
    let tasks: Vec<_> = canonical_tasks()
        .into_iter()
        .filter(|t| t.family == TaskFamily::Recommendation)
        .collect();
    let models = models_for(TaskFamily::Recommendation);
    let mut table = Table::new(&["task", "model", "map@10", "recall@10", "ndcg@10", "secs"]);
    for task in &tasks {
        let db = task_db(task, 7);
        let cfg = ExecConfig {
            epochs: 30,
            ..standard_exec_config()
        };
        let runs = run_models(&db, task.query, &models, &cfg);
        for r in &runs {
            table.row(vec![
                task.id.to_string(),
                r.model.to_string(),
                Table::metric(r.outcome.metric("map@10")),
                Table::metric(r.outcome.metric("recall@10")),
                Table::metric(r.outcome.metric("ndcg@10")),
                format!("{:.1}", r.seconds),
            ]);
        }
    }
    println!("{table}");
}
