//! Scaling smoke for the sharded serving tier.
//!
//! ```text
//! cargo run --release -p relgraph-bench --bin serve_scale -- \
//!     [--clients N] [--shards N] [--floor X] [--affinity-diff]
//! ```
//!
//! Fits one quick model, then measures the *identical* concurrent client
//! protocol (same client count, same per-client request streams, same
//! batch size, same warmup) against a 1-shard engine and an N-shard
//! engine, **sequentially** — each engine is built, warmed, timed, and
//! dropped before the other exists, so one side's idle inbox parks never
//! pollute the other side's cores. Prints requests/s for both and the
//! scaling ratio.
//!
//! Correctness is asserted, not assumed: both configurations must serve
//! bitwise-identical predictions for the full stream (the sharded tier's
//! L2 handoff, work stealing, and routing are all supposed to be
//! invisible in the output bits). With `--affinity-diff`, the N-shard
//! engine is additionally run with core-affinity placement on and off and
//! the two responses are compared byte for byte.
//!
//! Exit status: non-zero when `--floor X` is given and the N-shard /
//! 1-shard throughput ratio falls below `X`, or when any bitwise
//! comparison fails. A floor of `0` (the default) reports without gating.

use std::time::Instant;

use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
use relgraph_pq::ExecConfig;
use relgraph_serve::{ServeConfig, ServeEngine, ShardedEngine};

struct Args {
    clients: usize,
    shards: usize,
    floor: f64,
    affinity_diff: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        clients: 4,
        shards: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
        floor: 0.0,
        affinity_diff: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric value"))
        };
        match a.as_str() {
            "--clients" => out.clients = num("--clients") as usize,
            "--shards" => out.shards = num("--shards") as usize,
            "--floor" => out.floor = num("--floor"),
            "--affinity-diff" => out.affinity_diff = true,
            other => panic!("unknown flag `{other}` (see the module docs)"),
        }
    }
    out.clients = out.clients.max(1);
    out.shards = out.shards.max(1);
    out
}

/// Best-of-3 wall seconds for `f`, after one untimed warmup call (which
/// fills every cache tier — both sides measure warm, like steady state).
fn best_secs(mut f: impl FnMut() -> f64) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = parse_args();

    // Fit once; every engine below serves this exact model, so any output
    // difference is serving machinery, never the model.
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 120,
        products: 24,
        seed: 11,
        ..Default::default()
    })
    .expect("generate db");
    let exec = ExecConfig {
        epochs: 2,
        hidden_dim: 8,
        fanouts: vec![4, 4],
        ..Default::default()
    };
    let engine = ServeEngine::fit(
        db,
        "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
        &exec,
        ServeConfig::default(),
    )
    .expect("fit engine");
    let entities = engine.deploy_entities().expect("deploy entities");
    let stream: Vec<usize> = (0..1024)
        .map(|i| entities[(i * 7) % entities.len()])
        .collect();
    let batch = engine.config().max_batch;

    let db0 = engine.db().clone();
    let query0 = engine.query().clone();
    let model0 = engine.model_handle();
    let node_type0 = engine.node_type();
    let metrics0 = engine.metrics_owned();
    drop(engine);
    let make = |shards: usize, affinity: bool| {
        ShardedEngine::from_fitted(
            db0.clone(),
            query0.clone(),
            model0.clone(),
            node_type0,
            metrics0.clone(),
            ServeConfig {
                affinity,
                ..ServeConfig::default()
            },
            shards,
        )
        .expect("assemble sharded engine")
    };

    // One pass over the full stream, single-threaded: the canonical
    // response bytes for this engine configuration.
    let response_bits = |eng: &ShardedEngine| -> Vec<u64> {
        stream
            .chunks(batch)
            .flat_map(|c| eng.predict_batch_rows(c))
            .map(f64::to_bits)
            .collect()
    };
    // The timed protocol: `clients` threads walking the stream from
    // rotated offsets, so requests overlap without running in lockstep.
    let run_clients = |eng: &ShardedEngine| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.clients)
                .map(|c| {
                    let stream = &stream;
                    scope.spawn(move || {
                        let mut acc = 0.0;
                        let off = c * stream.len() / args.clients;
                        for chunk in stream[off..]
                            .chunks(batch)
                            .chain(stream[..off].chunks(batch))
                        {
                            acc += eng.predict_batch_rows(chunk).iter().sum::<f64>();
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum::<f64>()
        })
    };

    // Sequential measurement: the 1-shard engine is gone before the
    // N-shard engine spawns its workers, and vice versa.
    let (bits_single, secs_single) = {
        let single = make(1, false);
        let bits = response_bits(&single);
        (bits, best_secs(|| run_clients(&single)))
    };
    let (bits_multi, secs_multi, steals) = {
        let multi = make(args.shards, false);
        let bits = response_bits(&multi);
        let secs = best_secs(|| run_clients(&multi));
        (bits, secs, multi.steals())
    };

    let total = (args.clients * stream.len()) as f64;
    let rps_single = total / secs_single;
    let rps_multi = total / secs_multi;
    let ratio = rps_multi / rps_single;
    println!(
        "serve_scale: clients={} stream={} batch={}",
        args.clients,
        stream.len(),
        batch
    );
    println!("  shards=1            {rps_single:>12.0} req/s");
    println!(
        "  shards={:<2} (steals={steals}) {rps_multi:>11.0} req/s",
        args.shards
    );
    println!("  scaling ratio: {ratio:.2}x (floor {:.2})", args.floor);

    let mut failed = false;
    if bits_single != bits_multi {
        let diverged = bits_single
            .iter()
            .zip(&bits_multi)
            .filter(|(a, b)| a != b)
            .count();
        eprintln!(
            "FAIL: {diverged}/{} predictions differ bitwise between 1 and {} shards",
            bits_single.len(),
            args.shards
        );
        failed = true;
    } else {
        println!(
            "  bitwise: 1-shard == {}-shard over all {} predictions",
            args.shards,
            bits_single.len()
        );
    }

    if args.affinity_diff {
        // Affinity placement must be invisible in the response bytes: the
        // same engine configuration, pinned and unpinned, byte for byte.
        let bits_off = bits_multi;
        let bits_on = {
            let pinned = make(args.shards, true);
            best_secs(|| run_clients(&pinned)); // exercise pinned workers
            response_bits(&pinned)
        };
        if bits_off != bits_on {
            eprintln!(
                "FAIL: --affinity changed response bytes at {} shards",
                args.shards
            );
            failed = true;
        } else {
            println!("  affinity-diff: responses byte-identical with pinning on/off");
        }
    }

    if args.floor > 0.0 && ratio < args.floor {
        eprintln!(
            "FAIL: scaling ratio {ratio:.2}x below floor {:.2}x",
            args.floor
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
