//! T1 — dataset & task inventory (the RelBench-style overview table).
//!
//! Regenerates: per dataset — tables, rows, FK edges, time span, graph
//! size after db2graph compilation; plus the canonical task list.

use relgraph_bench::{canonical_tasks, clinic_db, ecommerce_db, forum_db, Table};
use relgraph_db2graph::{build_graph, ConvertOptions};
use relgraph_store::SECONDS_PER_DAY;

fn main() {
    println!("T1 — Dataset inventory\n");
    let mut t = Table::new(&[
        "dataset",
        "tables",
        "rows",
        "fk cols",
        "span (days)",
        "nodes",
        "edges",
        "node types",
        "edge types",
    ]);
    for (name, db) in [
        ("ecommerce", ecommerce_db(7)),
        ("forum", forum_db(13)),
        ("clinic", clinic_db(23)),
    ] {
        let (graph, _) = build_graph(&db, &ConvertOptions::default()).expect("compile graph");
        let span = db
            .time_span()
            .map(|(lo, hi)| (hi - lo) / SECONDS_PER_DAY)
            .unwrap_or(0);
        t.row(vec![
            name.to_string(),
            db.table_count().to_string(),
            db.total_rows().to_string(),
            db.total_foreign_keys().to_string(),
            span.to_string(),
            graph.total_nodes().to_string(),
            graph.total_edges().to_string(),
            graph.num_node_types().to_string(),
            graph.num_edge_types().to_string(),
        ]);
    }
    println!("{t}");

    println!("Canonical predictive-query tasks\n");
    let mut t = Table::new(&["task", "dataset", "family", "query"]);
    for task in canonical_tasks() {
        t.row(vec![
            task.id.to_string(),
            task.dataset.to_string(),
            format!("{:?}", task.family).to_lowercase(),
            task.query.split_whitespace().collect::<Vec<_>>().join(" "),
        ]);
    }
    println!("{t}");
}
