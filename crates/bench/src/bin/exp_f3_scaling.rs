//! F3 — scaling behaviour: wall-clock of each pipeline stage and model
//! quality as the database grows.
//!
//! Expected shape: generation / graph compilation / sampling scale roughly
//! linearly in rows; GNN epoch time scales with the number of training
//! seeds; AUROC is stable or slowly improving with more data.

use std::time::Instant;

use relgraph_bench::{is_quick, Table};
use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
use relgraph_db2graph::{build_graph, ConvertOptions};
use relgraph_pq::{execute, ExecConfig};

fn main() {
    println!("F3 — Scaling with database size (shop-active task)\n");
    let sizes: Vec<usize> = if is_quick() {
        vec![100, 200]
    } else {
        vec![125, 250, 500, 1000, 2000]
    };
    let mut t = Table::new(&[
        "customers",
        "rows",
        "gen (s)",
        "graph (s)",
        "edges",
        "train+eval (s)",
        "auroc",
    ]);
    for &n in &sizes {
        let t0 = Instant::now();
        let db = generate_ecommerce(&EcommerceConfig {
            customers: n,
            products: (n / 8).max(20),
            seed: 7,
            ..Default::default()
        })
        .expect("generate");
        let gen_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let (graph, _) = build_graph(&db, &ConvertOptions::default()).expect("graph");
        let graph_s = t0.elapsed().as_secs_f64();

        let cfg = ExecConfig {
            epochs: if is_quick() { 4 } else { 10 },
            lr: 0.02,
            hidden_dim: 32,
            fanouts: vec![8, 8],
            max_predictions: Some(0),
            ..Default::default()
        };
        let t0 = Instant::now();
        let outcome = execute(
            &db,
            "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id",
            &cfg,
        )
        .expect("execute");
        let train_s = t0.elapsed().as_secs_f64();

        t.row(vec![
            n.to_string(),
            db.total_rows().to_string(),
            format!("{gen_s:.2}"),
            format!("{graph_s:.2}"),
            graph.total_edges().to_string(),
            format!("{train_s:.2}"),
            Table::metric(outcome.metric("auroc")),
        ]);
    }
    println!("{t}");
}
