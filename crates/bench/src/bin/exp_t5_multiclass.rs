//! T5 (extension) — multiclass predictive queries via the MODE aggregate:
//! "which order channel will each customer use most in the next 60 days?"
//!
//! Expected shape: the sticky per-customer channel preference lives in the
//! customer's own order history, so every personalized model beats the
//! majority class; the GNN and the feature baselines are comparable (the
//! signal is 1-hop).

use relgraph_bench::{
    canonical_tasks, models_for, run_models, standard_exec_config, task_db, Table, TaskFamily,
};

fn main() {
    println!("T5 — Multiclass (MODE) classification\n");
    let tasks: Vec<_> = canonical_tasks()
        .into_iter()
        .filter(|t| t.family == TaskFamily::Multiclass)
        .collect();
    let models = models_for(TaskFamily::Multiclass);
    let mut t = Table::new(&["task", "model", "accuracy", "macro_f1", "classes"]);
    for task in &tasks {
        let db = task_db(task, 7);
        let runs = run_models(&db, task.query, &models, &standard_exec_config());
        for r in &runs {
            t.row(vec![
                task.id.to_string(),
                r.model.to_string(),
                Table::metric(r.outcome.metric("accuracy")),
                Table::metric(r.outcome.metric("macro_f1")),
                format!(
                    "{}",
                    r.outcome.metric("classes").unwrap_or(f64::NAN) as usize
                ),
            ]);
        }
    }
    println!("{t}");
}
