//! Standalone runner for the before/after hot-path snapshot.
//!
//! ```text
//! cargo run --release -p relgraph-bench --bin perf_snapshot [-- --check]
//! ```
//!
//! Writes `BENCH_pipeline.json` (override with `RELGRAPH_BENCH_OUT`); set
//! `RELGRAPH_QUICK=1` for the ~4× smaller smoke workload.
//!
//! With `--check`, exits non-zero when any section regresses: the optimized
//! path must not be slower than its in-tree baseline. Sections whose gap is
//! pure thread scaling (`sample`, `traintable`, `ingest`, `epoch`) get a
//! noise allowance since they legitimately hit ~1.0x on a single-core host;
//! kernel sections (`matmul_*`, `linear_fused`) must show a real win, and
//! `serving` (cached micro-batched engine vs per-request inference) must
//! show a real multiple since its win is algorithmic, not thread scaling.
//! `serving_concurrent`'s floor scales with the recorded shard count (its
//! win IS thread scaling), and `serving_mixed` (burst ingest drained
//! through the grouped write path vs one delta + closure + eviction sweep
//! per batch) must show the coalesced-invalidation win — a real multiple
//! on any host, since the saving is per-publish work, not threads.
//! `wal_commit` (group-commit WAL appends vs one fsync per batch) must
//! show fsync amortization. `persist_open` (columnar base read vs CSV
//! parse) and `persistence` (warm restart from snapshots vs a cold
//! open + featurize + train boot) gate the durable substrate: both wins
//! are algorithmic, so real multiples are required on any host.
//! `serving_f32` (tape-free `f32` inference vs the `f64` tape path, caches
//! held equal) and `cache_capacity` (8-bit quantized embedding rows per
//! byte vs `f64` rows) gate the reduced-precision tier.
//!
//! Every floor is declared for a specific numeric mode. A section whose
//! recorded `precision` does not match its floor's expected mode is a
//! CROSS-MODE failure, not a pass: a throughput measured in `f32` must
//! never be silently scored against an `f64` floor, and vice versa.

use relgraph_bench::perf;

/// Per-section floor: minimum acceptable `after / before` under `--check`,
/// plus the numeric mode the floor was tuned for. `shards` is the
/// snapshot's recorded serving shard count — the floor for the concurrent
/// section is physical: a 1-shard "after" cannot beat a 1-shard "before"
/// by more than noise.
fn floor_spec(section: &str, shards: usize) -> (f64, &'static str) {
    match section {
        // The microkernel must beat naive by a clear margin in release mode.
        s if s.starts_with("matmul_") => (1.05, "f64"),
        "linear_fused" => (1.05, "f64"),
        // Cached micro-batched serving vs per-request inference: the win is
        // algorithmic (cache hits + batch dedup), not thread scaling, so a
        // real multiple is required even on one core. The committed snapshot
        // shows well above this; 2.0 is the CI noise floor.
        "serving" => (2.0, "f64"),
        // Tape-free `f32` inference vs the `f64` autograd-tape path with
        // caches held equal: the win is kernel + allocation work, so a real
        // multiple is required on any host.
        "serving_f32" => (1.5, "f32"),
        // Quantized embedding rows resident at an equal byte budget: exact
        // arithmetic over captured row shapes, so the floor has no noise
        // allowance at all — `8·dim / (dim + 8)` must reach 4x.
        "cache_capacity" => (4.0, "q8"),
        // Sharded tier vs the 1-shard configuration under 4 concurrent
        // clients: pure thread scaling (now with work-stealing routing and
        // the shared L2 tier), so the floor depends on how many cores the
        // host actually gave us. 1.5 is the conservative CI floor at 4+
        // shards — real hosts show 2x+, but steal contention and the L2
        // gate put a sliver of shared state back on the read path.
        "serving_concurrent" if shards >= 4 => (1.5, "f64"),
        "serving_concurrent" if shards >= 2 => (1.2, "f64"),
        "serving_concurrent" => (0.8, "f64"),
        // Mixed ingest+read traffic: the sharded tier drains each write
        // burst through one coalesced publish (merged dirty closure, one
        // snapshot clone, one invalidation broadcast) where the pre-shard
        // engine pays all of it per batch. The win is algorithmic, so a
        // real multiple is required on any host.
        "serving_mixed" => (1.2, "f64"),
        // WAL group commit: one covering fsync per window of batches vs
        // one fsync each. fsync dominates the small-batch write path, so
        // an 8-batch window must be worth at least 3x on any real disk.
        "wal_commit" => (3.0, "f64"),
        // Columnar binary base read vs CSV parse of the same database: the
        // binary format skips tokenizing/validating every cell, so it must
        // win by a clear margin.
        "persist_open" => (1.05, "f64"),
        // Warm restart (snapshot load + empty catch-up) vs cold boot
        // (featurize + train): skipping training entirely must be worth at
        // least 2x even on the bench's deliberately tiny fit.
        "persistence" => (2.0, "f64"),
        // Thread-scaling sections: allow measurement noise around 1.0x.
        _ => (0.85, "f64"),
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let quick = std::env::var("RELGRAPH_QUICK").is_ok();
    let out = std::env::var("RELGRAPH_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());

    let snap = perf::write_snapshot(&out, quick).expect("write snapshot");
    println!(
        "wrote {out} (threads = {}, shards = {}, commit window = {})",
        snap.threads, snap.shards, snap.commit_window
    );
    let mut failed = false;
    for s in &snap.sections {
        let speedup = if s.before > 0.0 {
            s.after / s.before
        } else {
            0.0
        };
        let (floor, expected_precision) = floor_spec(&s.name, snap.shards);
        // Refuse cross-mode comparisons outright: a number measured in one
        // numeric mode is meaningless against a floor tuned for another.
        let verdict = if s.precision != expected_precision {
            failed = failed || check;
            "CROSS-MODE"
        } else if check && speedup < floor {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {:<16} {:>10.3} -> {:>10.3} {:<12} [{}] {:.2}x  {}",
            s.name, s.before, s.after, s.unit, s.precision, speedup, verdict
        );
    }
    println!("end-to-end speedup: {:.2}x", snap.end_to_end_speedup);
    if failed {
        eprintln!(
            "perf check failed: a section regressed below its floor or was \
             measured in a different numeric mode than its floor expects"
        );
        std::process::exit(1);
    }
}
