//! Standalone runner for the before/after hot-path snapshot.
//!
//! ```text
//! cargo run --release -p relgraph-bench --bin perf_snapshot [-- --check]
//! ```
//!
//! Writes `BENCH_pipeline.json` (override with `RELGRAPH_BENCH_OUT`); set
//! `RELGRAPH_QUICK=1` for the ~4× smaller smoke workload.
//!
//! With `--check`, exits non-zero when any section regresses: the optimized
//! path must not be slower than its in-tree baseline. Sections whose gap is
//! pure thread scaling (`sample`, `traintable`, `ingest`, `epoch`) get a
//! noise allowance since they legitimately hit ~1.0x on a single-core host;
//! kernel sections (`matmul_*`, `linear_fused`) must show a real win, and
//! `serving` (cached micro-batched engine vs per-request inference) must
//! show a real multiple since its win is algorithmic, not thread scaling.
//! `serving_concurrent`'s floor scales with the recorded shard count (its
//! win IS thread scaling), and `serving_mixed` must simply not regress
//! against the pre-shard engine. `persist_open` (columnar base read vs CSV
//! parse) and `persistence` (warm restart from snapshots vs a cold
//! open + featurize + train boot) gate the durable substrate: both wins
//! are algorithmic, so real multiples are required on any host.

use relgraph_bench::perf;

/// Minimum acceptable `after / before` per section under `--check`.
/// `shards` is the snapshot's recorded serving shard count — the floor for
/// the concurrent section is physical: a 1-shard "after" cannot beat a
/// 1-shard "before" by more than noise.
fn min_speedup(section: &str, shards: usize) -> f64 {
    match section {
        // The microkernel must beat naive by a clear margin in release mode.
        s if s.starts_with("matmul_") => 1.05,
        "linear_fused" => 1.05,
        // Cached micro-batched serving vs per-request inference: the win is
        // algorithmic (cache hits + batch dedup), not thread scaling, so a
        // real multiple is required even on one core. The committed snapshot
        // shows well above this; 2.0 is the CI noise floor.
        "serving" => 2.0,
        // Sharded tier vs the 1-shard configuration under 4 concurrent
        // clients: pure thread scaling, so the floor depends on how many
        // cores the host actually gave us.
        "serving_concurrent" if shards >= 4 => 2.0,
        "serving_concurrent" if shards >= 2 => 1.2,
        "serving_concurrent" => 0.8,
        // Mixed ingest+read traffic through the epoch-swap pipeline must
        // not be slower than the pre-shard engine (noise allowance).
        "serving_mixed" => 0.8,
        // Columnar binary base read vs CSV parse of the same database: the
        // binary format skips tokenizing/validating every cell, so it must
        // win by a clear margin.
        "persist_open" => 1.05,
        // Warm restart (snapshot load + empty catch-up) vs cold boot
        // (featurize + train): skipping training entirely must be worth at
        // least 2x even on the bench's deliberately tiny fit.
        "persistence" => 2.0,
        // Thread-scaling sections: allow measurement noise around 1.0x.
        _ => 0.85,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let quick = std::env::var("RELGRAPH_QUICK").is_ok();
    let out = std::env::var("RELGRAPH_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());

    let snap = perf::write_snapshot(&out, quick).expect("write snapshot");
    println!(
        "wrote {out} (threads = {}, shards = {})",
        snap.threads, snap.shards
    );
    let mut failed = false;
    for s in &snap.sections {
        let speedup = if s.before > 0.0 {
            s.after / s.before
        } else {
            0.0
        };
        let floor = min_speedup(&s.name, snap.shards);
        let verdict = if check && speedup < floor {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {:<12} {:>10.3} -> {:>10.3} {:<12} {:.2}x  {}",
            s.name, s.before, s.after, s.unit, speedup, verdict
        );
    }
    println!("end-to-end speedup: {:.2}x", snap.end_to_end_speedup);
    if failed {
        eprintln!("perf check failed: at least one section regressed below its floor");
        std::process::exit(1);
    }
}
