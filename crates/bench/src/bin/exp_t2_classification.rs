//! T2 — entity classification leaderboard: relational GNN vs engineered-
//! feature baselines (AUROC, higher is better).
//!
//! Expected shape: gnn ≥ gbdt ≥ logreg ≫ trivial (0.5), with the GNN edge
//! largest on tasks whose planted signal is relational (neighbor
//! attributes) rather than own-history counts.

use relgraph_bench::{
    canonical_tasks, models_for, run_models, standard_exec_config, task_db, Table, TaskFamily,
};

fn main() {
    println!("T2 — Entity classification (AUROC)\n");
    let tasks: Vec<_> = canonical_tasks()
        .into_iter()
        .filter(|t| t.family == TaskFamily::Classification)
        .collect();
    let models = models_for(TaskFamily::Classification);
    let mut header: Vec<String> = vec!["task".to_string()];
    header.extend(models.iter().map(ToString::to_string));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut acc_table = Table::new(&header_refs);
    for task in &tasks {
        let db = task_db(task, 7);
        let runs = run_models(&db, task.query, &models, &standard_exec_config());
        let mut row = vec![task.id.to_string()];
        let mut acc_row = vec![task.id.to_string()];
        for r in &runs {
            row.push(Table::metric(r.outcome.metric("auroc")));
            acc_row.push(Table::metric(r.outcome.metric("accuracy")));
        }
        table.row(row);
        acc_table.row(acc_row);
    }
    println!("{table}");
    println!("Accuracy at threshold 0.5\n\n{acc_table}");
}
