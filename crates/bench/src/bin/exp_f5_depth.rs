//! F5 — depth ablation: how many message-passing hops the tasks need.
//!
//! Hops 0 (an MLP on entity features alone) through 3, on two tasks whose
//! planted signals live at different distances:
//!
//! * shop-active — churn hazard is driven by the categories of recently
//!   bought products (entity → order → product: needs 2 hops);
//! * clinic-readmit — readmission risk rises with risky prescriptions
//!   (patient → visit → prescription: needs 2 hops).
//!
//! The leftmost column disables the windowed degree-count features too, so
//! the progression reads: raw entity features → + event counts → + 1-hop
//! messages → + 2-hop messages (neighbor attributes) → + 3 hops.
//!
//! Expected shape: a large jump when counts appear, another gain at hop 2
//! where neighbor attributes become reachable, flat at hop 3.

use relgraph_bench::{clinic_db, ecommerce_db, is_quick, Table};
use relgraph_pq::{execute, ExecConfig};
use relgraph_store::Database;

fn main() {
    println!("F5 — GNN depth ablation (AUROC)\n");
    let tasks: [(&str, Database, &str); 2] = [
        (
            "shop-active",
            ecommerce_db(7),
            "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id",
        ),
        (
            "clinic-readmit",
            clinic_db(23),
            "PREDICT EXISTS(visits.*, 0, 60) FOR EACH patients.patient_id",
        ),
    ];
    let mut t = Table::new(&["task", "raw feats", "hops 0", "hops 1", "hops 2", "hops 3"]);
    for (id, db, query) in &tasks {
        let mut row = vec![id.to_string()];
        for (hops, degree_features) in [(0usize, false), (0, true), (1, true), (2, true), (3, true)]
        {
            let cfg = ExecConfig {
                epochs: if is_quick() { 5 } else { 20 },
                lr: 0.02,
                hidden_dim: 48,
                fanouts: vec![8; hops],
                degree_features,
                max_predictions: Some(0),
                ..Default::default()
            };
            let outcome = execute(db, query, &cfg).expect("execute");
            row.push(Table::metric(outcome.metric("auroc")));
        }
        t.row(row);
    }
    println!("{t}");
}
