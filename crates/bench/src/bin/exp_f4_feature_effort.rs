//! F4 — the declarative-ML claim: baseline quality as a function of
//! feature-engineering effort, with the GNN (which needs none) as a flat
//! reference line.
//!
//! The GBDT baseline is fit on growing prefixes of the engineered feature
//! set — standing in for a data scientist adding features one by one.
//! Expected shape: the baseline climbs with effort and plateaus at-or-
//! below the zero-effort GNN.

use relgraph_bench::{ecommerce_db, is_quick, Table};
use relgraph_pq::{execute, ExecConfig, ModelChoice};

fn main() {
    println!("F4 — Performance vs feature-engineering effort (shop-active, AUROC)\n");
    let db = ecommerce_db(7);
    let query = "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id";
    let base = ExecConfig {
        epochs: if is_quick() { 5 } else { 25 },
        lr: 0.02,
        hidden_dim: 48,
        fanouts: vec![8, 8],
        max_predictions: Some(0),
        ..Default::default()
    };

    // Zero-effort reference: the GNN consumes the raw database.
    let gnn = execute(
        &db,
        query,
        &ExecConfig {
            model: ModelChoice::Gnn,
            ..base.clone()
        },
    )
    .expect("gnn run");
    let gnn_auc = gnn.metric("auroc").unwrap_or(f64::NAN);

    let mut t = Table::new(&[
        "hand-built features",
        "gbdt AUROC",
        "gnn AUROC (0 features)",
    ]);
    for &n in &[2usize, 5, 10, 20, 40, 80] {
        let cfg = ExecConfig {
            model: ModelChoice::Gbdt,
            max_features: Some(n),
            ..base.clone()
        };
        let outcome = execute(&db, query, &cfg).expect("gbdt run");
        t.row(vec![
            n.to_string(),
            Table::metric(outcome.metric("auroc")),
            format!("{gnn_auc:.4}"),
        ]);
    }
    println!("{t}");
    println!(
        "The baseline needs tens of curated features to approach the GNN, which\n\
         gets there from the raw relational schema alone — the paper's\n\
         declarative-ML argument in one table."
    );
}
