//! Out-of-core scale harness: generate a 10M+-row e-commerce dataset
//! *straight to disk* (never holding the rows in memory), then time the
//! cold open, a cold serve boot (open + featurize + train + snapshot
//! save), and a warm restart from the saved snapshots.
//!
//! ```text
//! cargo run --release -p relgraph-bench --bin scale_out_of_core \
//!     [-- --customers N] [--dir DIR] [--keep]
//! ```
//!
//! Each phase runs in its own child process so `VmHWM` (peak resident set,
//! from `/proc/self/status`) is measured per phase, not cumulatively. The
//! generation phase is the out-of-core proof: its peak RSS must stay below
//! the on-disk size of the dataset it writes, which is only possible
//! because rows stream through [`relgraph_datagen::RowSink`] into the
//! columnar base files without ever materializing a table. The driver
//! exits non-zero if that bound fails, or if warm-restart is not faster
//! than the cold boot.
//!
//! Defaults produce ~10M rows (850k customers) of column files;
//! `--customers` scales the run up or down (the row multiple is ~12 rows
//! per customer at default rates).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use relgraph_datagen::{ecommerce_schema, generate_ecommerce_into, EcommerceConfig};
use relgraph_pq::ExecConfig;
use relgraph_serve::{save_engine, warm_engine, ServeConfig, ServeEngine};
use relgraph_store::{DataDir, Database};

const QUERY: &str = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";

/// Peak resident set size of this process in bytes (`VmHWM`), 0 where
/// `/proc` is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Recursive on-disk size of `dir` in bytes.
fn dir_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0 * 1024.0)
}

/// Emit a machine-parseable result line (`key=value`) the driver scrapes
/// from the child's stdout.
fn kv(key: &str, value: impl std::fmt::Display) {
    println!("{key}={value}");
}

fn scale_config(customers: usize) -> EcommerceConfig {
    EcommerceConfig {
        customers,
        products: (customers / 50).max(100),
        seed: 7,
        ..Default::default()
    }
}

/// The bounded training recipe for the scale run: one epoch, narrow net,
/// two anchors — enough to exercise the full featurize/train/serve path at
/// 10M rows without turning the harness into a training benchmark.
fn scale_exec() -> ExecConfig {
    let mut exec = ExecConfig {
        epochs: 1,
        hidden_dim: 8,
        fanouts: vec![4, 4],
        max_predictions: Some(1000),
        ..Default::default()
    };
    exec.traintable.num_anchors = 2;
    exec
}

fn phase_generate(dir: &Path, customers: usize) {
    let cfg = scale_config(customers);
    // The schemas come from an empty database — the only `Database` this
    // phase ever holds.
    let mut empty = Database::new("ecommerce");
    ecommerce_schema(&mut empty).expect("schema");
    let schemas = empty.tables().iter().map(|t| t.schema().clone()).collect();

    let t = Instant::now();
    let mut writer = DataDir::create_streamed(dir, schemas).expect("create streamed data dir");
    generate_ecommerce_into(&cfg, &mut writer).expect("generate");
    let rows: u64 = ["customers", "products", "orders", "reviews"]
        .iter()
        .map(|t| writer.rows(t))
        .sum();
    let (_dd, bytes) = DataDir::finish_streamed(dir, "ecommerce", writer).expect("finish streamed");
    kv("generate_secs", format!("{:.2}", t.elapsed().as_secs_f64()));
    kv("rows", rows);
    kv("base_bytes", bytes);
    kv("disk_bytes", dir_bytes(dir));
    kv("peak_rss_bytes", peak_rss_bytes());
}

fn phase_open(dir: &Path) {
    let t = Instant::now();
    let (_dd, db, _report) = DataDir::open(dir).expect("open data dir");
    kv("open_secs", format!("{:.2}", t.elapsed().as_secs_f64()));
    kv("rows", db.total_rows());
    kv("peak_rss_bytes", peak_rss_bytes());
}

fn phase_fit(dir: &Path) {
    let (dd, db, _report) = DataDir::open(dir).expect("open data dir");
    let t = Instant::now();
    let engine =
        ServeEngine::fit(db, QUERY, &scale_exec(), ServeConfig::default()).expect("cold fit");
    let cold_secs = t.elapsed().as_secs_f64();
    save_engine(&dd.snapshots_dir(), &engine, QUERY).expect("save warm-start snapshots");
    kv("cold_boot_secs", format!("{cold_secs:.2}"));
    kv("snapshot_bytes", dir_bytes(&dd.snapshots_dir()));
    kv("peak_rss_bytes", peak_rss_bytes());
}

fn phase_warm(dir: &Path) {
    let t = Instant::now();
    let (dd, db, _report) = DataDir::open(dir).expect("open data dir");
    let (engine, _report) = warm_engine(
        &dd.snapshots_dir(),
        db,
        &scale_exec(),
        ServeConfig::default(),
    )
    .expect("warm boot");
    kv(
        "warm_boot_secs",
        format!("{:.2}", t.elapsed().as_secs_f64()),
    );
    // Prove the engine actually serves.
    let entities = engine.deploy_entities().expect("deploy entities");
    let mut engine = engine;
    let p = engine.predict_row(entities[0]);
    assert!(p.is_finite(), "warm engine served a non-finite prediction");
    kv("peak_rss_bytes", peak_rss_bytes());
}

/// Run one phase in a child process and return its `key=value` output.
fn run_child(phase: &str, dir: &Path, customers: usize) -> Vec<(String, String)> {
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .args([
            "--phase",
            phase,
            "--dir",
            dir.to_str().expect("utf-8 dir"),
            "--customers",
            &customers.to_string(),
        ])
        .output()
        .expect("spawn phase");
    std::io::stderr().write_all(&out.stderr).ok();
    assert!(
        out.status.success(),
        "phase `{phase}` failed with {}",
        out.status
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter_map(|l| {
            l.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

fn get<'a>(kvs: &'a [(String, String)], key: &str) -> &'a str {
    kvs.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("phase output missing `{key}`"))
}

fn main() {
    let mut customers = 850_000usize;
    let mut dir: Option<PathBuf> = None;
    let mut phase: Option<String> = None;
    let mut keep = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--customers" => {
                customers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--customers N")
            }
            "--dir" => dir = Some(PathBuf::from(args.next().expect("--dir DIR"))),
            "--phase" => phase = Some(args.next().expect("--phase NAME")),
            "--keep" => keep = true,
            other => panic!("unknown flag `{other}`"),
        }
    }
    let dir = dir.unwrap_or_else(|| std::env::temp_dir().join("relgraph-scale-out-of-core"));

    // Child mode: run one phase and print its measurements.
    if let Some(phase) = phase {
        match phase.as_str() {
            "generate" => phase_generate(&dir, customers),
            "open" => phase_open(&dir),
            "fit" => phase_fit(&dir),
            "warm" => phase_warm(&dir),
            other => panic!("unknown phase `{other}`"),
        }
        return;
    }

    // Driver mode: phases in child processes, one VmHWM each.
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "[1/4] generating {customers} customers into {}…",
        dir.display()
    );
    let gen = run_child("generate", &dir, customers);
    let rows: u64 = get(&gen, "rows").parse().unwrap();
    let disk: u64 = get(&gen, "disk_bytes").parse().unwrap();
    let gen_rss: u64 = get(&gen, "peak_rss_bytes").parse().unwrap();
    eprintln!(
        "      {rows} rows, {:.2} GiB on disk, generator peak RSS {:.2} GiB, {}s",
        gib(disk),
        gib(gen_rss),
        get(&gen, "generate_secs"),
    );

    eprintln!("[2/4] cold open (columnar base read)…");
    let open = run_child("open", &dir, customers);
    eprintln!(
        "      open {}s, peak RSS {:.2} GiB",
        get(&open, "open_secs"),
        gib(get(&open, "peak_rss_bytes").parse::<u64>().unwrap()),
    );

    eprintln!("[3/4] cold serve boot (open + featurize + train + snapshot save)…");
    let fit = run_child("fit", &dir, customers);
    let cold_secs: f64 = get(&fit, "cold_boot_secs").parse().unwrap();
    eprintln!(
        "      cold boot {cold_secs:.2}s, snapshots {:.2} GiB, peak RSS {:.2} GiB",
        gib(get(&fit, "snapshot_bytes").parse::<u64>().unwrap()),
        gib(get(&fit, "peak_rss_bytes").parse::<u64>().unwrap()),
    );

    eprintln!("[4/4] warm restart (open + snapshot load + catch-up)…");
    let warm = run_child("warm", &dir, customers);
    let warm_secs: f64 = get(&warm, "warm_boot_secs").parse().unwrap();
    eprintln!(
        "      warm boot {warm_secs:.2}s, peak RSS {:.2} GiB",
        gib(get(&warm, "peak_rss_bytes").parse::<u64>().unwrap()),
    );

    println!("rows={rows}");
    println!("disk_gib={:.3}", gib(disk));
    println!("generate_peak_rss_gib={:.3}", gib(gen_rss));
    println!("cold_boot_secs={cold_secs:.2}");
    println!("warm_boot_secs={warm_secs:.2}");
    println!("warm_speedup={:.1}x", cold_secs / warm_secs.max(1e-9));

    if !keep {
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Acceptance gates. RSS is only meaningful where /proc exists, and the
    // out-of-core bound only once the dataset dwarfs the process's fixed
    // baseline (binary, allocator, generator latents) — below ~256 MiB the
    // comparison measures the runtime, not the streaming.
    const RSS_GATE_MIN_BYTES: u64 = 256 * 1024 * 1024;
    if gen_rss > 0 && disk >= RSS_GATE_MIN_BYTES {
        assert!(
            gen_rss < disk,
            "out-of-core bound violated: generator peak RSS {:.2} GiB >= dataset {:.2} GiB",
            gib(gen_rss),
            gib(disk)
        );
    } else if gen_rss > 0 {
        eprintln!(
            "note: dataset {:.0} MiB below the {:.0} MiB floor — RSS gate skipped \
             (generator peak RSS {:.0} MiB)",
            disk as f64 / (1024.0 * 1024.0),
            RSS_GATE_MIN_BYTES as f64 / (1024.0 * 1024.0),
            gen_rss as f64 / (1024.0 * 1024.0),
        );
    }
    assert!(
        warm_secs < cold_secs,
        "warm restart ({warm_secs:.2}s) not faster than cold boot ({cold_secs:.2}s)"
    );
    eprintln!("scale_out_of_core: all gates passed");
}
