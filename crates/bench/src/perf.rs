//! Before/after throughput snapshot for the parallel hot-path engine.
//!
//! Measures, in a single run, the pre-optimization baselines kept in-tree
//! (full-edge-list scan sampling, serial naive matmul with materialized
//! transposes) against the current implementations (temporal CSR sampling
//! with rayon fan-out, cache-blocked fused matmul kernels), and writes the
//! results to `BENCH_pipeline.json` with a stable schema:
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "unix_time": 1700000000,
//!   "threads": 8,
//!   "shards": 8,
//!   "commit_window": 8,
//!   "clients": 4,
//!   "sections": [
//!     {"name": "...", "unit": "...", "precision": "f64", "before": 1.0,
//!      "after": 3.0, "speedup": 3.0},
//!     ...
//!   ],
//!   "end_to_end_speedup": 3.0
//! }
//! ```
//!
//! `before`/`after` are throughputs (higher is better); `speedup` is
//! `after / before`. The `epoch` section is the end-to-end number the
//! optimization work is judged by. `precision` records the numeric mode of
//! the section's "after" side (`f64`, `f32` or `q8`) so a floor tuned for
//! one mode is never compared against a number measured in another;
//! `perf_snapshot --check` refuses such cross-mode comparisons outright.
//! Sections measured on the sharded tier additionally record the shard
//! count they ran at (`"shards": N`, additive — absent elsewhere), and the
//! top-level `clients` field records the concurrent client threads driving
//! the `serving_concurrent` section, so a reading is never compared across
//! client loads.

use std::time::Instant;

use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
use relgraph_db2graph::{build_graph, update_graph, ConvertOptions, GraphCursor};
use relgraph_gnn::batch::{build_batch, input_dims};
use relgraph_gnn::{
    predict_nodes_f32, Aggregation, EmbeddingStore32, GnnConfig, HeteroGnn, InferModel32, Precision,
};
use relgraph_graph::{SamplerConfig, Seed, TemporalSampler};
use relgraph_nn::{clip_global_norm, loss, Activation, Adam, Binding, Optimizer, ParamSet};
use relgraph_pq::traintable::TrainTableConfig;
use relgraph_pq::{analyze, build_training_table, parse, ExecConfig};
use relgraph_serve::quant::{f64_row_bytes, q8_row_bytes};
use relgraph_serve::{ServeConfig, ServeEngine, ShardedEngine};
use relgraph_store::{
    load_database_dir, save_database_dir, CommitWindow, DataDir, IngestPolicy, Row, RowBatch, Value,
};
use relgraph_tensor::{set_baseline_matmul, Graph, Tensor};

/// One before/after measurement.
#[derive(Debug, Clone)]
pub struct Section {
    /// Stable section name (`sample`, `traintable`, `matmul_*`,
    /// `linear_fused`, `ingest`, `epoch`, `serving`, `serving_f32`,
    /// `cache_capacity`, `serving_concurrent`, `serving_mixed`,
    /// `persist_open`, `persistence`, `wal_commit`).
    pub name: String,
    /// Throughput unit (higher is better).
    pub unit: String,
    /// Shard count of the "after" configuration, for sections whose
    /// workload runs on the sharded tier (`serving_concurrent`,
    /// `serving_mixed`); `None` elsewhere. Additive schema field:
    /// sections without it mean "not shard-dependent".
    pub shards: Option<usize>,
    /// Numeric mode of the "after" side (`f64`, `f32` or `q8`). The
    /// `--check` floors are mode-specific: comparing an `f32` throughput
    /// against an `f64` floor (or vice versa) is refused, not fudged.
    pub precision: String,
    /// Pre-optimization throughput.
    pub before: f64,
    /// Current throughput.
    pub after: f64,
}

impl Section {
    fn speedup(&self) -> f64 {
        if self.before > 0.0 {
            self.after / self.before
        } else {
            0.0
        }
    }
}

/// Full snapshot: sections plus the headline end-to-end speedup.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub sections: Vec<Section>,
    pub end_to_end_speedup: f64,
    /// Effective rayon thread count, recorded while measuring (not at
    /// serialization time, when the environment may have changed).
    pub threads: usize,
    /// Shard count used by the `serving_concurrent` / `serving_mixed`
    /// sections' "after" configuration (one shard per core, capped at 8).
    /// Floors in `perf_snapshot --check` key off this: the ≥2x concurrent
    /// multiple is only physically possible when shards > 1.
    pub shards: usize,
    /// Group-commit window (batches per fsync / per epoch publish) used by
    /// the `wal_commit` and `serving_mixed` "after" configurations.
    pub commit_window: usize,
    /// Concurrent client threads driving the `serving_concurrent` section
    /// — the *same* count on both sides, so the recorded speedup is pure
    /// serving machinery, never client-load asymmetry.
    pub clients: usize,
}

impl Snapshot {
    /// Serialize with the stable schema (hand-rolled: the workspace has no
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::from("{\n");
        out.push_str("  \"schema_version\": 2,\n");
        out.push_str(&format!("  \"unix_time\": {unix_time},\n"));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"commit_window\": {},\n", self.commit_window));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str("  \"sections\": [\n");
        for (i, s) in self.sections.iter().enumerate() {
            let shards = s
                .shards
                .map(|n| format!("\"shards\": {n}, "))
                .unwrap_or_default();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\", {}\"precision\": \"{}\", \
                 \"before\": {:.3}, \"after\": {:.3}, \"speedup\": {:.3}}}{}\n",
                s.name,
                s.unit,
                shards,
                s.precision,
                s.before,
                s.after,
                s.speedup(),
                if i + 1 < self.sections.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"end_to_end_speedup\": {:.3}\n",
            self.end_to_end_speedup
        ));
        out.push_str("}\n");
        out
    }
}

/// Best-of-`reps` wall time for `f`, after one warmup call.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Run the full pipeline snapshot. `quick` shrinks workloads ~4× (smoke
/// pass / CI); the committed snapshot uses `quick = false`.
pub fn run_snapshot(quick: bool) -> Snapshot {
    let customers = if quick { 200 } else { 800 };
    let reps = if quick { 2 } else { 3 };
    let db = generate_ecommerce(&EcommerceConfig {
        customers,
        products: (customers / 8).max(20),
        seed: 7,
        ..Default::default()
    })
    .expect("generate");
    let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
    let cust = mapping.node_type("customers").unwrap();
    let (_, hi) = db.time_span().unwrap();
    let mut sections = Vec::new();
    // Capture the effective worker count now, while measuring.
    let threads = rayon::current_num_threads();
    // One serving shard per physical core, capped at 8 — past that the
    // bench workload is too small to keep the queues full.
    let shard_target = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    // Group-commit window for the write-path sections: batches per fsync
    // (wal_commit) and batches per epoch publish (serving_mixed).
    let commit_window = 8usize;
    // Concurrent client threads for serving_concurrent — identical on the
    // before (1 shard) and after (shard-per-core) sides, and recorded in
    // the snapshot so a reading is never compared across client loads.
    let clients = 4usize;

    // --- sample: full-edge-list scan vs temporal CSR + rayon fan-out.
    let sampler = TemporalSampler::new(&graph, SamplerConfig::new(vec![10, 10]));
    let seeds: Vec<Seed> = (0..customers)
        .map(|i| Seed {
            node_type: cust,
            node: i,
            time: hi,
        })
        .collect();
    let before = best_secs(reps, || sampler.sample_scan_baseline(&seeds).total_nodes());
    let after = best_secs(reps, || sampler.sample(&seeds).total_nodes());
    sections.push(Section {
        name: "sample".into(),
        shards: None,
        unit: "seeds/s".into(),
        precision: "f64".into(),
        before: seeds.len() as f64 / before,
        after: seeds.len() as f64 / after,
    });

    // --- traintable: serial vs rayon per-anchor fan-out (same algorithm;
    // the gap is thread scaling, so it is ~1 on a single-core host).
    let aq = analyze(
        &db,
        parse("PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id").unwrap(),
    )
    .unwrap();
    let tt_cfg = TrainTableConfig::default();
    let n_examples = build_training_table(&db, &aq, &tt_cfg).unwrap().len() as f64;
    // Sub-millisecond per call: extra reps (ingest-style) keep the ratio
    // from drifting below 1.0 on pure scheduler noise.
    let tt_reps = (reps * 5).max(10);
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let before = best_secs(tt_reps, || {
        build_training_table(&db, &aq, &tt_cfg).unwrap().len()
    });
    match &prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let after = best_secs(tt_reps, || {
        build_training_table(&db, &aq, &tt_cfg).unwrap().len()
    });
    sections.push(Section {
        name: "traintable".into(),
        shards: None,
        unit: "examples/s".into(),
        precision: "f64".into(),
        before: n_examples / before,
        after: n_examples / after,
    });

    // --- matmul: serial naive ikj vs the packed FMA microkernel.
    let fill = |rows: usize, cols: usize, m0: usize, m1: usize, md: i64| {
        let data: Vec<f64> = (0..rows * cols)
            .map(|x| ((x / cols * m0 + x % cols * m1) as i64 % md - md / 2) as f64)
            .collect();
        Tensor::from_vec(rows, cols, data)
    };
    for &dim in &[128usize, 256] {
        let a = fill(dim, dim, 31, 7, 13);
        let b = fill(dim, dim, 17, 3, 11);
        let gflop = 2.0 * (dim * dim * dim) as f64 / 1e9;
        let before = best_secs(reps, || a.matmul_naive(&b).get(0, 0));
        let after = best_secs(reps, || a.matmul(&b).get(0, 0));
        sections.push(Section {
            name: format!("matmul_{dim}"),
            shards: None,
            unit: "gflop/s".into(),
            precision: "f64".into(),
            before: gflop / before,
            after: gflop / after,
        });
    }

    // --- linear_fused: a full linear-layer forward `relu(x·w + b)`. Before
    // is the pre-optimization tape lowering (naive matmul, then a bias pass,
    // then an activation pass, each materializing a tensor); after is the
    // single fused kernel pass.
    {
        let (m, k, n) = (256usize, 128usize, 64usize);
        let x = fill(m, k, 31, 7, 13);
        let w = fill(k, n, 17, 3, 11);
        let bias = fill(1, n, 5, 29, 9);
        let act = relgraph_tensor::ActKind::Relu;
        // bias + activation are one flop per output element each.
        let gflop = (2.0 * (m * n * k) as f64 + 2.0 * (m * n) as f64) / 1e9;
        let before = best_secs(reps, || {
            let z = x.matmul_naive(&w);
            let mut y = Tensor::zeros(m, n);
            for i in 0..m {
                for ((o, &zv), &bv) in y.row_mut(i).iter_mut().zip(z.row(i)).zip(bias.data()) {
                    *o = (zv + bv).max(0.0);
                }
            }
            y.get(0, 0)
        });
        let after = best_secs(reps, || x.matmul_bias_act(&w, &bias, act).get(0, 0));
        sections.push(Section {
            name: "linear_fused".into(),
            shards: None,
            unit: "gflop/s".into(),
            precision: "f64".into(),
            before: gflop / before,
            after: gflop / after,
        });
    }

    // --- ingest: incremental graph maintenance vs full rebuild. A batch of
    // late events (the newest ~5% of orders and reviews) arrives through the
    // validated streaming path; `before` recompiles the whole graph from
    // scratch after the batch lands, `after` applies the delta to the
    // pre-batch graph. Both produce structurally identical graphs
    // (asserted), so the speedup is pure maintenance savings.
    {
        let (lo2, hi2) = db.time_span().unwrap();
        let t_cut = hi2 - (hi2 - lo2) / 20;
        let mut base = relgraph_store::Database::new("bench-ingest-base");
        for t in db.tables() {
            base.create_table(t.schema().clone()).unwrap();
        }
        let mut late: Vec<(String, i64, relgraph_store::Row)> = Vec::new();
        for t in db.tables() {
            let streamed = matches!(t.name(), "orders" | "reviews");
            for i in 0..t.len() {
                let row = t.row(i).expect("index in range");
                match t.row_timestamp(i) {
                    Some(rt) if streamed && rt > t_cut => {
                        late.push((t.name().to_string(), rt, row))
                    }
                    _ => {
                        base.insert(t.name(), row).unwrap();
                    }
                }
            }
        }
        // Stream arrival order: events arrive sorted by event time.
        late.sort_by_key(|&(_, rt, _)| rt);
        let mut batch = RowBatch::new();
        for (table, _, row) in late {
            batch.push(table, row);
        }
        let n_batch = batch.len() as f64;
        let opts = ConvertOptions::default();
        let (g0, m0) = build_graph(&base, &opts).unwrap();
        let c0 = GraphCursor::capture(&base);
        let mut db_after = base.clone();
        db_after.ingest(batch, &IngestPolicy::reject_all()).unwrap();

        // Both sides are sub-5ms, so extra reps are cheap and the delta
        // side (sub-ms) needs them to measure above scheduler noise.
        let ingest_reps = (reps * 5).max(10);
        let before = best_secs(ingest_reps, || {
            build_graph(&db_after, &opts).unwrap().0.total_edges()
        });
        // Fresh pre-batch state per call, cloned outside the timer.
        let mut pool: Vec<_> = (0..ingest_reps + 1)
            .map(|_| (g0.clone(), m0.clone(), c0.clone()))
            .collect();
        let after = best_secs(ingest_reps, || {
            let (mut g, mut m, mut c) = pool.pop().expect("one clone per rep");
            update_graph(&db_after, &mut g, &mut m, &mut c, &opts).unwrap();
            g.total_edges()
        });
        // Correctness gate: the incremental graph must match a scratch
        // compile of the post-ingest database exactly.
        let (mut g1, mut m1, mut c1) = (g0.clone(), m0.clone(), c0);
        update_graph(&db_after, &mut g1, &mut m1, &mut c1, &opts).unwrap();
        let (scratch, _) = build_graph(&db_after, &opts).unwrap();
        assert!(
            g1.structural_eq(&scratch),
            "incremental graph diverged from scratch rebuild"
        );
        sections.push(Section {
            name: "ingest".into(),
            shards: None,
            unit: "rows/s".into(),
            precision: "f64".into(),
            before: n_batch / before,
            after: n_batch / after,
        });
    }

    // --- epoch: one end-to-end training epoch (sample → batch → forward →
    // backward → Adam step), before = scan sampling + pre-optimization
    // matmul path + a fresh graph per minibatch, after = CSR sampling +
    // fused FMA kernels + the reused tape arena.
    let examples: Vec<(Seed, f64)> = {
        let t = build_training_table(&db, &aq, &tt_cfg).unwrap();
        t.train
            .iter()
            .map(|e| {
                (
                    Seed {
                        node_type: cust,
                        node: e.entity_row,
                        time: e.anchor,
                    },
                    e.label.scalar(),
                )
            })
            .collect()
    };
    let n_epoch = examples.len() as f64;
    let gnn_cfg = GnnConfig {
        hidden_dim: 32,
        layers: 2,
        out_dim: 1,
        activation: Activation::Relu,
        aggregation: Aggregation::Mean,
        seed: 17,
    };
    let run_epoch = |baseline: bool| {
        set_baseline_matmul(baseline);
        let mut ps = ParamSet::new();
        let gnn = HeteroGnn::new(
            &mut ps,
            &input_dims(&graph),
            graph.edge_types(),
            cust.0,
            &gnn_cfg,
        );
        let mut opt = Adam::new(0.01);
        let mut total = 0.0;
        let mut g = Graph::new();
        let mut binding = Binding::new();
        for chunk in examples.chunks(64) {
            let chunk_seeds: Vec<Seed> = chunk.iter().map(|&(s, _)| s).collect();
            let sub = if baseline {
                sampler.sample_scan_baseline(&chunk_seeds)
            } else {
                sampler.sample(&chunk_seeds)
            };
            let batch = build_batch(&graph, &sub);
            if baseline {
                // Pre-optimization behavior: a fresh allocation set per batch.
                g = Graph::new();
                binding = Binding::new();
            } else {
                g.reset();
                binding.reset();
            }
            let pred = gnn.forward(&mut g, &mut binding, &ps, &batch);
            let labels: Vec<f64> = chunk.iter().map(|&(_, y)| y).collect();
            let target = g.constant(Tensor::from_vec(labels.len(), 1, labels));
            let l = loss::bce_with_logits(&mut g, pred, target);
            total += g.value(l).item();
            g.backward(l).unwrap();
            binding.accumulate_grads(&g, &mut ps);
            clip_global_norm(&mut ps, 5.0);
            opt.step(&mut ps);
        }
        set_baseline_matmul(false);
        total
    };
    let before = best_secs(reps.min(2), || run_epoch(true));
    let after = best_secs(reps.min(2), || run_epoch(false));
    let epoch = Section {
        name: "epoch".into(),
        shards: None,
        unit: "examples/s".into(),
        precision: "f64".into(),
        before: n_epoch / before,
        after: n_epoch / after,
    };
    let end_to_end = epoch.speedup();
    sections.push(epoch);

    // --- serving: naive per-request inference (one sample + forward pass
    // per request, the pre-engine deployment path) vs the micro-batched
    // serving engine with its two-tier cache. The request stream is
    // deterministic and revisits entities, as production traffic does; the
    // engine answers repeats from the prediction cache and coalesces the
    // rest, so the gap is caching + batching, not model changes — both
    // sides run the identical fitted model.
    {
        let serve_db = generate_ecommerce(&EcommerceConfig {
            customers: if quick { 80 } else { 160 },
            products: 24,
            seed: 11,
            ..Default::default()
        })
        .expect("generate serving db");
        let exec = ExecConfig {
            epochs: 2,
            hidden_dim: 8,
            fanouts: vec![4, 4],
            ..Default::default()
        };
        let mut engine = ServeEngine::fit(
            serve_db,
            "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id",
            &exec,
            ServeConfig::default(),
        )
        .expect("fit serving engine");
        let entities = engine.deploy_entities().expect("deploy entities");
        let n_requests = if quick { 512 } else { 2048 };
        let stream: Vec<usize> = (0..n_requests)
            .map(|i| entities[(i * 7) % entities.len()])
            .collect();

        // Naive path: each request is its own `model.predict` call. One
        // sampled subgraph + forward pass per request, no reuse between
        // requests. Measured on a stride-8 subsample (it is ~3 orders of
        // magnitude slower per request) and normalized to requests/s.
        let node_type = engine.node_type();
        let anchor = engine.anchor();
        let naive: Vec<Seed> = stream
            .iter()
            .step_by(8)
            .map(|&node| Seed {
                node_type,
                node,
                time: anchor,
            })
            .collect();
        let before = {
            let model = engine.model();
            let graph = engine.graph();
            best_secs(reps, || {
                let mut acc = 0.0;
                for &seed in &naive {
                    acc += model.predict(graph, &[seed])[0];
                }
                acc
            })
        };

        // Engine path: the same stream chopped into deadline-sized
        // micro-batches, served warm (the warmup call inside `best_secs`
        // fills both cache tiers, exactly like steady-state traffic).
        let batch = engine.config().max_batch;
        let after = best_secs(reps, || {
            let mut acc = 0.0;
            for chunk in stream.chunks(batch) {
                acc += engine.predict_batch(chunk).iter().sum::<f64>();
            }
            acc
        });
        sections.push(Section {
            name: "serving".into(),
            shards: None,
            unit: "requests/s".into(),
            precision: "f64".into(),
            before: naive.len() as f64 / before,
            after: stream.len() as f64 / after,
        });

        // Shared fitted state for the sharded sections: the exact model the
        // single-engine path just served, so every configuration scores
        // bit-identical predictions and the gap is pure serving machinery.
        let db0 = engine.db().clone();
        let query0 = engine.query().clone();
        let model0 = engine.model_handle();
        let node_type0 = engine.node_type();
        let metrics0 = engine.metrics_owned();
        let make_sharded_cfg = |n: usize, cfg: ServeConfig| {
            ShardedEngine::from_fitted(
                db0.clone(),
                query0.clone(),
                model0.clone(),
                node_type0,
                metrics0.clone(),
                cfg,
                n,
            )
            .expect("assemble sharded engine")
        };
        let make_sharded = |n: usize| make_sharded_cfg(n, ServeConfig::default());

        // --- serving_concurrent: `clients` concurrent client threads
        // hammering the tier. Before: a single shard, so every client
        // funnels into one worker and its one cache slice. After: one
        // shard per core (capped at 8) with the shared L2 tier and
        // core-affinity placement — the full scale-out configuration.
        // Both sides are measured under the *identical* protocol: the
        // same client count, the same per-client request stream and batch
        // size, and the same warmup (one untimed full pass inside
        // `best_secs` warms every cache tier). Crucially the two engines
        // are measured **sequentially** — each is built, warmed, timed,
        // and dropped before the other exists — because shard workers
        // poll their inboxes with short timed parks when idle, and an
        // idle engine's wakeups would otherwise pollute the other side's
        // measurement on shared cores. (That co-existence was exactly the
        // bug that produced the historical sub-1.0x reading for this
        // section.) On a single-core host the two configurations still
        // run on the same silicon and the ratio is ~1.0 by construction;
        // the ≥2x acceptance floor only applies when `shards` >= 4.
        {
            let batch = engine.config().max_batch;
            let run_clients = |eng: &ShardedEngine| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..clients)
                        .map(|c| {
                            let stream = &stream;
                            scope.spawn(move || {
                                let mut acc = 0.0;
                                // Each client walks the stream from its own
                                // offset so requests overlap but are not in
                                // lockstep.
                                let off = c * stream.len() / clients;
                                for chunk in stream[off..]
                                    .chunks(batch)
                                    .chain(stream[..off].chunks(batch))
                                {
                                    acc += eng.predict_batch_rows(chunk).iter().sum::<f64>();
                                }
                                acc
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client thread"))
                        .sum::<f64>()
                })
            };
            let before = {
                let single = make_sharded(1);
                best_secs(reps, || run_clients(&single))
            };
            let after = {
                let multi = make_sharded_cfg(
                    shard_target,
                    ServeConfig {
                        affinity: true,
                        ..ServeConfig::default()
                    },
                );
                best_secs(reps, || run_clients(&multi))
            };
            let total = (clients * stream.len()) as f64;
            sections.push(Section {
                name: "serving_concurrent".into(),
                shards: Some(shard_target),
                unit: "requests/s".into(),
                precision: "f64".into(),
                before: total / before,
                after: total / after,
            });
        }

        // --- serving_mixed: honest steady-state number. Each step is a
        // burst of small ingest batches of fresh orders (timestamps
        // strictly inside the existing span, so the precise-invalidation
        // path runs, never a flush) followed by reads over all deploy
        // entities: every write dirties k-hop neighborhoods, so a slice of
        // each read batch misses and recomputes. Before: the pre-shard
        // single-threaded engine applies the burst one batch at a time —
        // one delta + one dirty closure + one eviction sweep per batch.
        // After: the sharded tier drains the whole burst through
        // `ingest_group`, paying one merged closure, one snapshot
        // publish, and one coalesced invalidation broadcast for the burst
        // (DESIGN.md §14.8). Predictions are identical; the multiple is
        // the coalesced write path.
        {
            let next_id = std::sync::atomic::AtomicI64::new(50_000_000);
            let (lo, hi) = db0.time_span().unwrap();
            let n_customers = entities.len() as i64;
            let steps = if quick { 4 } else { 8 };
            let writes_per_batch = 4usize;
            let mk_burst = |step: usize| -> Vec<RowBatch> {
                (0..commit_window)
                    .map(|b| {
                        let mut batch = RowBatch::new();
                        for i in 0..writes_per_batch {
                            let k = step * 31 + b * 13 + i;
                            let t = lo + (hi - lo) / 4 + (hi - lo) / 2 * (k % 97) as i64 / 97;
                            batch.push(
                                "orders",
                                Row::new()
                                    .push(
                                        next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                                    )
                                    .push((step * 13 + b * 11 + i * 7) as i64 % n_customers)
                                    .push((step * 5 + b + i * 3) as i64 % 24)
                                    .push(1i64 + (i % 4) as i64)
                                    .push(9.5 + i as f64)
                                    .push("web")
                                    .push(Value::Timestamp(t)),
                            );
                        }
                        batch
                    })
                    .collect()
            };
            let policy = IngestPolicy::coerce_all();
            let ops = (steps * (commit_window * writes_per_batch + entities.len())) as f64;

            let mut pre = ServeEngine::from_fitted(
                db0.clone(),
                query0.clone(),
                model0.clone(),
                node_type0,
                metrics0.clone(),
                ServeConfig::default(),
            )
            .expect("assemble pre-shard engine");
            let before = best_secs(reps, || {
                let mut acc = 0.0;
                for step in 0..steps {
                    for batch in mk_burst(step) {
                        pre.ingest(batch, &policy).expect("ingest");
                    }
                    acc += pre.predict_batch(&entities).iter().sum::<f64>();
                }
                acc
            });
            let shd = make_sharded(shard_target);
            let after = best_secs(reps, || {
                let mut acc = 0.0;
                for step in 0..steps {
                    let group = shd
                        .ingest_group(mk_burst(step), &policy)
                        .expect("group ingest");
                    assert_eq!(
                        group.accepted_batches(),
                        commit_window,
                        "serving_mixed burst batch rejected"
                    );
                    acc += shd.predict_batch_rows(&entities).iter().sum::<f64>();
                }
                acc
            });
            sections.push(Section {
                name: "serving_mixed".into(),
                shards: Some(shard_target),
                unit: "ops/s".into(),
                precision: "f64".into(),
                before: ops / before,
                after: ops / after,
            });
        }

        // --- serving_f32: the reduced-precision inference path. Both sides
        // run the identical fitted model through the identical engine with
        // the prediction tier effectively disabled (capacity 1), so every
        // request re-runs seed-level inference against a warm embedding
        // tier; the gap is purely the f32 tape-free kernel path vs the f64
        // autograd-tape path. Tolerance story: `DESIGN.md` §15.
        {
            let mk = |precision| {
                ServeEngine::from_fitted(
                    db0.clone(),
                    query0.clone(),
                    model0.clone(),
                    node_type0,
                    metrics0.clone(),
                    ServeConfig {
                        prediction_cache: 1,
                        precision,
                        ..ServeConfig::default()
                    },
                )
                .expect("assemble precision engine")
            };
            let mut eng64 = mk(Precision::F64);
            let mut eng32 = mk(Precision::F32);
            let batch = engine.config().max_batch;
            let run = |eng: &mut ServeEngine| {
                let mut acc = 0.0;
                for chunk in stream.chunks(batch) {
                    acc += eng.predict_batch(chunk).iter().sum::<f64>();
                }
                acc
            };
            let before = best_secs(reps, || run(&mut eng64));
            let after = best_secs(reps, || run(&mut eng32));
            sections.push(Section {
                name: "serving_f32".into(),
                shards: None,
                unit: "requests/s".into(),
                precision: "f32".into(),
                before: stream.len() as f64 / before,
                after: stream.len() as f64 / after,
            });
        }

        // --- cache_capacity: embedding rows resident at an equal byte
        // budget, `f64` tier vs the 8-bit quantized tier. Row shapes are
        // captured from the live workload (a probe store records every row
        // the deploy entities' inference actually materializes), then both
        // tiers are costed with their real per-row layouts: `8·dim` bytes
        // for `f64`, `dim + 8` (codes plus a two-`f32` scale/min header)
        // for `q8`. Capacity, not time: the numbers are exact arithmetic
        // over the captured shapes, so the ≥4x floor is noise-free.
        {
            struct DimProbe(Vec<usize>);
            impl EmbeddingStore32 for DimProbe {
                fn get(&mut self, _ty: usize, _node: usize, _level: usize) -> Option<Vec<f32>> {
                    None
                }
                fn put(&mut self, _ty: usize, _node: usize, _level: usize, emb: Vec<f32>) {
                    self.0.push(emb.len());
                }
            }
            let m32 = InferModel32::from_model(&model0);
            let mut probe = DimProbe(Vec::new());
            let _ = predict_nodes_f32(
                &m32,
                engine.graph(),
                node_type0,
                &entities,
                engine.anchor(),
                &mut probe,
            );
            let rows = probe.0.len().max(1) as f64;
            let bytes64: usize = probe.0.iter().map(|&d| f64_row_bytes(d)).sum();
            let bytes8: usize = probe.0.iter().map(|&d| q8_row_bytes(d)).sum();
            let budget = (1usize << 20) as f64;
            sections.push(Section {
                name: "cache_capacity".into(),
                shards: None,
                unit: "rows".into(),
                precision: "q8".into(),
                before: budget * rows / bytes64.max(1) as f64,
                after: budget * rows / bytes8.max(1) as f64,
            });
        }
    }

    // --- persist_open / persistence: the durable on-disk substrate.
    // `persist_open` is text-CSV parse vs the columnar binary base read of
    // the same database — the win is format, not threading. `persistence`
    // is a full cold serve boot (open + featurize + train) vs a warm
    // restart from saved graph/model snapshots (open + snapshot load + an
    // empty catch-up delta); predictions are byte-identical either way, so
    // the gap is exactly the work the snapshots make skippable.
    {
        let pdb = generate_ecommerce(&EcommerceConfig {
            customers: if quick { 80 } else { 160 },
            products: 24,
            seed: 13,
            ..Default::default()
        })
        .expect("generate persistence db");
        let n_rows: usize = pdb.tables().iter().map(|t| t.len()).sum();
        let tmp =
            std::env::temp_dir().join(format!("relgraph-bench-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).expect("create bench tmp dir");
        let csv_dir = tmp.join("csv");
        let data_dir = tmp.join("data");
        save_database_dir(&pdb, &csv_dir).expect("save csv dir");
        DataDir::create(&data_dir, &pdb).expect("create data dir");

        let open_reps = (reps * 3).max(6);
        let before = best_secs(open_reps, || {
            load_database_dir(&csv_dir).expect("csv load").total_rows()
        });
        let after = best_secs(open_reps, || {
            DataDir::open(&data_dir)
                .expect("columnar open")
                .1
                .total_rows()
        });
        sections.push(Section {
            name: "persist_open".into(),
            shards: None,
            unit: "rows/s".into(),
            precision: "f64".into(),
            before: n_rows as f64 / before,
            after: n_rows as f64 / after,
        });

        let exec = ExecConfig {
            epochs: 2,
            hidden_dim: 8,
            fanouts: vec![4, 4],
            ..Default::default()
        };
        let query = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id";
        // Fit once to produce the snapshots the warm path boots from.
        let (_, db1, _) = DataDir::open(&data_dir).expect("open for fit");
        let fitted =
            ServeEngine::fit(db1, query, &exec, ServeConfig::default()).expect("fit for snapshot");
        let snaps = data_dir.join("snapshots");
        relgraph_serve::save_engine(&snaps, &fitted, query).expect("save warm start");
        let boot_reps = reps.min(2);
        let before = best_secs(boot_reps, || {
            let (_, db, _) = DataDir::open(&data_dir).expect("cold open");
            ServeEngine::fit(db, query, &exec, ServeConfig::default())
                .expect("cold fit")
                .anchor()
        });
        let after = best_secs(boot_reps, || {
            let (_, db, _) = DataDir::open(&data_dir).expect("warm open");
            relgraph_serve::warm_engine(&snaps, db, &exec, ServeConfig::default())
                .expect("warm boot")
                .0
                .anchor()
        });
        sections.push(Section {
            name: "persistence".into(),
            shards: None,
            unit: "boots/s".into(),
            precision: "f64".into(),
            before: 1.0 / before,
            after: 1.0 / after,
        });

        // --- wal_commit: durable ingest acknowledgement throughput.
        // Before: every batch is its own WAL frame with its own
        // `sync_data` — the pre-group-commit write path. After: up to
        // `commit_window` batches coalesce into one group frame under a
        // single covering fsync (DESIGN.md §14.8). Acknowledgement still
        // happens only after the covering fsync, so the durability
        // contract is identical; the multiple is pure fsync amortization.
        {
            let wal_dir = tmp.join("waldata");
            DataDir::create(&wal_dir, &pdb).expect("create wal bench dir");
            let (mut dd, mut db, _) = DataDir::open(&wal_dir).expect("open wal bench dir");
            let n_batches = if quick { 16 } else { 32 };
            let rows_per_batch = 4usize;
            let next_id = std::sync::atomic::AtomicI64::new(80_000_000);
            let (lo, hi) = db.time_span().unwrap();
            let n_customers = db.table("customers").expect("customers").len() as i64;
            let policy = IngestPolicy::coerce_all();
            let mk_batches = || -> Vec<RowBatch> {
                (0..n_batches)
                    .map(|b| {
                        let mut batch = RowBatch::new();
                        for i in 0..rows_per_batch {
                            let k = b * 29 + i;
                            let t = lo + (hi - lo) / 4 + (hi - lo) / 2 * (k % 89) as i64 / 89;
                            batch.push(
                                "orders",
                                Row::new()
                                    .push(
                                        next_id.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                                    )
                                    .push((b * 11 + i * 3) as i64 % n_customers)
                                    .push((b * 7 + i) as i64 % 24)
                                    .push(1i64 + (i % 3) as i64)
                                    .push(4.5 + i as f64)
                                    .push("web")
                                    .push(Value::Timestamp(t)),
                            );
                        }
                        batch
                    })
                    .collect()
            };
            dd.set_commit_window(CommitWindow::batches(1));
            let before = best_secs(reps, || {
                for batch in mk_batches() {
                    dd.ingest(&mut db, batch, &policy)
                        .expect("per-batch ingest");
                }
            });
            dd.set_commit_window(CommitWindow::batches(commit_window));
            let after = best_secs(reps, || {
                let reports = dd
                    .ingest_group(&mut db, mk_batches(), &policy)
                    .expect("group ingest");
                assert!(
                    reports.iter().all(|r| r.is_ok()),
                    "wal_commit batch rejected"
                );
            });
            sections.push(Section {
                name: "wal_commit".into(),
                shards: None,
                unit: "batches/s".into(),
                precision: "f64".into(),
                before: n_batches as f64 / before,
                after: n_batches as f64 / after,
            });
        }
        let _ = std::fs::remove_dir_all(&tmp);
    }

    Snapshot {
        sections,
        end_to_end_speedup: end_to_end,
        threads,
        shards: shard_target,
        commit_window,
        clients,
    }
}

/// Run the snapshot and write it to `path` (typically
/// `BENCH_pipeline.json` at the workspace root).
pub fn write_snapshot(path: &str, quick: bool) -> std::io::Result<Snapshot> {
    let snap = run_snapshot(quick);
    std::fs::write(path, snap.to_json())?;
    Ok(snap)
}
