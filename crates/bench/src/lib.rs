//! # relgraph-bench
//!
//! The experiment harness: canonical task definitions, a model-comparison
//! runner, and table-formatted reporting. Each `exp_*` binary regenerates
//! one table or figure of EXPERIMENTS.md:
//!
//! | binary | artifact |
//! |---|---|
//! | `exp_t1_datasets` | T1 — dataset & task inventory |
//! | `exp_t2_classification` | T2 — entity classification leaderboard |
//! | `exp_t3_regression` | T3 — entity regression leaderboard |
//! | `exp_t4_recommendation` | T4 — recommendation leaderboard |
//! | `exp_f1_improvement` | F1 — relative-improvement summary |
//! | `exp_f2_leakage` | F2 — temporal-leakage ablation |
//! | `exp_f3_scaling` | F3 — dataset-size scaling |
//! | `exp_f4_feature_effort` | F4 — feature-engineering-effort sweep |
//! | `exp_f5_depth` | F5 — GNN depth ablation |
//!
//! Run all with `for b in exp_…; do cargo run --release -p relgraph-bench --bin $b; done`
//! or individually. Set `RELGRAPH_QUICK=1` to shrink workloads ~4× for a
//! smoke pass.

pub mod perf;
pub mod report;
pub mod tasks;

pub use perf::{run_snapshot, write_snapshot, Snapshot};
pub use report::Table;
pub use tasks::{
    canonical_tasks, clinic_db, ecommerce_db, forum_db, is_quick, models_for, quick_scale,
    run_models, standard_exec_config, task_db, ModelRun, Task, TaskFamily,
};
