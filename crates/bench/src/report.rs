//! Aligned-column table rendering for experiment output.

/// A simple text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Format a metric with four decimals, or a dash for NaN/missing.
    pub fn metric(v: Option<f64>) -> String {
        match v {
            Some(x) if x.is_finite() => format!("{x:.4}"),
            _ => "—".to_string(),
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(Table::metric(Some(0.12345)), "0.1235");
        assert_eq!(Table::metric(None), "—");
        assert_eq!(Table::metric(Some(f64::NAN)), "—");
    }
}
