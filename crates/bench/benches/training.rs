//! Micro-benchmarks for the learning path: dense kernels, autodiff
//! round-trips, one GNN training epoch and GBDT fitting.
//!
//! Run with `cargo bench -p relgraph-bench --bench training`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
use relgraph_db2graph::{build_graph, ConvertOptions};
use relgraph_gnn::{train_node_model, TaskKind, TrainConfig};
use relgraph_graph::Seed;
use relgraph_pq::traintable::TrainTableConfig;
use relgraph_pq::{analyze, build_training_table, parse};
use relgraph_tensor::{Graph, Tensor};

fn bench_tensor_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("tensor_ops");
    for &n in &[64usize, 128] {
        let a = Tensor::full(n, n, 0.5);
        let b = Tensor::full(n, n, -0.25);
        g.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).sum())
        });
    }
    // Full forward+backward of a small MLP-like graph.
    g.bench_function("autodiff_roundtrip_256x32", |bench| {
        let x = Tensor::full(256, 32, 0.1);
        let w1 = Tensor::full(32, 32, 0.05);
        let w2 = Tensor::full(32, 1, -0.02);
        bench.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let w1v = g.leaf(w1.clone());
            let h = g.matmul(xv, w1v);
            let h = g.relu(h);
            let w2v = g.leaf(w2.clone());
            let o = g.matmul(h, w2v);
            let l = g.mean_all(o);
            g.backward(l).unwrap();
            g.grad(w1v).unwrap().sum()
        })
    });
    g.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 300,
        products: 40,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    let aq = analyze(
        &db,
        parse("PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id").unwrap(),
    )
    .unwrap();
    let table = build_training_table(&db, &aq, &TrainTableConfig::default()).unwrap();
    let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
    let cust = mapping.node_type("customers").unwrap();
    let train: Vec<(Seed, f64)> = table
        .train
        .iter()
        .map(|e| {
            (
                Seed {
                    node_type: cust,
                    node: e.entity_row,
                    time: e.anchor,
                },
                e.label.scalar(),
            )
        })
        .collect();
    let mut g = c.benchmark_group("gnn_training");
    g.sample_size(10);
    g.bench_function("one_epoch_2hop", |b| {
        let cfg = TrainConfig {
            epochs: 1,
            hidden_dim: 32,
            fanouts: vec![8, 8],
            ..Default::default()
        };
        b.iter(|| {
            train_node_model(&graph, TaskKind::Binary, &train, &[], &cfg)
                .unwrap()
                .num_params()
        })
    });
    g.finish();
}

fn bench_gbdt(c: &mut Criterion) {
    use relgraph_baselines::{Gbdt, GbdtConfig, GbdtObjective};
    // Synthetic tabular data.
    let n = 500;
    let d = 20;
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 31 + j * 17) % 97) as f64 / 97.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| if r[0] + r[3] > 1.0 { 1.0 } else { 0.0 })
        .collect();
    let mut g = c.benchmark_group("gbdt");
    g.sample_size(10);
    g.bench_function("fit_500x20_60rounds", |b| {
        let cfg = GbdtConfig {
            rounds: 60,
            ..Default::default()
        };
        b.iter(|| {
            Gbdt::fit(&x, &y, GbdtObjective::Binary, &cfg)
                .unwrap()
                .num_trees()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tensor_ops, bench_train_epoch, bench_gbdt);
criterion_main!(benches);
