//! Micro-benchmarks for the data path: generation, graph compilation,
//! temporal sampling, feature engineering and query compilation — plus the
//! before/after hot-path snapshot written to `BENCH_pipeline.json`.
//!
//! Run with `cargo bench -p relgraph-bench --bench pipeline`. Set
//! `RELGRAPH_QUICK=1` for a ~4× smaller smoke pass, and
//! `RELGRAPH_BENCH_OUT` to redirect the JSON snapshot (default
//! `BENCH_pipeline.json` in the working directory).

use criterion::{criterion_group, BenchmarkId, Criterion};
use relgraph_baselines::{FeatureConfig, FeatureEngineer};
use relgraph_datagen::{generate_ecommerce, EcommerceConfig};
use relgraph_db2graph::{build_graph, ConvertOptions};
use relgraph_graph::{SamplerConfig, Seed, TemporalSampler};
use relgraph_pq::traintable::TrainTableConfig;
use relgraph_pq::{analyze, build_training_table, parse};

fn db(customers: usize) -> relgraph_store::Database {
    generate_ecommerce(&EcommerceConfig {
        customers,
        products: (customers / 8).max(20),
        seed: 7,
        ..Default::default()
    })
    .expect("generate")
}

fn bench_datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagen");
    g.sample_size(10);
    for &n in &[200usize, 800] {
        g.bench_with_input(BenchmarkId::new("ecommerce", n), &n, |b, &n| {
            b.iter(|| db(n).total_rows())
        });
    }
    g.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_build");
    g.sample_size(10);
    for &n in &[200usize, 800] {
        let database = db(n);
        g.bench_with_input(BenchmarkId::new("db2graph", n), &database, |b, database| {
            b.iter(|| {
                let (graph, _) = build_graph(database, &ConvertOptions::default()).unwrap();
                graph.total_edges()
            })
        });
    }
    g.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let database = db(800);
    let (graph, mapping) = build_graph(&database, &ConvertOptions::default()).unwrap();
    let cust = mapping.node_type("customers").unwrap();
    let (_, hi) = database.time_span().unwrap();
    let seeds: Vec<Seed> = (0..64)
        .map(|i| Seed {
            node_type: cust,
            node: i * 3,
            time: hi,
        })
        .collect();
    let mut g = c.benchmark_group("sampler");
    for hops in [1usize, 2, 3] {
        let sampler = TemporalSampler::new(&graph, SamplerConfig::new(vec![10; hops]));
        g.bench_with_input(
            BenchmarkId::new("batch64_fanout10", hops),
            &sampler,
            |b, sampler| b.iter(|| sampler.sample(&seeds).total_nodes()),
        );
    }
    g.finish();
}

fn bench_feature_engineering(c: &mut Criterion) {
    let database = db(400);
    let fe = FeatureEngineer::new(&database, "customers", FeatureConfig::default()).unwrap();
    let (_, hi) = database.time_span().unwrap();
    let seeds: Vec<(usize, i64)> = (0..200).map(|i| (i, hi)).collect();
    let mut g = c.benchmark_group("feature_engineering");
    g.bench_function("compute_200x", |b| {
        b.iter(|| fe.compute(&database, &seeds).unwrap().len())
    });
    g.bench_function("plan", |b| {
        b.iter(|| {
            FeatureEngineer::new(&database, "customers", FeatureConfig::default())
                .unwrap()
                .num_features()
        })
    });
    g.finish();
}

fn bench_pq_compile(c: &mut Criterion) {
    let database = db(400);
    let query = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
                 WHERE region = 'north' USING model = gnn, epochs = 5";
    let mut g = c.benchmark_group("pq_compile");
    g.bench_function("parse", |b| b.iter(|| parse(query).unwrap()));
    g.bench_function("parse_analyze", |b| {
        b.iter(|| analyze(&database, parse(query).unwrap()).unwrap())
    });
    let aq = analyze(&database, parse(query).unwrap()).unwrap();
    g.bench_function("training_table", |b| {
        b.iter(|| {
            build_training_table(&database, &aq, &TrainTableConfig::default())
                .unwrap()
                .len()
        })
    });
    g.finish();
}

fn bench_ingest(c: &mut Criterion) {
    use relgraph_db2graph::{update_graph, GraphCursor};
    use relgraph_store::{Database, IngestPolicy, RowBatch};

    let full = db(800);
    let (lo, hi) = full.time_span().unwrap();
    let t_cut = hi - (hi - lo) / 20;
    let mut base = Database::new("bench-ingest");
    for t in full.tables() {
        base.create_table(t.schema().clone()).unwrap();
    }
    let mut late = Vec::new();
    for t in full.tables() {
        let streamed = matches!(t.name(), "orders" | "reviews");
        for i in 0..t.len() {
            let row = t.row(i).unwrap();
            match t.row_timestamp(i) {
                Some(rt) if streamed && rt > t_cut => late.push((t.name().to_string(), rt, row)),
                _ => {
                    base.insert(t.name(), row).unwrap();
                }
            }
        }
    }
    late.sort_by_key(|&(_, rt, _)| rt);
    let mut batch = RowBatch::new();
    for (table, _, row) in late {
        batch.push(table, row);
    }
    let n_rows = batch.len();
    let opts = ConvertOptions::default();
    let (g0, m0) = build_graph(&base, &opts).unwrap();
    let c0 = GraphCursor::capture(&base);

    let mut g = c.benchmark_group("ingest");
    g.bench_function(&format!("validate_apply_{n_rows}rows"), |b| {
        b.iter(|| {
            let mut db = base.clone();
            db.ingest(batch.clone(), &IngestPolicy::reject_all())
                .unwrap()
                .accepted
        })
    });
    let mut db_after = base.clone();
    db_after
        .ingest(batch.clone(), &IngestPolicy::reject_all())
        .unwrap();
    g.bench_function("full_rebuild", |b| {
        b.iter(|| build_graph(&db_after, &opts).unwrap().0.total_edges())
    });
    g.bench_function("incremental_delta", |b| {
        b.iter_with_setup(
            || (g0.clone(), m0.clone(), c0.clone()),
            |(mut graph, mut mapping, mut cursor)| {
                update_graph(&db_after, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();
                graph.total_edges()
            },
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_datagen,
    bench_graph_build,
    bench_sampler,
    bench_feature_engineering,
    bench_pq_compile,
    bench_ingest
);

fn main() {
    benches();
    // Before/after snapshot of the parallel hot-path work, written with a
    // stable schema so successive runs can be diffed.
    // cargo bench runs from the package directory; default to the
    // workspace root so the snapshot lands next to EXPERIMENTS.md.
    let out = std::env::var("RELGRAPH_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json").to_string()
    });
    let quick = std::env::var("RELGRAPH_QUICK").is_ok_and(|v| v != "0");
    let snap = relgraph_bench::write_snapshot(&out, quick).expect("write snapshot");
    for s in &snap.sections {
        println!(
            "{:<12} {:>12.1} -> {:>12.1} {} ({:.2}x)",
            s.name,
            s.before,
            s.after,
            s.unit,
            if s.before > 0.0 {
                s.after / s.before
            } else {
                0.0
            }
        );
    }
    println!(
        "end-to-end epoch speedup: {:.2}x -> {out}",
        snap.end_to_end_speedup
    );
}
