//! Smoke test for the before/after performance snapshot.
//!
//! Ignored by default: the quick snapshot trains a small GNN, which is
//! only reasonable under `--release`. Run with
//! `cargo test --release -p relgraph-bench -- --ignored --nocapture`.

use relgraph_bench::run_snapshot;

#[test]
#[ignore = "slow in debug builds; run with --release --ignored"]
fn quick_snapshot_smoke() {
    let snap = run_snapshot(true);
    for s in &snap.sections {
        eprintln!(
            "{:<12} {:>12.1} -> {:>12.1} {} ({:.2}x)",
            s.name,
            s.before,
            s.after,
            s.unit,
            s.after / s.before
        );
    }
    assert!(snap.shards >= 1, "shard count recorded in the snapshot");
    for name in ["serving", "serving_concurrent", "serving_mixed"] {
        assert!(
            snap.sections.iter().any(|s| s.name == name),
            "{name} section present"
        );
    }
    let ingest = snap
        .sections
        .iter()
        .find(|s| s.name == "ingest")
        .expect("ingest section present");
    // The structural_eq gate inside run_snapshot already asserts
    // correctness; here we only sanity-check that the incremental path
    // is not slower than a scratch rebuild.
    assert!(
        ingest.after > ingest.before,
        "incremental maintenance slower than full rebuild: {} vs {} rows/s",
        ingest.after,
        ingest.before
    );
}
