//! Property-based tests for the database→graph compiler.

use proptest::prelude::*;
use relgraph_db2graph::{build_graph, snapshot_at, ConvertOptions};
use relgraph_store::{DataType, Database, Row, TableSchema, Value};

/// A two-table DB: `parents(id, t)` and `children(id, parent_id, x, t)`,
/// with child→parent assignments and times drawn from the inputs.
fn build_db(n_parents: usize, children: &[(usize, f64, i64)]) -> Database {
    let mut db = Database::new("d");
    db.create_table(
        TableSchema::builder("parents")
            .column("id", DataType::Int)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("children")
            .column("id", DataType::Int)
            .column("parent_id", DataType::Int)
            .column("x", DataType::Float)
            .column("at", DataType::Timestamp)
            .primary_key("id")
            .time_column("at")
            .foreign_key("parent_id", "parents")
            .build()
            .unwrap(),
    )
    .unwrap();
    for p in 0..n_parents {
        db.insert(
            "parents",
            Row::new().push(p as i64).push(Value::Timestamp(0)),
        )
        .unwrap();
    }
    for (i, &(parent, x, t)) in children.iter().enumerate() {
        db.insert(
            "children",
            Row::new()
                .push(i as i64)
                .push((parent % n_parents) as i64)
                .push(x)
                .push(Value::Timestamp(t)),
        )
        .unwrap();
    }
    db
}

fn children_strategy() -> impl Strategy<Value = (usize, Vec<(usize, f64, i64)>)> {
    (1usize..8).prop_flat_map(|n_parents| {
        proptest::collection::vec((0usize..8, -10.0f64..10.0, 0i64..1000), 0..40)
            .prop_map(move |c| (n_parents, c))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graph_conserves_rows_and_edges((n_parents, children) in children_strategy()) {
        let db = build_db(n_parents, &children);
        let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
        prop_assert_eq!(graph.total_nodes(), db.total_rows());
        // One forward + one reverse edge per (non-null) FK cell.
        prop_assert_eq!(graph.total_edges(), children.len() * 2);
        let p = mapping.node_type("parents").unwrap();
        let c = mapping.node_type("children").unwrap();
        prop_assert_eq!(graph.num_nodes(p), n_parents);
        prop_assert_eq!(graph.num_nodes(c), children.len());
    }

    #[test]
    fn edge_times_equal_referencing_row_times((n_parents, children) in children_strategy()) {
        let db = build_db(n_parents, &children);
        let (graph, _) = build_graph(&db, &ConvertOptions::default()).unwrap();
        let fwd = graph.edge_type_by_name("children.parent_id->parents").unwrap();
        for (row, &(_, _, t)) in children.iter().enumerate() {
            let ns: Vec<(usize, i64)> = graph.neighbors(fwd, row).collect();
            prop_assert_eq!(ns.len(), 1);
            prop_assert_eq!(ns[0].1, t);
        }
    }

    #[test]
    fn node_features_are_finite_and_bias_terminated((n_parents, children) in children_strategy()) {
        let db = build_db(n_parents, &children);
        let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
        for (_, nt) in &mapping.node_types {
            let f = graph.features(*nt);
            for r in 0..f.rows() {
                prop_assert!(f.row(r).iter().all(|x| x.is_finite()));
                prop_assert_eq!(f.row(r)[f.dim() - 1], 1.0, "bias slot");
            }
        }
    }

    #[test]
    fn snapshot_counts_match_filter(
        (n_parents, children) in children_strategy(),
        cut in 0i64..1000,
    ) {
        let db = build_db(n_parents, &children);
        let snap = snapshot_at(&db, cut).unwrap();
        let expected = children.iter().filter(|&&(_, _, t)| t <= cut).count();
        prop_assert_eq!(snap.table("children").unwrap().len(), expected);
        prop_assert_eq!(snap.table("parents").unwrap().len(), n_parents);
        // Snapshot at max time is the whole DB.
        let full = snapshot_at(&db, 1000).unwrap();
        prop_assert_eq!(full.total_rows(), db.total_rows());
    }

    #[test]
    fn snapshot_graph_is_subgraph_of_full(
        (n_parents, children) in children_strategy(),
        cut in 0i64..1000,
    ) {
        let db = build_db(n_parents, &children);
        let snap = snapshot_at(&db, cut).unwrap();
        let (g_full, _) = build_graph(&db, &ConvertOptions::default()).unwrap();
        let (g_snap, _) = build_graph(&snap, &ConvertOptions::default()).unwrap();
        prop_assert!(g_snap.total_nodes() <= g_full.total_nodes());
        prop_assert!(g_snap.total_edges() <= g_full.total_edges());
    }
}
