//! Time-truncated database snapshots.

use relgraph_store::{Database, StoreResult};

/// Copy `db` keeping only rows whose time-column value is `≤ t` (tables
/// without a time column are copied in full). Used to simulate what a
/// deployed system would have seen at time `t`.
///
/// Note: the snapshot may contain dangling foreign keys if a referencing
/// row predates its referenced row; callers that need integrity should run
/// [`Database::validate`] on the result.
pub fn snapshot_at(db: &Database, t: i64) -> StoreResult<Database> {
    let mut out = Database::new(format!("{}@{}", db.name(), t));
    for table in db.tables() {
        out.create_table(table.schema().clone())?;
    }
    for table in db.tables() {
        let has_time = table.schema().time_column_index().is_some();
        for i in 0..table.len() {
            if has_time {
                match table.row_timestamp(i) {
                    Some(rt) if rt <= t => {}
                    // Rows with NULL time are treated as always-present.
                    None => {}
                    _ => continue,
                }
            }
            let row = table.row(i).expect("index in range");
            out.insert(table.name(), row)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_store::{DataType, Row, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::builder("events")
                .column("id", DataType::Int)
                .column("at", DataType::Timestamp)
                .primary_key("id")
                .time_column("at")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("static")
                .column("id", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, t) in [(1i64, 10i64), (2, 20), (3, 30)] {
            db.insert("events", Row::new().push(id).push(Value::Timestamp(t)))
                .unwrap();
        }
        db.insert("static", Row::new().push(7i64)).unwrap();
        db
    }

    #[test]
    fn truncates_timed_tables_inclusively() {
        let s = snapshot_at(&db(), 20).unwrap();
        assert_eq!(s.table("events").unwrap().len(), 2);
        assert_eq!(s.table("static").unwrap().len(), 1);
    }

    #[test]
    fn full_and_empty_snapshots() {
        assert_eq!(
            snapshot_at(&db(), 1000)
                .unwrap()
                .table("events")
                .unwrap()
                .len(),
            3
        );
        assert_eq!(
            snapshot_at(&db(), 0)
                .unwrap()
                .table("events")
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn snapshot_keeps_schema() {
        let s = snapshot_at(&db(), 20).unwrap();
        assert_eq!(
            s.table("events").unwrap().schema().time_column(),
            Some("at")
        );
        assert!(s.name().contains("@20"));
    }
}
