//! Incremental graph maintenance: convert appended rows into a graph
//! delta instead of reconverting the whole database.
//!
//! Tables in the store are append-only, so a row's index — and therefore
//! its node id — never changes. That makes the delta between two database
//! states purely additive: new nodes for appended rows, new edges for
//! their FK cells. [`update_graph`] applies exactly that, with one
//! wrinkle: appending rows shifts the z-score normalization statistics of
//! every *touched* table, so touched tables are re-featurized in full
//! (untouched tables keep their matrices verbatim). The result is
//! **bit-identical** to a from-scratch [`build_graph`](crate::build_graph)
//! of the grown database — the property test battery in
//! `tests/ingest_equivalence.rs` holds this line.
//!
//! ```text
//! let (mut graph, mut mapping) = build_graph(&db, &opts)?;
//! let mut cursor = GraphCursor::capture(&db);
//! // ... db.ingest(batch, &policy)? ...
//! let stats = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts)?;
//! ```

use relgraph_graph::{HeteroGraph, ALWAYS_VISIBLE};
use relgraph_store::Database;

use crate::convert::{forward_edge_name, reverse_edge_name, GraphMapping};
use crate::error::{ConvertError, ConvertResult};
use crate::featurize::{featurize_table, featurize_table_delta};
use crate::ConvertOptions;

/// A high-water mark of how much of a database has been converted into a
/// graph: per-table row counts at capture time. Advance it with
/// [`update_graph`] after each ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphCursor {
    /// `(table name, rows converted)` in table-creation order.
    row_counts: Vec<(String, usize)>,
}

impl GraphCursor {
    /// Capture the current per-table row counts of `db`.
    pub fn capture(db: &Database) -> Self {
        GraphCursor {
            row_counts: db
                .tables()
                .iter()
                .map(|t| (t.name().to_string(), t.len()))
                .collect(),
        }
    }

    /// Reconstruct a cursor from saved `(table, rows converted)` pairs
    /// (the warm-restart path; pairs must be in table-creation order, as
    /// returned by [`counts`](Self::counts)).
    pub fn from_counts(row_counts: Vec<(String, usize)>) -> Self {
        GraphCursor { row_counts }
    }

    /// The tracked `(table name, rows converted)` pairs, in table-creation
    /// order.
    pub fn counts(&self) -> &[(String, usize)] {
        &self.row_counts
    }

    /// Rows already converted for `table`, if tracked.
    pub fn rows_converted(&self, table: &str) -> Option<usize> {
        self.row_counts
            .iter()
            .find(|(n, _)| n == table)
            .map(|&(_, c)| c)
    }
}

/// What one [`update_graph`] call changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Nodes appended across all node types.
    pub new_nodes: usize,
    /// Edges appended across all edge types (forward + reverse counted
    /// separately, matching [`HeteroGraph::total_edges`] accounting).
    pub new_edges: usize,
    /// Tables that grew (and were therefore re-featurized).
    pub tables_touched: usize,
    /// Edge types whose CSR was rebuilt with new edges.
    pub edge_types_rebuilt: usize,
}

impl DeltaStats {
    /// True when the database had not grown since the cursor was captured.
    pub fn is_empty(&self) -> bool {
        self.new_nodes == 0 && self.new_edges == 0
    }
}

/// Apply the database growth since `cursor` to `graph` as a delta.
///
/// Two passes, mirroring [`build_graph`](crate::build_graph):
///
/// 1. **Nodes** — for every table that grew, append node times for the new
///    rows and re-featurize the whole table (append-shifted normalization
///    statistics touch every row, so the matrix is replaced, not extended);
///    `mapping`'s feature specs are refreshed to the new statistics.
/// 2. **Edges** — for every new row's non-null FK cell, one forward edge
///    (and its reverse, when the mapping was built with reverse edges)
///    carrying the referencing row's timestamp. Each touched edge type's
///    CSR is rebuilt once, at the end, with all its new edges.
///
/// Node-first ordering matters: a new row may reference a new row of
/// another table in the same delta, in either table order.
///
/// Errors with [`ConvertError::SchemaDrift`] if tables were added, removed
/// or shrunk since the cursor was captured, and with
/// [`ConvertError::DanglingReference`] if a new row references a missing
/// key — the graph may then hold new nodes but no partial edges for the
/// offending table; callers should treat the graph as poisoned and rebuild.
/// On success the cursor is advanced to the new row counts.
pub fn update_graph(
    db: &Database,
    graph: &mut HeteroGraph,
    mapping: &mut GraphMapping,
    cursor: &mut GraphCursor,
    options: &ConvertOptions,
) -> ConvertResult<DeltaStats> {
    let _span = relgraph_obs::span("db2graph.delta");
    if db.table_count() != cursor.row_counts.len() {
        return Err(ConvertError::SchemaDrift(format!(
            "database has {} tables, cursor tracks {}",
            db.table_count(),
            cursor.row_counts.len()
        )));
    }
    let mut stats = DeltaStats::default();

    // Pass 1: nodes and features for every table that grew.
    for (i, table) in db.tables().iter().enumerate() {
        let (ref cur_name, converted) = cursor.row_counts[i];
        if table.name() != cur_name {
            return Err(ConvertError::SchemaDrift(format!(
                "table #{i} is `{}`, cursor tracks `{cur_name}`",
                table.name()
            )));
        }
        if table.len() < converted {
            return Err(ConvertError::SchemaDrift(format!(
                "table `{}` shrank from {converted} to {} rows",
                table.name(),
                table.len()
            )));
        }
        if table.len() == converted {
            continue;
        }
        let nt = mapping.node_type(table.name()).ok_or_else(|| {
            ConvertError::SchemaDrift(format!("table `{}` missing from mapping", table.name()))
        })?;
        let new_times: Vec<i64> = if table.schema().time_column_index().is_some() {
            (converted..table.len())
                .map(|r| table.row_timestamp(r).unwrap_or(ALWAYS_VISIBLE))
                .collect()
        } else {
            vec![ALWAYS_VISIBLE; table.len() - converted]
        };
        // Reuse the value-only slots of already-featurized rows; only the
        // z-score-dependent slots are recomputed (appends shift the
        // normalization statistics of the whole column). Falls back to a
        // full re-featurization if the stored matrix can't be reused.
        let (spec, features) = featurize_table_delta(
            table,
            &mapping.feature_specs[i],
            graph.features(nt),
            options.text_hash_dim,
        )
        .unwrap_or_else(|| featurize_table(table, options.text_hash_dim));
        graph.extend_nodes(nt, &new_times, features)?;
        mapping.feature_specs[i] = spec;
        stats.new_nodes += new_times.len();
        stats.tables_touched += 1;
    }

    // Pass 2: edges out of (and into) the new rows. Done after every
    // table's nodes exist so cross-table references within one delta
    // resolve regardless of table order.
    for (i, table) in db.tables().iter().enumerate() {
        let converted = cursor.row_counts[i].1;
        if table.len() == converted {
            continue;
        }
        for fk in table.schema().foreign_keys() {
            let target = db.table(&fk.referenced_table)?;
            let fwd_name = forward_edge_name(table.name(), &fk.column, target.name());
            let fwd = graph.edge_type_by_name(&fwd_name).ok_or_else(|| {
                ConvertError::SchemaDrift(format!("edge type `{fwd_name}` missing from graph"))
            })?;
            let rev_name = reverse_edge_name(target.name(), table.name(), &fk.column);
            let rev = graph.edge_type_by_name(&rev_name);
            let col = table
                .column_by_name(&fk.column)
                .expect("schema guarantees the FK column exists");
            let mut fwd_edges = Vec::new();
            let mut rev_edges = Vec::new();
            for row in converted..table.len() {
                let key = col.get(row);
                if key.is_null() {
                    continue;
                }
                let dst =
                    target
                        .row_by_key(&key)
                        .ok_or_else(|| ConvertError::DanglingReference {
                            table: table.name().to_string(),
                            column: fk.column.clone(),
                            key: key.to_string(),
                        })?;
                let time = table.row_timestamp(row).unwrap_or(ALWAYS_VISIBLE);
                fwd_edges.push((row, dst, time));
                if rev.is_some() {
                    rev_edges.push((dst, row, time));
                }
            }
            if !fwd_edges.is_empty() {
                graph.extend_edges(fwd, &fwd_edges)?;
                stats.new_edges += fwd_edges.len();
                stats.edge_types_rebuilt += 1;
            }
            if let Some(rev) = rev {
                if !rev_edges.is_empty() {
                    graph.extend_edges(rev, &rev_edges)?;
                    stats.new_edges += rev_edges.len();
                    stats.edge_types_rebuilt += 1;
                }
            }
        }
    }

    // Advance the cursor only after every pass succeeded.
    for (i, table) in db.tables().iter().enumerate() {
        cursor.row_counts[i].1 = table.len();
    }
    if relgraph_obs::enabled() {
        relgraph_obs::add("ingest.delta.nodes", stats.new_nodes as u64);
        relgraph_obs::add("ingest.delta.edges", stats.new_edges as u64);
        relgraph_obs::add("ingest.delta.tables_touched", stats.tables_touched as u64);
    }
    Ok(stats)
}

/// Snapshot handoff: apply the database growth since `cursor` to a *copy*
/// of `graph`, leaving the published graph untouched.
///
/// This is the writer side of an epoch-swap serving tier: reader threads
/// keep scoring against the current graph version while the writer builds
/// the next one from the cursor delta, then publishes the returned triple
/// atomically. Semantics are exactly [`update_graph`] — the result is
/// bit-identical to a scratch [`build_graph`](crate::build_graph) of the
/// grown database — but nothing the caller passed in is mutated, so a
/// delta failure (dangling reference, schema drift) cannot poison the
/// version readers are using.
pub fn update_graph_snapshot(
    db: &Database,
    graph: &HeteroGraph,
    mapping: &GraphMapping,
    cursor: &GraphCursor,
    options: &ConvertOptions,
) -> ConvertResult<(HeteroGraph, GraphMapping, GraphCursor, DeltaStats)> {
    let mut next_graph = graph.clone();
    let mut next_mapping = mapping.clone();
    let mut next_cursor = cursor.clone();
    let stats = update_graph(
        db,
        &mut next_graph,
        &mut next_mapping,
        &mut next_cursor,
        options,
    )?;
    Ok((next_graph, next_mapping, next_cursor, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_graph;
    use relgraph_store::{DataType, Database, Row, TableSchema, Value};

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .column("region", DataType::Text)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("amount", DataType::Float)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (cid, t) in [(1i64, 100i64), (2, 200)] {
            db.insert(
                "customers",
                Row::new().push(cid).push(Value::Timestamp(t)).push("north"),
            )
            .unwrap();
        }
        for (oid, cid, amount, t) in [(10i64, 1i64, 5.0, 150i64), (11, 1, 7.0, 250)] {
            db.insert(
                "orders",
                Row::new()
                    .push(oid)
                    .push(cid)
                    .push(amount)
                    .push(Value::Timestamp(t)),
            )
            .unwrap();
        }
        db
    }

    fn push_order(db: &mut Database, oid: i64, cid: i64, amount: f64, t: i64) {
        db.insert(
            "orders",
            Row::new()
                .push(oid)
                .push(cid)
                .push(amount)
                .push(Value::Timestamp(t)),
        )
        .unwrap();
    }

    #[test]
    fn delta_matches_scratch_rebuild() {
        let mut db = shop();
        let opts = ConvertOptions::default();
        let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
        let mut cursor = GraphCursor::capture(&db);

        db.insert(
            "customers",
            Row::new()
                .push(3i64)
                .push(Value::Timestamp(300))
                .push("south"),
        )
        .unwrap();
        push_order(&mut db, 12, 3, 9.0, 350);
        push_order(&mut db, 13, 1, 2.0, 360);

        let stats = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();
        assert_eq!(stats.new_nodes, 3);
        assert_eq!(stats.new_edges, 4); // 2 orders × (fwd + rev)
        assert_eq!(stats.tables_touched, 2);

        let (scratch, scratch_map) = build_graph(&db, &opts).unwrap();
        assert!(graph.structural_eq(&scratch));
        // Feature specs refreshed to the grown tables' statistics.
        assert_eq!(mapping.feature_specs, scratch_map.feature_specs);
        // Cursor advanced; a second update is a no-op.
        let stats = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();
        assert!(stats.is_empty());
        assert!(graph.structural_eq(&scratch));
    }

    #[test]
    fn intra_delta_cross_table_reference_resolves() {
        // The new order references a customer added in the same delta even
        // though `customers` is re-processed after... and before `orders`.
        let mut db = shop();
        let opts = ConvertOptions::default();
        let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
        let mut cursor = GraphCursor::capture(&db);
        db.insert(
            "customers",
            Row::new()
                .push(9i64)
                .push(Value::Timestamp(400))
                .push("east"),
        )
        .unwrap();
        push_order(&mut db, 14, 9, 1.0, 410);
        update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();
        let (scratch, _) = build_graph(&db, &opts).unwrap();
        assert!(graph.structural_eq(&scratch));
    }

    #[test]
    fn out_of_order_append_still_matches_scratch() {
        // A late row (timestamp before the watermark) lands in the middle
        // of existing neighbor lists after the CSR re-sort.
        let mut db = shop();
        let opts = ConvertOptions::default();
        let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
        let mut cursor = GraphCursor::capture(&db);
        push_order(&mut db, 15, 1, 3.0, 120); // before both existing orders
        update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();
        let (scratch, _) = build_graph(&db, &opts).unwrap();
        assert!(graph.structural_eq(&scratch));
    }

    #[test]
    fn no_reverse_edges_variant_matches() {
        let mut db = shop();
        let opts = ConvertOptions {
            reverse_edges: false,
            ..Default::default()
        };
        let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
        let mut cursor = GraphCursor::capture(&db);
        push_order(&mut db, 16, 2, 4.0, 500);
        let stats = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap();
        assert_eq!(stats.new_edges, 1);
        let (scratch, _) = build_graph(&db, &opts).unwrap();
        assert!(graph.structural_eq(&scratch));
    }

    #[test]
    fn dangling_new_reference_is_reported() {
        let mut db = shop();
        let opts = ConvertOptions::default();
        let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
        let mut cursor = GraphCursor::capture(&db);
        push_order(&mut db, 17, 999, 4.0, 500);
        let err = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap_err();
        assert!(matches!(err, ConvertError::DanglingReference { .. }));
    }

    #[test]
    fn schema_drift_is_detected() {
        let mut db = shop();
        let opts = ConvertOptions::default();
        let (mut graph, mut mapping) = build_graph(&db, &opts).unwrap();
        let mut cursor = GraphCursor::capture(&db);
        db.create_table(
            TableSchema::builder("returns")
                .column("id", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        let err = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts).unwrap_err();
        assert!(matches!(err, ConvertError::SchemaDrift(_)));
    }

    #[test]
    fn cursor_reports_tracked_counts() {
        let db = shop();
        let cursor = GraphCursor::capture(&db);
        assert_eq!(cursor.rows_converted("customers"), Some(2));
        assert_eq!(cursor.rows_converted("orders"), Some(2));
        assert_eq!(cursor.rows_converted("nope"), None);
    }
}
