//! Row featurization: table columns → dense `f32`-style node features.
//!
//! Per column, by type:
//!
//! * `Int` / `Float` (except primary key, foreign keys and the time
//!   column): one z-scored slot; NULL maps to 0 (the post-normalization
//!   mean) and sets a companion missing-indicator slot;
//! * `Bool`: one 0/1 slot (NULL → 0.5);
//! * `Text`: `text_hash_dim` hashed one-hot slots (FNV-1a);
//! * `Timestamp` columns other than the table's time column: z-scored;
//! * a trailing constant `1.0` bias slot, so even key-only tables get a
//!   non-degenerate feature vector.

use rayon::prelude::*;
use relgraph_graph::FeatureMatrix;
use relgraph_store::{Column, DataType, Table};

/// How one column was encoded.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnFeature {
    /// Z-scored numeric slot + missing-indicator slot.
    Numeric { column: String, mean: f64, std: f64 },
    /// Single 0/1 slot.
    Boolean { column: String },
    /// `dim` hashed one-hot slots.
    TextHash { column: String, dim: usize },
    /// Constant bias slot.
    Bias,
}

impl ColumnFeature {
    /// Number of feature slots this encoding occupies.
    pub fn width(&self) -> usize {
        match self {
            ColumnFeature::Numeric { .. } => 2,
            ColumnFeature::Boolean { .. } => 1,
            ColumnFeature::TextHash { dim, .. } => *dim,
            ColumnFeature::Bias => 1,
        }
    }
}

/// The full featurization recipe for one table (stable across snapshots of
/// the same schema).
#[derive(Debug, Clone, PartialEq)]
pub struct TableFeatureSpec {
    /// Table name.
    pub table: String,
    /// Ordered encodings; total width is the node feature dimension.
    pub columns: Vec<ColumnFeature>,
}

impl TableFeatureSpec {
    /// Total feature dimension.
    pub fn dim(&self) -> usize {
        self.columns.iter().map(ColumnFeature::width).sum()
    }
}

/// FNV-1a hash of a string into `dim` buckets.
pub fn hash_bucket(s: &str, dim: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % dim as u64) as usize
}

fn column_stats(col: &Column) -> (f64, f64) {
    let mut n = 0.0;
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for i in 0..col.len() {
        if let Some(x) = col.get_f64(i) {
            n += 1.0;
            sum += x;
            sumsq += x * x;
        }
    }
    if n == 0.0 {
        return (0.0, 1.0);
    }
    let mean = sum / n;
    let var = (sumsq / n - mean * mean).max(0.0);
    let std = var.sqrt();
    (mean, if std > 1e-12 { std } else { 1.0 })
}

/// Build the featurization recipe (with fresh normalization statistics)
/// for a table's current contents.
fn build_spec(table: &Table, text_hash_dim: usize) -> TableFeatureSpec {
    let schema = table.schema();
    let skip: Vec<usize> = {
        let mut v = Vec::new();
        if let Some(pk) = schema.primary_key_index() {
            v.push(pk);
        }
        if let Some(tc) = schema.time_column_index() {
            v.push(tc);
        }
        for fk in schema.foreign_keys() {
            if let Some(i) = schema.column_index(&fk.column) {
                v.push(i);
            }
        }
        v
    };
    let mut specs = Vec::new();
    for (i, def) in schema.columns().iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let col = table.column(i).expect("column exists");
        match def.data_type {
            DataType::Int | DataType::Float | DataType::Timestamp => {
                let (mean, std) = column_stats(col);
                specs.push(ColumnFeature::Numeric {
                    column: def.name.clone(),
                    mean,
                    std,
                });
            }
            DataType::Bool => specs.push(ColumnFeature::Boolean {
                column: def.name.clone(),
            }),
            DataType::Text => specs.push(ColumnFeature::TextHash {
                column: def.name.clone(),
                dim: text_hash_dim,
            }),
        }
    }
    specs.push(ColumnFeature::Bias);
    TableFeatureSpec {
        table: schema.name().to_string(),
        columns: specs,
    }
}

/// Resolve each encoding's column once (not once per row).
fn resolve<'a>(
    spec: &'a TableFeatureSpec,
    table: &'a Table,
) -> Vec<(&'a ColumnFeature, Option<&'a Column>)> {
    spec.columns
        .iter()
        .map(|cf| {
            let col = match cf {
                ColumnFeature::Numeric { column, .. }
                | ColumnFeature::Boolean { column }
                | ColumnFeature::TextHash { column, .. } => {
                    Some(table.column_by_name(column).expect("column exists"))
                }
                ColumnFeature::Bias => None,
            };
            (cf, col)
        })
        .collect()
}

/// Fill one row's `dim`-wide feature chunk (assumed zeroed).
fn fill_row(out: &mut [f32], row: usize, resolved: &[(&ColumnFeature, Option<&Column>)]) {
    let mut off = 0;
    for &(cf, col) in resolved {
        match cf {
            ColumnFeature::Numeric { mean, std, .. } => {
                let col = col.expect("numeric column resolved");
                match col.get_f64(row) {
                    Some(x) => {
                        out[off] = ((x - mean) / std) as f32;
                        out[off + 1] = 0.0;
                    }
                    None => {
                        out[off] = 0.0;
                        out[off + 1] = 1.0;
                    }
                }
                off += 2;
            }
            ColumnFeature::Boolean { .. } => {
                let col = col.expect("bool column resolved");
                out[off] = match col.get(row).as_bool() {
                    Some(true) => 1.0,
                    Some(false) => 0.0,
                    None => 0.5,
                };
                off += 1;
            }
            ColumnFeature::TextHash { dim, .. } => {
                let col = col.expect("text column resolved");
                if let Some(s) = col.get_str(row) {
                    out[off + hash_bucket(s, *dim)] = 1.0;
                }
                off += dim;
            }
            ColumnFeature::Bias => {
                out[off] = 1.0;
                off += 1;
            }
        }
    }
}

/// Build the featurization spec and feature matrix for a table.
///
/// `text_hash_dim` is the number of hash buckets per text column. The
/// table's primary-key column, FK columns and time column are skipped —
/// identity belongs to the graph structure, not the features.
pub fn featurize_table(table: &Table, text_hash_dim: usize) -> (TableFeatureSpec, FeatureMatrix) {
    let spec = build_spec(table, text_hash_dim);
    let dim = spec.dim();
    let resolved = resolve(&spec, table);
    // Each row is a disjoint `dim`-wide chunk of the matrix, so the
    // parallel writes never alias.
    let mut features = FeatureMatrix::zeros(table.len(), dim);
    features
        .data_mut()
        .par_chunks_mut(dim)
        .enumerate()
        .for_each(|(row, out)| fill_row(out, row, &resolved));
    (spec, features)
}

/// True when two specs encode the same columns the same way, ignoring the
/// normalization statistics (which legitimately drift as rows append).
fn same_shape(a: &TableFeatureSpec, b: &TableFeatureSpec) -> bool {
    a.columns.len() == b.columns.len()
        && a.columns.iter().zip(&b.columns).all(|(x, y)| match (x, y) {
            (
                ColumnFeature::Numeric { column: c1, .. },
                ColumnFeature::Numeric { column: c2, .. },
            ) => c1 == c2,
            _ => x == y,
        })
}

/// Incrementally re-featurize an append-only table, reusing `old` — the
/// matrix previously produced for a prefix of its rows.
///
/// Appending rows shifts every numeric column's normalization statistics,
/// so the stat-dependent slots are recomputed for *all* rows; but text
/// hashes, booleans and the bias depend only on the row's own values, so
/// those slots are copied for already-featurized rows and computed only
/// for the appended ones. The result is bit-identical to
/// [`featurize_table`] on the same table.
///
/// Returns `None` (caller should fall back to [`featurize_table`]) when
/// `old` cannot be reused: the encoding shape changed, or `old` does not
/// cover a prefix of the table's rows.
pub fn featurize_table_delta(
    table: &Table,
    old_spec: &TableFeatureSpec,
    old: &FeatureMatrix,
    text_hash_dim: usize,
) -> Option<(TableFeatureSpec, FeatureMatrix)> {
    let spec = build_spec(table, text_hash_dim);
    let dim = spec.dim();
    let prev = old.rows();
    if prev > table.len() || old.dim() != dim || !same_shape(&spec, old_spec) {
        return None;
    }
    let resolved = resolve(&spec, table);
    let mut features = FeatureMatrix::zeros(table.len(), dim);
    features.data_mut()[..prev * dim].copy_from_slice(old.data());
    features
        .data_mut()
        .par_chunks_mut(dim)
        .enumerate()
        .for_each(|(row, out)| {
            if row >= prev {
                fill_row(out, row, &resolved);
                return;
            }
            let mut off = 0;
            for &(cf, col) in &resolved {
                if let ColumnFeature::Numeric { mean, std, .. } = cf {
                    let col = col.expect("numeric column resolved");
                    match col.get_f64(row) {
                        Some(x) => {
                            out[off] = ((x - mean) / std) as f32;
                            out[off + 1] = 0.0;
                        }
                        None => {
                            out[off] = 0.0;
                            out[off + 1] = 1.0;
                        }
                    }
                }
                off += cf.width();
            }
        });
    Some((spec, features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_store::{Row, TableSchema, Value};

    fn table() -> Table {
        let mut t = Table::new(
            TableSchema::builder("items")
                .column("id", DataType::Int)
                .column("price", DataType::Float)
                .column("kind", DataType::Text)
                .column("active", DataType::Bool)
                .column("owner", DataType::Int)
                .column("at", DataType::Timestamp)
                .primary_key("id")
                .time_column("at")
                .foreign_key("owner", "owners")
                .build()
                .unwrap(),
        );
        for (id, price, kind, active) in [
            (1, 10.0, "a", true),
            (2, 20.0, "b", false),
            (3, 30.0, "a", true),
        ] {
            t.insert(Row::from(vec![
                Value::Int(id),
                Value::Float(price),
                Value::Text(kind.into()),
                Value::Bool(active),
                Value::Int(0),
                Value::Timestamp(id),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn spec_skips_keys_and_time() {
        let (spec, _) = featurize_table(&table(), 4);
        let names: Vec<String> = spec
            .columns
            .iter()
            .filter_map(|c| match c {
                ColumnFeature::Numeric { column, .. }
                | ColumnFeature::Boolean { column }
                | ColumnFeature::TextHash { column, .. } => Some(column.clone()),
                ColumnFeature::Bias => None,
            })
            .collect();
        assert_eq!(names, vec!["price", "kind", "active"]);
        // 2 (numeric) + 4 (text hash) + 1 (bool) + 1 (bias)
        assert_eq!(spec.dim(), 8);
    }

    #[test]
    fn zscore_is_centered() {
        let (_, f) = featurize_table(&table(), 4);
        // Price column occupies slot 0; mean of z-scores is 0.
        let mean: f32 = (0..3).map(|r| f.row(r)[0]).sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-6);
        // Middle row is exactly the mean.
        assert!(f.row(1)[0].abs() < 1e-6);
    }

    #[test]
    fn text_hash_one_hot_consistency() {
        let (_, f) = featurize_table(&table(), 4);
        // Rows 0 and 2 share kind "a" → identical text-hash block (slots 2..6).
        assert_eq!(&f.row(0)[2..6], &f.row(2)[2..6]);
        assert_ne!(&f.row(0)[2..6], &f.row(1)[2..6]);
        // Exactly one bucket set per row.
        let ones: f32 = f.row(0)[2..6].iter().sum();
        assert_eq!(ones, 1.0);
    }

    #[test]
    fn bias_slot_is_last_and_one() {
        let (spec, f) = featurize_table(&table(), 4);
        assert_eq!(spec.columns.last(), Some(&ColumnFeature::Bias));
        for r in 0..3 {
            assert_eq!(f.row(r)[spec.dim() - 1], 1.0);
        }
    }

    #[test]
    fn null_numeric_sets_missing_indicator() {
        let mut t = Table::new(
            TableSchema::builder("t")
                .column("id", DataType::Int)
                .nullable_column("x", DataType::Float)
                .primary_key("id")
                .build()
                .unwrap(),
        );
        t.insert(Row::from(vec![Value::Int(1), Value::Float(5.0)]))
            .unwrap();
        t.insert(Row::from(vec![Value::Int(2), Value::Null]))
            .unwrap();
        let (_, f) = featurize_table(&t, 4);
        assert_eq!(f.row(0)[1], 0.0);
        assert_eq!(f.row(1)[0], 0.0);
        assert_eq!(f.row(1)[1], 1.0);
    }

    #[test]
    fn constant_column_does_not_blow_up() {
        let mut t = Table::new(
            TableSchema::builder("t")
                .column("id", DataType::Int)
                .column("c", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        );
        for i in 0..3 {
            t.insert(Row::from(vec![Value::Int(i), Value::Int(7)]))
                .unwrap();
        }
        let (_, f) = featurize_table(&t, 2);
        for r in 0..3 {
            assert!(f.row(r).iter().all(|x| x.is_finite()));
            assert_eq!(f.row(r)[0], 0.0); // (7-7)/1
        }
    }

    #[test]
    fn delta_featurize_is_bit_identical_to_scratch() {
        let mut t = table();
        let (spec0, f0) = featurize_table(&t, 4);
        // Append rows (shifting price stats), including a repeat "b" kind.
        for (id, price, kind, active) in [(4, 100.0, "b", false), (5, 2.5, "c", true)] {
            t.insert(Row::from(vec![
                Value::Int(id),
                Value::Float(price),
                Value::Text(kind.into()),
                Value::Bool(active),
                Value::Int(0),
                Value::Timestamp(id),
            ]))
            .unwrap();
        }
        let (spec_inc, f_inc) = featurize_table_delta(&t, &spec0, &f0, 4).expect("reusable");
        let (spec_scratch, f_scratch) = featurize_table(&t, 4);
        assert_eq!(spec_inc, spec_scratch);
        assert_eq!(f_inc.data(), f_scratch.data());
        // Stats really did shift, so old rows' numeric slots changed.
        assert_ne!(f_inc.row(0)[0], f0.row(0)[0]);
    }

    #[test]
    fn delta_featurize_rejects_incompatible_history() {
        let t = table();
        let (spec, f) = featurize_table(&t, 4);
        // Different text-hash width → different shape.
        assert!(featurize_table_delta(&t, &spec, &f, 8).is_none());
        // Old matrix longer than the table → not a prefix.
        let too_long = FeatureMatrix::zeros(t.len() + 1, spec.dim());
        assert!(featurize_table_delta(&t, &spec, &too_long, 4).is_none());
    }

    #[test]
    fn hash_bucket_stable_and_in_range() {
        for s in ["", "a", "hello world", "ünïcode"] {
            let b = hash_bucket(s, 8);
            assert!(b < 8);
            assert_eq!(b, hash_bucket(s, 8));
        }
    }
}
