//! # relgraph-db2graph
//!
//! The *databases-as-graphs* compiler: turns a relational
//! [`Database`](relgraph_store::Database) into a heterogeneous temporal
//! [`HeteroGraph`](relgraph_graph::HeteroGraph):
//!
//! * each table becomes a node type; each row a node (node id = row index);
//! * each foreign key becomes **two** edge types — the FK direction and its
//!   reverse — so message passing can flow both ways;
//! * each edge inherits the *referencing row's* timestamp (the moment the
//!   fact became known), enabling leak-free temporal sampling;
//! * each row is featurized into a dense vector: z-scored numerics, hashed
//!   one-hot text, 0/1 booleans, plus a constant bias slot ([`featurize`]).
//!
//! [`snapshot_at`] additionally produces a time-truncated copy of a
//! database (rows with `time ≤ t`), used to simulate deployment-time
//! inference in the leakage experiments.

pub mod convert;
pub mod delta;
pub mod error;
pub mod featurize;
pub mod persist;
pub mod snapshot;

pub use convert::{build_graph, ConvertOptions, EdgeBinding, GraphMapping};
pub use delta::{update_graph, update_graph_snapshot, DeltaStats, GraphCursor};
pub use error::{ConvertError, ConvertResult};
pub use featurize::{featurize_table, featurize_table_delta, ColumnFeature, TableFeatureSpec};
pub use persist::{load_graph, save_graph};
pub use snapshot::snapshot_at;
