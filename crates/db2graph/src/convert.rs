//! Schema-level compilation: tables → node types, foreign keys → edge
//! types (forward + reverse), rows → timestamped nodes and edges.

use relgraph_graph::{HeteroGraph, HeteroGraphBuilder, NodeTypeId, ALWAYS_VISIBLE};
use relgraph_store::Database;

use crate::error::{ConvertError, ConvertResult};
use crate::featurize::{featurize_table, ColumnFeature, TableFeatureSpec};

/// Conversion options.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Hash buckets per text column.
    pub text_hash_dim: usize,
    /// Also create the reverse edge type per FK (needed for message passing
    /// from dimension tables back to fact tables). Default `true`.
    pub reverse_edges: bool,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            text_hash_dim: 16,
            reverse_edges: true,
        }
    }
}

/// How one FK was compiled into an edge type.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeBinding {
    /// Edge type name in the graph.
    pub name: String,
    /// Referencing table.
    pub src_table: String,
    /// Referenced (or referencing, if `reverse`) table.
    pub dst_table: String,
    /// FK column in the referencing table.
    pub fk_column: String,
    /// True for the reverse direction (referenced → referencing).
    pub reverse: bool,
}

/// The compilation record: how tables and FKs map onto the graph.
#[derive(Debug, Clone)]
pub struct GraphMapping {
    /// `(table name, node type)` in table order.
    pub node_types: Vec<(String, NodeTypeId)>,
    /// One entry per created edge type, index-aligned with the graph's
    /// edge-type ids.
    pub edge_bindings: Vec<EdgeBinding>,
    /// Featurization recipe per table (same order as `node_types`).
    pub feature_specs: Vec<TableFeatureSpec>,
}

impl GraphMapping {
    /// Node type for a table name.
    pub fn node_type(&self, table: &str) -> Option<NodeTypeId> {
        self.node_types
            .iter()
            .find(|(n, _)| n == table)
            .map(|&(_, id)| id)
    }

    /// The database columns each table's featurization actually reads, as
    /// `(table, columns)` pairs in table order — the value columns behind
    /// `Numeric`/`Boolean`/`TextHash` slots (`Bias` reads nothing).
    ///
    /// This is the column selection a partially materialized warm boot
    /// must keep loadable: everything else a serving engine reads from the
    /// database is keys and time (always loaded by
    /// `DataDir::open_columns`), because features themselves ride in the
    /// graph snapshot.
    pub fn feature_columns(&self) -> Vec<(String, Vec<String>)> {
        self.feature_specs
            .iter()
            .map(|spec| {
                let cols = spec
                    .columns
                    .iter()
                    .filter_map(|c| match c {
                        ColumnFeature::Numeric { column, .. }
                        | ColumnFeature::Boolean { column }
                        | ColumnFeature::TextHash { column, .. } => Some(column.clone()),
                        ColumnFeature::Bias => None,
                    })
                    .collect();
                (spec.table.clone(), cols)
            })
            .collect()
    }
}

/// Canonical forward edge-type name for one FK (referencing → referenced).
/// Shared by the full converter and the incremental delta path so both
/// resolve the same edge types.
pub(crate) fn forward_edge_name(table: &str, fk_column: &str, target: &str) -> String {
    format!("{table}.{fk_column}->{target}")
}

/// Canonical reverse edge-type name for one FK (referenced → referencing).
pub(crate) fn reverse_edge_name(target: &str, table: &str, fk_column: &str) -> String {
    format!("{target}<-{table}.{fk_column}")
}

/// Compile `db` into a heterogeneous temporal graph.
///
/// Every non-null FK cell becomes one forward edge (referencing row →
/// referenced row) and, if enabled, one reverse edge; both carry the
/// *referencing* row's timestamp (when the fact became known), falling back
/// to [`ALWAYS_VISIBLE`] for tables without a time column.
pub fn build_graph(
    db: &Database,
    options: &ConvertOptions,
) -> ConvertResult<(HeteroGraph, GraphMapping)> {
    let _span = relgraph_obs::span("db2graph.build_graph");
    let mut builder = HeteroGraphBuilder::new();
    let mut node_types = Vec::new();
    let mut feature_specs = Vec::new();

    // Pass 1: node types, times, features.
    for table in db.tables() {
        let nt = builder.add_node_type(table.name(), table.len());
        node_types.push((table.name().to_string(), nt));
        if table.schema().time_column_index().is_some() {
            let times: Vec<i64> = (0..table.len())
                .map(|i| table.row_timestamp(i).unwrap_or(ALWAYS_VISIBLE))
                .collect();
            builder.set_node_times(nt, times);
        }
        let (spec, features) = featurize_table(table, options.text_hash_dim);
        builder.set_features(nt, features);
        feature_specs.push(spec);
    }
    let node_type = |name: &str| {
        node_types
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    };

    // Pass 2: edge types and edges.
    let mut edge_bindings = Vec::new();
    for table in db.tables() {
        let src_nt = node_type(table.name()).expect("registered above");
        for fk in table.schema().foreign_keys() {
            let target = db.table(&fk.referenced_table)?;
            if target.schema().primary_key().is_none() {
                return Err(ConvertError::MissingPrimaryKey {
                    table: target.name().to_string(),
                });
            }
            let dst_nt =
                node_type(target.name()).ok_or_else(|| ConvertError::MissingPrimaryKey {
                    table: target.name().to_string(),
                })?;
            let fwd_name = forward_edge_name(table.name(), &fk.column, target.name());
            let fwd = builder.add_edge_type(&fwd_name, src_nt, dst_nt);
            edge_bindings.push(EdgeBinding {
                name: fwd_name,
                src_table: table.name().to_string(),
                dst_table: target.name().to_string(),
                fk_column: fk.column.clone(),
                reverse: false,
            });
            let rev = if options.reverse_edges {
                let rev_name = reverse_edge_name(target.name(), table.name(), &fk.column);
                let id = builder.add_edge_type(&rev_name, dst_nt, src_nt);
                edge_bindings.push(EdgeBinding {
                    name: rev_name,
                    src_table: target.name().to_string(),
                    dst_table: table.name().to_string(),
                    fk_column: fk.column.clone(),
                    reverse: true,
                });
                Some(id)
            } else {
                None
            };
            let col = table
                .column_by_name(&fk.column)
                .expect("schema guarantees the FK column exists");
            builder.reserve_edges(fwd, col.count_valid());
            if let Some(rev) = rev {
                builder.reserve_edges(rev, col.count_valid());
            }
            for row in 0..table.len() {
                let key = col.get(row);
                if key.is_null() {
                    continue;
                }
                let dst =
                    target
                        .row_by_key(&key)
                        .ok_or_else(|| ConvertError::DanglingReference {
                            table: table.name().to_string(),
                            column: fk.column.clone(),
                            key: key.to_string(),
                        })?;
                let time = table.row_timestamp(row).unwrap_or(ALWAYS_VISIBLE);
                builder.add_edge(fwd, row, dst, time);
                if let Some(rev) = rev {
                    builder.add_edge(rev, dst, row, time);
                }
            }
        }
    }
    let graph = builder.finish()?;
    if relgraph_obs::enabled() {
        relgraph_obs::add("db2graph.node_types", graph.num_node_types() as u64);
        relgraph_obs::add("db2graph.edge_types", graph.num_edge_types() as u64);
        relgraph_obs::add("db2graph.nodes", graph.total_nodes() as u64);
        relgraph_obs::add("db2graph.edges", graph.total_edges() as u64);
    }
    Ok((
        graph,
        GraphMapping {
            node_types,
            edge_bindings,
            feature_specs,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_store::{DataType, Row, TableSchema, Value};

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .column("region", DataType::Text)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("amount", DataType::Float)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (cid, t) in [(1i64, 100i64), (2, 200)] {
            db.insert(
                "customers",
                Row::new().push(cid).push(Value::Timestamp(t)).push("north"),
            )
            .unwrap();
        }
        for (oid, cid, amount, t) in [
            (10i64, 1i64, 5.0, 150i64),
            (11, 1, 7.0, 250),
            (12, 2, 9.0, 300),
        ] {
            db.insert(
                "orders",
                Row::new()
                    .push(oid)
                    .push(cid)
                    .push(amount)
                    .push(Value::Timestamp(t)),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn node_and_edge_types_created() {
        let (g, m) = build_graph(&shop(), &ConvertOptions::default()).unwrap();
        assert_eq!(g.num_node_types(), 2);
        assert_eq!(g.num_edge_types(), 2); // forward + reverse
        let cust = m.node_type("customers").unwrap();
        let ord = m.node_type("orders").unwrap();
        assert_eq!(g.num_nodes(cust), 2);
        assert_eq!(g.num_nodes(ord), 3);
        assert_eq!(g.total_edges(), 6);
        assert!(m.node_type("nope").is_none());
        assert_eq!(m.edge_bindings.len(), 2);
        assert!(m.edge_bindings.iter().any(|b| !b.reverse));
        assert!(m.edge_bindings.iter().any(|b| b.reverse));
    }

    #[test]
    fn edge_times_come_from_referencing_row() {
        let (g, m) = build_graph(&shop(), &ConvertOptions::default()).unwrap();
        let cust = m.node_type("customers").unwrap();
        let rev = g
            .edge_type_by_name("customers<-orders.customer_id")
            .unwrap();
        // Customer 0 (id 1) has orders at t=150 and t=250.
        let ns: Vec<(usize, i64)> = g.neighbors(rev, 0).collect();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[0].1, 150);
        assert_eq!(ns[1].1, 250);
        assert_eq!(g.node_time(cust, 1), 200);
    }

    #[test]
    fn features_have_expected_dims() {
        let (g, m) = build_graph(
            &shop(),
            &ConvertOptions {
                text_hash_dim: 4,
                reverse_edges: true,
            },
        )
        .unwrap();
        let cust = m.node_type("customers").unwrap();
        // region: 4 hash slots + bias = 5.
        assert_eq!(g.features(cust).dim(), 5);
        let ord = m.node_type("orders").unwrap();
        // amount: 2 + bias = 3 (keys/time skipped).
        assert_eq!(g.features(ord).dim(), 3);
        assert_eq!(m.feature_specs.len(), 2);
    }

    #[test]
    fn no_reverse_edges_option() {
        let (g, _) = build_graph(
            &shop(),
            &ConvertOptions {
                reverse_edges: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(g.num_edge_types(), 1);
        assert_eq!(g.total_edges(), 3);
    }

    #[test]
    fn dangling_reference_detected() {
        let mut db = shop();
        db.insert(
            "orders",
            Row::new()
                .push(99i64)
                .push(42i64)
                .push(1.0)
                .push(Value::Timestamp(10)),
        )
        .unwrap();
        let err = build_graph(&db, &ConvertOptions::default()).unwrap_err();
        assert!(matches!(err, ConvertError::DanglingReference { .. }));
    }

    #[test]
    fn fk_to_pkless_table_detected() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::builder("a")
                .column("x", DataType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("b")
                .column("id", DataType::Int)
                .column("ax", DataType::Int)
                .primary_key("id")
                .foreign_key("ax", "a")
                .build()
                .unwrap(),
        )
        .unwrap();
        let err = build_graph(&db, &ConvertOptions::default()).unwrap_err();
        assert!(matches!(err, ConvertError::MissingPrimaryKey { .. }));
    }

    #[test]
    fn null_fk_cells_are_skipped() {
        let mut db = Database::new("d");
        db.create_table(
            TableSchema::builder("a")
                .column("id", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("b")
                .column("id", DataType::Int)
                .nullable_column("a_id", DataType::Int)
                .primary_key("id")
                .foreign_key("a_id", "a")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("a", Row::new().push(1i64)).unwrap();
        db.insert("b", Row::new().push(1i64).push(Value::Null))
            .unwrap();
        db.insert("b", Row::new().push(2i64).push(1i64)).unwrap();
        let (g, _) = build_graph(&db, &ConvertOptions::default()).unwrap();
        assert_eq!(g.total_edges(), 2); // one forward + one reverse
    }
}
