//! Error types for database→graph conversion.

use std::fmt;

use relgraph_graph::GraphError;
use relgraph_store::StoreError;

/// Result alias for conversion operations.
pub type ConvertResult<T> = Result<T, ConvertError>;

/// Errors while compiling a database into a heterogeneous graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvertError {
    /// A foreign key references a table that has no primary key.
    MissingPrimaryKey { table: String },
    /// A non-null FK cell had no matching referenced row.
    DanglingReference {
        table: String,
        column: String,
        key: String,
    },
    /// The database no longer matches the captured mapping/cursor: tables
    /// were added, removed, renamed, or rows deleted. Incremental
    /// maintenance only supports append-only growth; rebuild from scratch.
    SchemaDrift(String),
    /// Underlying store error.
    Store(StoreError),
    /// Underlying graph construction error.
    Graph(GraphError),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::MissingPrimaryKey { table } => {
                write!(
                    f,
                    "table `{table}` is referenced by a foreign key but has no primary key"
                )
            }
            ConvertError::DanglingReference { table, column, key } => {
                write!(f, "dangling reference `{table}`.`{column}` = {key}")
            }
            ConvertError::SchemaDrift(msg) => {
                write!(f, "schema drift, incremental update not possible: {msg}")
            }
            ConvertError::Store(e) => write!(f, "store error: {e}"),
            ConvertError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ConvertError {}

impl From<StoreError> for ConvertError {
    fn from(e: StoreError) -> Self {
        ConvertError::Store(e)
    }
}

impl From<GraphError> for ConvertError {
    fn from(e: GraphError) -> Self {
        ConvertError::Graph(e)
    }
}
