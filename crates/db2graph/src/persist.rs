//! Graph warm-start snapshots: serialize a compiled
//! [`HeteroGraph`] together with its [`GraphMapping`] and [`GraphCursor`]
//! into a single checksummed `graph.snap` file, and load it back
//! structurally identical.
//!
//! The point of the snapshot is to skip the expensive parts of a cold
//! boot — row featurization (text hashing, z-score passes) and FK
//! resolution — on restart: [`load_graph`] replays the stored node/edge
//! arrays through [`HeteroGraphBuilder`], whose CSR construction sorts by
//! the total key `(src, time, dst)`, so the rebuilt adjacency is
//! bit-identical to the graph that was saved (and therefore to a scratch
//! [`build_graph`](crate::build_graph) of the same database). The stored
//! cursor tells the serving layer how many rows the snapshot covers; rows
//! ingested after the snapshot are caught up with
//! [`update_graph`](crate::update_graph).
//!
//! On-disk framing (header, length, CRC-32) is delegated to the store's
//! [`write_blob`]/[`read_blob`] (DESIGN.md §14.6); this module defines only
//! the body layout, under magic `RGGS`.

use std::path::Path;

use relgraph_graph::{EdgeTypeId, FeatureMatrix, HeteroGraph, HeteroGraphBuilder, NodeTypeId};
use relgraph_store::persist::format::{read_blob, write_blob, ByteReader, ByteWriter};
use relgraph_store::StoreError;

use crate::convert::{EdgeBinding, GraphMapping};
use crate::delta::GraphCursor;
use crate::error::{ConvertError, ConvertResult};
use crate::featurize::{ColumnFeature, TableFeatureSpec};

/// Magic prefix of graph snapshot files (`graph.snap`).
pub const MAGIC_GRAPH: &[u8; 4] = b"RGGS";

fn corrupt(path: &Path, message: impl Into<String>) -> ConvertError {
    ConvertError::Store(StoreError::Corrupt {
        file: path.display().to_string(),
        message: message.into(),
    })
}

fn put_column_feature(w: &mut ByteWriter, cf: &ColumnFeature) {
    match cf {
        ColumnFeature::Numeric { column, mean, std } => {
            w.put_u8(0);
            w.put_str(column);
            w.put_f64(*mean);
            w.put_f64(*std);
        }
        ColumnFeature::Boolean { column } => {
            w.put_u8(1);
            w.put_str(column);
        }
        ColumnFeature::TextHash { column, dim } => {
            w.put_u8(2);
            w.put_str(column);
            w.put_u32(*dim as u32);
        }
        ColumnFeature::Bias => w.put_u8(3),
    }
}

fn take_column_feature(r: &mut ByteReader<'_>, path: &Path) -> ConvertResult<ColumnFeature> {
    Ok(match r.take_u8()? {
        0 => ColumnFeature::Numeric {
            column: r.take_str()?,
            mean: r.take_f64()?,
            std: r.take_f64()?,
        },
        1 => ColumnFeature::Boolean {
            column: r.take_str()?,
        },
        2 => ColumnFeature::TextHash {
            column: r.take_str()?,
            dim: r.take_u32()? as usize,
        },
        3 => ColumnFeature::Bias,
        t => return Err(corrupt(path, format!("unknown column-feature tag {t}"))),
    })
}

/// Serialize `(graph, mapping, cursor)` into `path` (conventionally
/// `graph.snap`). Returns the file size in bytes.
pub fn save_graph(
    path: &Path,
    graph: &HeteroGraph,
    mapping: &GraphMapping,
    cursor: &GraphCursor,
) -> ConvertResult<u64> {
    let _span = relgraph_obs::span("snapshot.graph.save");
    let mut w = ByteWriter::new();

    // Node types: name, count, times, features.
    w.put_u32(graph.num_node_types() as u32);
    for ti in 0..graph.num_node_types() {
        let t = NodeTypeId(ti);
        let n = graph.num_nodes(t);
        w.put_str(graph.node_type_name(t));
        w.put_u64(n as u64);
        for i in 0..n {
            w.put_i64(graph.node_time(t, i));
        }
        let f = graph.features(t);
        w.put_u32(f.dim() as u32);
        for &v in f.data() {
            w.put_u32(v.to_bits());
        }
    }

    // Edge types: meta + time-sorted triples (CSR iteration order).
    w.put_u32(graph.num_edge_types() as u32);
    for ei in 0..graph.num_edge_types() {
        let e = EdgeTypeId(ei);
        let meta = graph.edge_type(e);
        w.put_str(&meta.name);
        w.put_u32(meta.src.0 as u32);
        w.put_u32(meta.dst.0 as u32);
        w.put_u64(graph.num_edges(e) as u64);
        for (s, d, t) in graph.edges_of(e) {
            w.put_u32(s as u32);
            w.put_u32(d as u32);
            w.put_i64(t);
        }
    }

    // Mapping: table ↔ node type, edge bindings, feature specs.
    w.put_u32(mapping.node_types.len() as u32);
    for (name, id) in &mapping.node_types {
        w.put_str(name);
        w.put_u32(id.0 as u32);
    }
    w.put_u32(mapping.edge_bindings.len() as u32);
    for b in &mapping.edge_bindings {
        w.put_str(&b.name);
        w.put_str(&b.src_table);
        w.put_str(&b.dst_table);
        w.put_str(&b.fk_column);
        w.put_u8(b.reverse as u8);
    }
    w.put_u32(mapping.feature_specs.len() as u32);
    for spec in &mapping.feature_specs {
        w.put_str(&spec.table);
        w.put_u32(spec.columns.len() as u32);
        for cf in &spec.columns {
            put_column_feature(&mut w, cf);
        }
    }

    // Cursor: per-table converted-row high-water marks.
    w.put_u32(cursor.counts().len() as u32);
    for (name, count) in cursor.counts() {
        w.put_str(name);
        w.put_u64(*count as u64);
    }

    let bytes = write_blob(path, MAGIC_GRAPH, &w.into_bytes())?;
    relgraph_obs::add("snapshot.graph.bytes", bytes);
    Ok(bytes)
}

/// Load a snapshot written by [`save_graph`]. The returned graph is
/// structurally identical to the one that was saved
/// ([`HeteroGraph::structural_eq`]).
pub fn load_graph(path: &Path) -> ConvertResult<(HeteroGraph, GraphMapping, GraphCursor)> {
    let _span = relgraph_obs::span("snapshot.graph.load");
    let body = read_blob(path, MAGIC_GRAPH)?;
    let name = path.display().to_string();
    let mut r = ByteReader::new(&body, &name);
    let mut builder = HeteroGraphBuilder::new();

    let num_node_types = r.take_u32()? as usize;
    for _ in 0..num_node_types {
        let ty_name = r.take_str()?;
        let n = r.take_u64()? as usize;
        let nt = builder.add_node_type(ty_name, n);
        let mut times = Vec::with_capacity(n);
        for _ in 0..n {
            times.push(r.take_i64()?);
        }
        builder.set_node_times(nt, times);
        let dim = r.take_u32()? as usize;
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            data.push(f32::from_bits(r.take_u32()?));
        }
        builder.set_features(nt, FeatureMatrix::from_rows(n, dim, data));
    }

    let num_edge_types = r.take_u32()? as usize;
    for _ in 0..num_edge_types {
        let ety_name = r.take_str()?;
        let src = NodeTypeId(r.take_u32()? as usize);
        let dst = NodeTypeId(r.take_u32()? as usize);
        if src.0 >= num_node_types || dst.0 >= num_node_types {
            return Err(corrupt(
                path,
                format!("edge type `{ety_name}` references node type out of range"),
            ));
        }
        let e = builder.add_edge_type(&ety_name, src, dst);
        let edges = r.take_u64()? as usize;
        builder.reserve_edges(e, edges);
        for _ in 0..edges {
            let s = r.take_u32()? as usize;
            let d = r.take_u32()? as usize;
            let t = r.take_i64()?;
            builder.add_edge(e, s, d, t);
        }
    }

    let n = r.take_u32()? as usize;
    let mut node_types = Vec::with_capacity(n);
    for _ in 0..n {
        let table = r.take_str()?;
        node_types.push((table, NodeTypeId(r.take_u32()? as usize)));
    }
    let n = r.take_u32()? as usize;
    let mut edge_bindings = Vec::with_capacity(n);
    for _ in 0..n {
        edge_bindings.push(EdgeBinding {
            name: r.take_str()?,
            src_table: r.take_str()?,
            dst_table: r.take_str()?,
            fk_column: r.take_str()?,
            reverse: r.take_u8()? != 0,
        });
    }
    let n = r.take_u32()? as usize;
    let mut feature_specs = Vec::with_capacity(n);
    for _ in 0..n {
        let table = r.take_str()?;
        let cols = r.take_u32()? as usize;
        let mut columns = Vec::with_capacity(cols);
        for _ in 0..cols {
            columns.push(take_column_feature(&mut r, path)?);
        }
        feature_specs.push(TableFeatureSpec { table, columns });
    }

    let n = r.take_u32()? as usize;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        let table = r.take_str()?;
        counts.push((table, r.take_u64()? as usize));
    }
    if !r.is_empty() {
        return Err(corrupt(
            path,
            format!("{} trailing byte(s) after snapshot body", r.remaining()),
        ));
    }

    let graph = builder.finish()?;
    Ok((
        graph,
        GraphMapping {
            node_types,
            edge_bindings,
            feature_specs,
        },
        GraphCursor::from_counts(counts),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_graph, update_graph, ConvertOptions};
    use relgraph_store::{DataType, Database, Row, TableSchema, Value};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relgraph-graphsnap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("graph.snap")
    }

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .column("region", DataType::Text)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("amount", DataType::Float)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .foreign_key("customer_id", "customers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (cid, t, r) in [(1i64, 100i64, "north"), (2, 200, "south")] {
            db.insert(
                "customers",
                Row::new().push(cid).push(Value::Timestamp(t)).push(r),
            )
            .unwrap();
        }
        for (oid, cid, amount, t) in [(10i64, 1i64, 5.0, 150i64), (11, 2, 7.0, 250)] {
            db.insert(
                "orders",
                Row::new()
                    .push(oid)
                    .push(cid)
                    .push(amount)
                    .push(Value::Timestamp(t)),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn graph_snapshot_round_trip_is_structural_identity() {
        let db = shop();
        let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
        let cursor = GraphCursor::capture(&db);
        let path = tmp("round-trip");
        save_graph(&path, &graph, &mapping, &cursor).unwrap();
        let (g2, m2, c2) = load_graph(&path).unwrap();
        assert!(graph.structural_eq(&g2));
        assert_eq!(mapping.node_types, m2.node_types);
        assert_eq!(mapping.edge_bindings, m2.edge_bindings);
        assert_eq!(mapping.feature_specs, m2.feature_specs);
        assert_eq!(cursor, c2);
        // Features survive bit-exactly.
        for ti in 0..graph.num_node_types() {
            let t = NodeTypeId(ti);
            assert_eq!(graph.features(t).data(), g2.features(t).data());
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn loaded_cursor_supports_catch_up_deltas() {
        let mut db = shop();
        let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
        let cursor = GraphCursor::capture(&db);
        let path = tmp("catch-up");
        save_graph(&path, &graph, &mapping, &cursor).unwrap();

        // Database grows after the snapshot was taken.
        db.insert(
            "orders",
            Row::new()
                .push(12i64)
                .push(1i64)
                .push(3.5)
                .push(Value::Timestamp(400)),
        )
        .unwrap();

        let (mut g2, mut m2, mut c2) = load_graph(&path).unwrap();
        update_graph(&db, &mut g2, &mut m2, &mut c2, &ConvertOptions::default()).unwrap();
        let (scratch, _) = build_graph(&db, &ConvertOptions::default()).unwrap();
        assert!(g2.structural_eq(&scratch));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_structured_error() {
        let db = shop();
        let (graph, mapping) = build_graph(&db, &ConvertOptions::default()).unwrap();
        let path = tmp("corrupt");
        save_graph(&path, &graph, &mapping, &GraphCursor::capture(&db)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match load_graph(&path) {
            Err(ConvertError::Store(StoreError::Corrupt { .. })) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
