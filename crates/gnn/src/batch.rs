//! Sampled subgraph → dense tensors.

use relgraph_graph::sampler::DEGREE_WINDOWS_DAYS;
use relgraph_graph::{HeteroGraph, NodeTypeId, SampledSubgraph, ALWAYS_VISIBLE};
use relgraph_tensor::Tensor;

/// Seconds per day (the unit of predictive-query windows).
const SECONDS_PER_DAY: i64 = 86_400;

/// A mini-batch ready for the GNN: per-node-type feature tensors plus the
/// subgraph's connectivity. Feature layout per node: the node type's raw
/// features, two temporal slots — `ln(1 + age_in_days)` relative to the
/// seed's anchor and a static flag (1.0 for nodes without a creation time)
/// — and one `ln(1 + visible_degree)` slot per (edge type, look-back
/// window) pair (mean aggregation is degree-invariant, so multi-scale
/// event *counts* must be explicit features).
#[derive(Debug, Clone)]
pub struct Batch {
    /// Per node type: `n_local × (raw_dim + 2)` input features.
    pub features: Vec<Tensor>,
    /// Per edge type: `(src_local, dst_local)` pairs (same ids as the
    /// subgraph).
    pub edges: Vec<Vec<(u32, u32)>>,
    /// Node type of the seeds.
    pub seed_type: NodeTypeId,
    /// Local indices of the seeds within `features[seed_type]`.
    pub seed_locals: Vec<usize>,
}

impl Batch {
    /// Number of seeds.
    pub fn num_seeds(&self) -> usize {
        self.seed_locals.len()
    }

    /// Input dimension for a node type (raw + 2 temporal slots).
    pub fn input_dim(&self, t: NodeTypeId) -> usize {
        self.features[t.0].cols()
    }
}

/// Per-type input dims for a graph as [`build_batch`] will produce them.
pub fn input_dims(graph: &HeteroGraph) -> Vec<usize> {
    (0..graph.num_node_types())
        .map(|t| {
            graph.features(NodeTypeId(t)).dim()
                + 2
                + graph.num_edge_types() * DEGREE_WINDOWS_DAYS.len()
        })
        .collect()
}

/// Assemble the dense tensors for a sampled subgraph.
pub fn build_batch(graph: &HeteroGraph, sub: &SampledSubgraph) -> Batch {
    let mut features = Vec::with_capacity(graph.num_node_types());
    for t in 0..graph.num_node_types() {
        let ty = NodeTypeId(t);
        let raw = graph.features(ty);
        let ne = graph.num_edge_types() * DEGREE_WINDOWS_DAYS.len();
        let dim = raw.dim() + 2 + ne;
        let locals = &sub.nodes[t];
        let anchors = &sub.anchors[t];
        let mut m = Tensor::zeros(locals.len(), dim);
        for (l, (&global, &anchor)) in locals.iter().zip(anchors).enumerate() {
            let row = m.row_mut(l);
            for (j, &x) in raw.row(global).iter().enumerate() {
                row[j] = x as f64;
            }
            let nt = graph.node_time(ty, global);
            let base = raw.dim();
            if nt == ALWAYS_VISIBLE {
                row[base] = 0.0;
                row[base + 1] = 1.0;
            } else {
                let age_days = ((anchor - nt).max(0)) as f64 / SECONDS_PER_DAY as f64;
                row[base] = (1.0 + age_days).ln();
                row[base + 1] = 0.0;
            }
            for (e, &deg) in sub.degrees[t][l].iter().enumerate() {
                row[base + 2 + e] = (1.0 + deg as f64).ln();
            }
        }
        features.push(m);
    }
    Batch {
        features,
        edges: sub.edges.clone(),
        seed_type: sub.seed_type,
        seed_locals: sub.seed_locals.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_graph::{FeatureMatrix, HeteroGraphBuilder, SamplerConfig, Seed, TemporalSampler};

    fn graph() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("user", 2);
        let o = b.add_node_type("order", 3);
        let e = b.add_edge_type("placed", u, o);
        b.set_node_times(
            o,
            vec![SECONDS_PER_DAY, 2 * SECONDS_PER_DAY, 3 * SECONDS_PER_DAY],
        );
        b.set_features(u, FeatureMatrix::from_rows(2, 1, vec![0.5, -0.5]));
        b.set_features(
            o,
            FeatureMatrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        for (user, order) in [(0, 0), (0, 1), (1, 2)] {
            b.add_edge(e, user, order, (order as i64 + 1) * SECONDS_PER_DAY);
        }
        b.finish().unwrap()
    }

    #[test]
    fn batch_shapes_and_time_features() {
        let g = graph();
        let sampler = TemporalSampler::new(&g, SamplerConfig::new(vec![10]));
        let anchor = 3 * SECONDS_PER_DAY;
        let sub = sampler.sample(&[Seed {
            node_type: NodeTypeId(0),
            node: 0,
            time: anchor,
        }]);
        let batch = build_batch(&g, &sub);
        assert_eq!(batch.num_seeds(), 1);
        // user features: 1 raw + 2 temporal + 4 degree slots (one edge
        // type x four windows).
        assert_eq!(batch.input_dim(NodeTypeId(0)), 7);
        assert_eq!(batch.input_dim(NodeTypeId(1)), 8);
        // User 0 has no creation time → static flag set.
        let urow = batch.features[0].row(batch.seed_locals[0]);
        assert_eq!(urow[0], 0.5);
        assert_eq!(urow[1], 0.0);
        assert_eq!(urow[2], 1.0);
        // Orders 0 (age 2 days) and 1 (age 1 day) were sampled.
        assert_eq!(batch.features[1].rows(), 2);
        for r in 0..2 {
            let row = batch.features[1].row(r);
            assert_eq!(row[3], 0.0, "timed node must not be flagged static");
            assert!(row[2] > 0.0, "age feature should be positive");
        }
        // Seed user placed 2 visible orders at anchor; every window ≥ 7d
        // covers both → ln(3) in each of the four degree slots.
        let urow = batch.features[0].row(batch.seed_locals[0]);
        for w in 0..4 {
            assert!(
                (urow[3 + w] - (3.0f64).ln()).abs() < 1e-9,
                "slot {w}: {urow:?}"
            );
        }
        assert_eq!(input_dims(&g), vec![7, 8]);
    }

    #[test]
    fn empty_types_give_zero_row_tensors() {
        let g = graph();
        let sampler = TemporalSampler::new(&g, SamplerConfig::new(vec![]));
        let sub = sampler.sample(&[Seed {
            node_type: NodeTypeId(0),
            node: 1,
            time: 0,
        }]);
        let batch = build_batch(&g, &sub);
        assert_eq!(batch.features[1].rows(), 0);
        assert_eq!(batch.features[0].rows(), 1);
    }
}
