//! Two-tower recommendation: a GNN user tower against a linear item tower,
//! trained with a BPR (Bayesian personalized ranking) loss.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relgraph_graph::{HeteroGraph, NodeTypeId, SamplerConfig, Seed, TemporalSampler};
use relgraph_nn::ParamId;
use relgraph_nn::{clip_global_norm, init, Activation, Adam, Binding, Linear, Optimizer, ParamSet};
use relgraph_obs as obs;
use relgraph_tensor::{Graph, Tensor};

use crate::batch::{build_batch, input_dims};
use crate::error::{GnnError, GnnResult};
use crate::model::{GnnConfig, HeteroGnn};

/// Hyper-parameters for [`train_two_tower`].
#[derive(Debug, Clone)]
pub struct TwoTowerConfig {
    /// Shared embedding dimension of both towers.
    pub embed_dim: usize,
    /// GNN hidden width (user tower).
    pub hidden_dim: usize,
    /// Per-hop fanouts of the user tower.
    pub fanouts: Vec<usize>,
    /// Maximum epochs.
    pub epochs: usize,
    /// Examples per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Gradient-norm cap.
    pub clip_norm: f64,
    /// Negatives sampled per positive, per epoch.
    pub negatives: usize,
    /// Early-stopping patience in epochs (validation recall@`eval_k`).
    pub patience: usize,
    /// Cutoff for the validation recall early-stopping criterion.
    pub eval_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwoTowerConfig {
    fn default() -> Self {
        TwoTowerConfig {
            embed_dim: 16,
            hidden_dim: 32,
            fanouts: vec![10, 10],
            epochs: 15,
            batch_size: 64,
            lr: 0.01,
            clip_norm: 5.0,
            negatives: 4,
            patience: 3,
            eval_k: 10,
            seed: 29,
        }
    }
}

/// A trained two-tower recommender.
pub struct TwoTowerModel {
    ps: ParamSet,
    user_gnn: HeteroGnn,
    item_proj: Linear,
    /// Free per-item embedding table: lets the item tower pick up
    /// collaborative structure beyond the item's attributes.
    item_embed: ParamId,
    item_type: NodeTypeId,
    item_features: Tensor,
    sampler_cfg: SamplerConfig,
}

impl TwoTowerModel {
    /// The item node type being ranked.
    pub fn item_type(&self) -> NodeTypeId {
        self.item_type
    }

    /// Score every item for each user seed: returns one `n_items` score
    /// vector per seed.
    pub fn scores(&self, graph: &HeteroGraph, seeds: &[Seed]) -> Vec<Vec<f64>> {
        let item_emb = self.item_embeddings();
        let item_t = item_emb.transpose();
        let sampler = TemporalSampler::new(graph, self.sampler_cfg.clone());
        let mut out = Vec::with_capacity(seeds.len());
        for chunk in seeds.chunks(128) {
            let sub = sampler.sample(chunk);
            let batch = build_batch(graph, &sub);
            let mut g = Graph::new();
            let mut binding = Binding::new();
            let u = self
                .user_gnn
                .forward(&mut g, &mut binding, &self.ps, &batch);
            let u = g.value(u).clone();
            let scores = u.matmul(&item_t);
            for r in 0..scores.rows() {
                out.push(scores.row(r).to_vec());
            }
        }
        out
    }

    /// Top-`k` item indices per seed, excluding each seed's `exclude` set
    /// (e.g. items already purchased before the anchor).
    pub fn recommend(
        &self,
        graph: &HeteroGraph,
        seeds: &[Seed],
        k: usize,
        exclude: &[std::collections::HashSet<usize>],
    ) -> Vec<Vec<usize>> {
        let all = self.scores(graph, seeds);
        all.into_iter()
            .enumerate()
            .map(|(i, scores)| {
                let skip = exclude.get(i);
                let mut idx: Vec<usize> = (0..scores.len())
                    .filter(|item| skip.is_none_or(|s| !s.contains(item)))
                    .collect();
                idx.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                idx.truncate(k);
                idx
            })
            .collect()
    }

    fn item_embeddings(&self) -> Tensor {
        let mut g = Graph::new();
        let mut binding = Binding::new();
        let x = g.constant(self.item_features.clone());
        let proj = self.item_proj.forward(&mut g, &mut binding, &self.ps, x);
        let free = binding.bind(&mut g, &self.ps, self.item_embed);
        let e = g.add(proj, free);
        g.value(e).clone()
    }
}

fn raw_item_features(graph: &HeteroGraph, item_type: NodeTypeId) -> Tensor {
    let f = graph.features(item_type);
    let n = f.rows();
    let d = f.dim();
    let mut t = Tensor::zeros(n, d);
    for i in 0..n {
        for (j, &x) in f.row(i).iter().enumerate() {
            t.set(i, j, x as f64);
        }
    }
    t
}

/// Train a two-tower recommender from `(user seed, positive item)` pairs,
/// early-stopping on the `val` pairs' recall@`eval_k` when they are
/// non-empty. Negatives are sampled uniformly per example each epoch.
pub fn train_two_tower(
    graph: &HeteroGraph,
    item_type: NodeTypeId,
    train: &[(Seed, usize)],
    val: &[(Seed, usize)],
    cfg: &TwoTowerConfig,
) -> GnnResult<TwoTowerModel> {
    if train.is_empty() {
        return Err(GnnError::DegenerateTrainingSet("no training pairs".into()));
    }
    let n_items = graph.num_nodes(item_type);
    if n_items < 2 {
        return Err(GnnError::DegenerateTrainingSet(
            "need at least two items".into(),
        ));
    }
    let item_features = raw_item_features(graph, item_type);
    let mut ps = ParamSet::new();
    let gnn_cfg = GnnConfig {
        hidden_dim: cfg.hidden_dim,
        layers: cfg.fanouts.len(),
        out_dim: cfg.embed_dim,
        activation: Activation::Relu,
        aggregation: crate::sage::Aggregation::Mean,
        seed: cfg.seed,
    };
    let seed_type = train[0].0.node_type.0;
    let user_gnn = HeteroGnn::new(
        &mut ps,
        &input_dims(graph),
        graph.edge_types(),
        seed_type,
        &gnn_cfg,
    );
    let item_proj = Linear::new(
        &mut ps,
        "item_proj",
        item_features.cols(),
        cfg.embed_dim,
        cfg.seed.wrapping_add(777),
    );
    let item_embed = {
        let mut r = init::rng(cfg.seed.wrapping_add(778));
        let mut t = init::xavier_uniform(n_items, cfg.embed_dim, &mut r);
        t.scale_assign(0.3); // start mostly feature-driven
        ps.register("item_embed", t)
    };
    let sampler_cfg = SamplerConfig::new(cfg.fanouts.clone());
    let sampler = TemporalSampler::new(graph, sampler_cfg.clone());
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ones = Tensor::full(cfg.embed_dim, 1, 1.0);

    // One BPR forward pass over a chunk of (seed, positive) pairs with
    // `negatives` uniform negatives per positive; returns the scalar loss.
    let bpr_loss = |g: &mut Graph,
                    binding: &mut Binding,
                    ps: &ParamSet,
                    pairs: &[(Seed, usize)],
                    rng: &mut StdRng|
     -> relgraph_tensor::Var {
        let seeds: Vec<Seed> = pairs.iter().map(|&(s, _)| s).collect();
        let pos: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        let sub = sampler.sample(&seeds);
        let batch = build_batch(graph, &sub);
        let u = user_gnn.forward(g, binding, ps, &batch);
        let items = g.constant_copied(&item_features);
        let proj = item_proj.forward(g, binding, ps, items);
        let free = binding.bind(g, ps, item_embed);
        let item_emb = g.add(proj, free);
        let p = g
            .gather_rows(item_emb, pos.clone())
            .expect("pos item in range");
        let ones_v = g.constant_copied(&ones);
        let up = g.mul(u, p);
        let s_pos = g.matmul(up, ones_v);
        let mut total: Option<relgraph_tensor::Var> = None;
        for _ in 0..cfg.negatives.max(1) {
            let neg: Vec<usize> = pos
                .iter()
                .map(|&p| {
                    let mut n = rng.gen_range(0..n_items);
                    while n == p {
                        n = rng.gen_range(0..n_items);
                    }
                    n
                })
                .collect();
            let nneg = g.gather_rows(item_emb, neg).expect("neg item in range");
            let un = g.mul(u, nneg);
            let ones_v = g.constant_copied(&ones);
            let s_neg = g.matmul(un, ones_v);
            // BPR: softplus(s_neg − s_pos).
            let diff = g.sub(s_neg, s_pos);
            let sp = g.softplus(diff);
            let l = g.mean_all(sp);
            total = Some(match total {
                Some(t) => g.add(t, l),
                None => l,
            });
        }
        let t = total.expect("at least one negative round");
        g.scale(t, 1.0 / cfg.negatives.max(1) as f64)
    };

    // Group validation pairs per (seed node, anchor) for recall@k.
    let mut val_groups: Vec<(Seed, Vec<usize>)> = Vec::new();
    for &(seed, item) in val {
        match val_groups.iter_mut().find(|(s, _)| *s == seed) {
            Some((_, items)) => items.push(item),
            None => val_groups.push((seed, vec![item])),
        }
    }

    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut best_val = f64::NEG_INFINITY;
    let mut best_snapshot = ps.snapshot();
    let mut since_best = 0usize;
    let _train_span = obs::span("gnn.train_two_tower");
    for epoch in 0..cfg.epochs {
        obs::add("gnn.train.epochs", 1);
        order.shuffle(&mut rng);
        // Reused tape arena: reset() recycles buffers between minibatches.
        let mut g = Graph::new();
        let mut binding = Binding::new();
        for chunk in order.chunks(cfg.batch_size) {
            let pairs: Vec<(Seed, usize)> = chunk.iter().map(|&i| train[i]).collect();
            g.reset();
            binding.reset();
            let l = bpr_loss(&mut g, &mut binding, &ps, &pairs, &mut rng);
            if !g.value(l).item().is_finite() {
                return Err(GnnError::NumericFailure { epoch });
            }
            g.backward(l)?;
            binding.accumulate_grads(&g, &mut ps);
            clip_global_norm(&mut ps, cfg.clip_norm);
            opt.step(&mut ps);
        }
        if !val_groups.is_empty() {
            // Validation recall@k under the current parameters: the metric
            // we actually care about, far less noisy than val BPR loss.
            let model = TwoTowerModel {
                ps: restore_view(&ps),
                user_gnn: user_gnn.clone(),
                item_proj: item_proj.clone(),
                item_embed,
                item_type,
                item_features: item_features.clone(),
                sampler_cfg: sampler_cfg.clone(),
            };
            let seeds: Vec<Seed> = val_groups.iter().map(|&(s, _)| s).collect();
            let recs = model.recommend(graph, &seeds, cfg.eval_k, &[]);
            let mut recall = 0.0;
            for ((_, truth), rec) in val_groups.iter().zip(&recs) {
                let hit = truth.iter().filter(|t| rec.contains(t)).count();
                recall += hit as f64 / truth.len() as f64;
            }
            let val_recall = recall / val_groups.len() as f64;
            obs::series_push("gnn.val_recall", val_recall);
            // Reclaim the parameter set from the throwaway view.
            ps = model.ps;
            if val_recall > best_val + 1e-9 {
                best_val = val_recall;
                best_snapshot = ps.snapshot();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= cfg.patience {
                    break;
                }
            }
        }
    }
    if !val_groups.is_empty() {
        ps.restore(&best_snapshot);
    }
    Ok(TwoTowerModel {
        ps,
        user_gnn,
        item_proj,
        item_embed,
        item_type,
        item_features,
        sampler_cfg,
    })
}

/// Move-free "view" helper: [`TwoTowerModel`] owns its `ParamSet`, so the
/// per-epoch validation pass temporarily moves the set into a model and
/// takes it back afterwards. This constructor documents that hand-off.
fn restore_view(ps: &ParamSet) -> ParamSet {
    let mut out = ParamSet::new();
    for id in ps.ids() {
        out.register(ps.name(id).to_string(), ps.value(id).clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_graph::{FeatureMatrix, HeteroGraphBuilder};
    use std::collections::HashSet;

    /// Two taste groups: group-g users buy group-g items. Items carry their
    /// group in features; users are featureless, so the tower must infer
    /// taste from purchase history (1 hop).
    fn taste_graph(
        n_users: usize,
        n_items: usize,
        seed: u64,
    ) -> (HeteroGraph, Vec<(Seed, usize)>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("user", n_users);
        let i = b.add_node_type("item", n_items);
        let bought = b.add_edge_type("bought", u, i);
        let bought_by = b.add_edge_type("bought_by", i, u);
        let mut item_feats = FeatureMatrix::zeros(n_items, 2);
        for item in 0..n_items {
            item_feats.row_mut(item)[item % 2] = 1.0;
        }
        b.set_features(i, item_feats);
        b.set_features(u, FeatureMatrix::from_rows(n_users, 1, vec![1.0; n_users]));
        let mut train = Vec::new();
        let mut user_group = Vec::with_capacity(n_users);
        for user in 0..n_users {
            let group = user % 2;
            user_group.push(group);
            // History: 4 past purchases within the group.
            for k in 0..4 {
                let item = (rng.gen_range(0..n_items / 2) * 2 + group) % n_items;
                b.add_edge(bought, user, item, 10 + k);
                b.add_edge(bought_by, item, user, 10 + k);
            }
            // Future positive: another in-group item.
            let pos = (rng.gen_range(0..n_items / 2) * 2 + group) % n_items;
            train.push((
                Seed {
                    node_type: NodeTypeId(0),
                    node: user,
                    time: 100,
                },
                pos,
            ));
        }
        (b.finish().unwrap(), train, user_group)
    }

    fn fast_cfg() -> TwoTowerConfig {
        TwoTowerConfig {
            embed_dim: 8,
            hidden_dim: 16,
            fanouts: vec![5],
            epochs: 12,
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn learns_taste_groups() {
        let (g, train, groups) = taste_graph(60, 30, 1);
        let model = train_two_tower(&g, NodeTypeId(1), &train, &[], &fast_cfg()).unwrap();
        let seeds: Vec<Seed> = train.iter().map(|&(s, _)| s).collect();
        let recs = model.recommend(&g, &seeds, 5, &[]);
        // Most recommendations should match the user's group.
        let mut in_group = 0usize;
        let mut total = 0usize;
        for (user, rec) in recs.iter().enumerate() {
            for &item in rec {
                total += 1;
                if item % 2 == groups[user] {
                    in_group += 1;
                }
            }
        }
        let frac = in_group as f64 / total as f64;
        assert!(
            frac > 0.8,
            "two-tower should respect taste groups, got {frac}"
        );
        assert_eq!(model.item_type(), NodeTypeId(1));
    }

    #[test]
    fn exclusion_filters_recommendations() {
        let (g, train, _) = taste_graph(20, 10, 2);
        let model = train_two_tower(&g, NodeTypeId(1), &train, &[], &fast_cfg()).unwrap();
        let seeds = vec![train[0].0];
        let all: HashSet<usize> = (0..8).collect();
        let recs = model.recommend(&g, &seeds, 5, std::slice::from_ref(&all));
        assert!(recs[0].iter().all(|i| !all.contains(i)));
        assert_eq!(recs[0].len(), 2); // only items 8 and 9 remain
    }

    #[test]
    fn scores_cover_all_items() {
        let (g, train, _) = taste_graph(10, 12, 3);
        let model = train_two_tower(&g, NodeTypeId(1), &train, &[], &fast_cfg()).unwrap();
        let s = model.scores(&g, &[train[0].0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 12);
        assert!(s[0].iter().all(|x| x.is_finite()));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let (g, _, _) = taste_graph(10, 12, 4);
        assert!(matches!(
            train_two_tower(&g, NodeTypeId(1), &[], &[], &fast_cfg()),
            Err(GnnError::DegenerateTrainingSet(_))
        ));
    }
}
