//! Mini-batch training of node-level GNN models (binary classification and
//! regression) with Adam, gradient clipping and early stopping.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use relgraph_graph::{HeteroGraph, SamplerConfig, Seed, TemporalSampler};
use relgraph_nn::{clip_global_norm, loss, Activation, Adam, Binding, Optimizer, ParamSet};
use relgraph_obs as obs;
use relgraph_tensor::{Graph, Tensor};

use crate::batch::{build_batch, input_dims};
use crate::error::{GnnError, GnnResult};
use crate::model::{GnnConfig, HeteroGnn};
use crate::sage::Aggregation;

/// Which prediction task the model solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Binary classification; labels in `{0.0, 1.0}`, predictions are
    /// probabilities.
    Binary,
    /// Scalar regression; labels standardized internally, predictions are
    /// on the original scale.
    Regression,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Seeds per mini-batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Global gradient-norm cap.
    pub clip_norm: f64,
    /// Early-stopping patience (epochs without val improvement).
    pub patience: usize,
    /// Per-hop neighbor fanouts; the layer count follows `fanouts.len()`.
    pub fanouts: Vec<usize>,
    /// Hidden width.
    pub hidden_dim: usize,
    /// RNG seed (shuffling + init).
    pub seed: u64,
    /// Temporal (leak-free) sampling; `false` only for the leakage ablation.
    pub temporal: bool,
    /// Windowed degree-count features (default); `false` only for the
    /// depth ablation's raw-features condition.
    pub degree_features: bool,
    /// Neighborhood aggregation function.
    pub aggregation: Aggregation,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            lr: 0.01,
            clip_norm: 5.0,
            patience: 5,
            fanouts: vec![10, 10],
            hidden_dim: 32,
            seed: 17,
            temporal: true,
            degree_features: true,
            aggregation: Aggregation::Mean,
        }
    }
}

/// What happened during training.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
    /// Best validation loss (train loss when no validation set given).
    pub best_val_loss: f64,
    /// Mean train loss per epoch.
    pub train_losses: Vec<f64>,
    /// Validation loss per epoch.
    pub val_losses: Vec<f64>,
}

/// A trained node-level model: hetero-GNN + head + label scaling.
pub struct NodeModel {
    ps: ParamSet,
    gnn: HeteroGnn,
    task: TaskKind,
    label_mean: f64,
    label_std: f64,
    sampler_cfg: SamplerConfig,
    /// Training diagnostics.
    pub report: TrainReport,
}

impl NodeModel {
    /// The task this model was trained for.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// Trained parameters (per-node inference path).
    pub(crate) fn ps(&self) -> &ParamSet {
        &self.ps
    }

    /// The underlying GNN (per-node inference path).
    pub(crate) fn gnn(&self) -> &HeteroGnn {
        &self.gnn
    }

    /// Label de-standardization constants (per-node inference path).
    pub(crate) fn label_scale(&self) -> (f64, f64) {
        (self.label_mean, self.label_std)
    }

    /// Sampler configuration the model was trained under.
    pub fn sampler_cfg(&self) -> &SamplerConfig {
        &self.sampler_cfg
    }

    /// Number of trainable tensors.
    pub fn num_params(&self) -> usize {
        self.ps.len()
    }

    /// Predict for a slice of seeds: probabilities for `Binary`,
    /// original-scale values for `Regression`.
    pub fn predict(&self, graph: &HeteroGraph, seeds: &[Seed]) -> Vec<f64> {
        self.predict_with_sampler(graph, seeds, self.sampler_cfg.clone())
    }

    /// Predict with an explicit sampler configuration — used by the
    /// leakage ablation to serve a leakily-trained model under honest
    /// (deployment-time) sampling.
    pub fn predict_with_sampler(
        &self,
        graph: &HeteroGraph,
        seeds: &[Seed],
        sampler_cfg: SamplerConfig,
    ) -> Vec<f64> {
        let t0 = obs::enabled().then(std::time::Instant::now);
        let sampler = TemporalSampler::new(graph, sampler_cfg);
        // Chunks are independent forward passes; run them in parallel and
        // flatten in chunk order — identical output to the serial loop.
        let chunks: Vec<&[Seed]> = seeds.chunks(256).collect();
        let per_chunk: Vec<Vec<f64>> = chunks
            .par_iter()
            .map(|chunk| {
                let sub = sampler.sample(chunk);
                let batch = build_batch(graph, &sub);
                let mut g = Graph::new();
                let mut binding = Binding::new();
                let pred = self.gnn.forward(&mut g, &mut binding, &self.ps, &batch);
                let v = g.value(pred);
                (0..v.rows())
                    .map(|r| {
                        let x = v.get(r, 0);
                        match self.task {
                            TaskKind::Binary => 1.0 / (1.0 + (-x).exp()),
                            TaskKind::Regression => x * self.label_std + self.label_mean,
                        }
                    })
                    .collect()
            })
            .collect();
        if let Some(t0) = t0 {
            obs::add("gnn.predict.seeds", seeds.len() as u64);
            obs::record_ns("gnn.predict", t0.elapsed().as_nanos() as u64);
        }
        per_chunk.into_iter().flatten().collect()
    }

    /// Export everything needed to reconstruct this model: architecture
    /// (config, input dims, edge types, seed type), trained parameter
    /// tensors, label scaling and sampler configuration. The state is a
    /// plain value — byte-level encoding is the caller's concern (the
    /// serving layer persists it in `model.snap`, see DESIGN.md §14.6).
    pub fn export(&self) -> ModelState {
        ModelState {
            task: self.task,
            label_mean: self.label_mean,
            label_std: self.label_std,
            sampler_cfg: self.sampler_cfg.clone(),
            gnn_config: self.gnn.config().clone(),
            in_dims: self.gnn.in_dims().to_vec(),
            seed_type: self.gnn.seed_type(),
            edge_types: self.gnn.edge_type_metas().to_vec(),
            params: self.ps.snapshot(),
            report: self.report.clone(),
        }
    }

    /// Rebuild a model from an exported [`ModelState`].
    ///
    /// Parameter registration in [`HeteroGnn::new`] is deterministic given
    /// the stored architecture, so re-registering and then restoring the
    /// stored tensors reproduces the trained model exactly — predictions
    /// are bit-identical to the exporting model's. Fails with
    /// [`GnnError::ConfigMismatch`] if the stored tensors don't line up
    /// with the architecture (count or shape), which indicates a corrupt
    /// or hand-edited snapshot.
    pub fn from_state(state: ModelState) -> GnnResult<NodeModel> {
        let mut ps = ParamSet::new();
        let gnn = HeteroGnn::new(
            &mut ps,
            &state.in_dims,
            &state.edge_types,
            state.seed_type,
            &state.gnn_config,
        );
        if ps.len() != state.params.len() {
            return Err(GnnError::ConfigMismatch(format!(
                "model state carries {} parameter tensor(s), architecture registers {}",
                state.params.len(),
                ps.len()
            )));
        }
        for (i, (fresh, stored)) in ps.snapshot().iter().zip(&state.params).enumerate() {
            if fresh.shape() != stored.shape() {
                return Err(GnnError::ConfigMismatch(format!(
                    "parameter tensor #{i} has shape {:?}, architecture expects {:?}",
                    stored.shape(),
                    fresh.shape()
                )));
            }
        }
        ps.restore(&state.params);
        Ok(NodeModel {
            ps,
            gnn,
            task: state.task,
            label_mean: state.label_mean,
            label_std: state.label_std,
            sampler_cfg: state.sampler_cfg,
            report: state.report,
        })
    }
}

/// A [`NodeModel`] flattened into plain data for persistence: architecture,
/// trained tensors, label scaling, sampler configuration and training
/// report. Produced by [`NodeModel::export`], consumed by
/// [`NodeModel::from_state`].
#[derive(Debug, Clone)]
pub struct ModelState {
    /// Prediction task.
    pub task: TaskKind,
    /// Regression label de-standardization mean (0 for binary).
    pub label_mean: f64,
    /// Regression label de-standardization std (1 for binary).
    pub label_std: f64,
    /// Sampler configuration the model was trained under.
    pub sampler_cfg: SamplerConfig,
    /// GNN hyper-parameters.
    pub gnn_config: GnnConfig,
    /// Per-node-type input feature dimensions.
    pub in_dims: Vec<usize>,
    /// Seed node type index.
    pub seed_type: usize,
    /// Edge types the model was built for.
    pub edge_types: Vec<relgraph_graph::EdgeTypeMeta>,
    /// Trained parameter tensors, in registration order.
    pub params: Vec<Tensor>,
    /// Training diagnostics carried along for observability.
    pub report: TrainReport,
}

/// A trained multiclass node-level model: hetero-GNN with a k-way softmax
/// head plus the class vocabulary.
pub struct MulticlassModel {
    ps: ParamSet,
    gnn: HeteroGnn,
    classes: Vec<String>,
    sampler_cfg: SamplerConfig,
    /// Training diagnostics.
    pub report: TrainReport,
}

impl MulticlassModel {
    /// The class vocabulary (index-aligned with predictions).
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Per-seed class probabilities (`softmax` over the head logits).
    pub fn predict_proba(&self, graph: &HeteroGraph, seeds: &[Seed]) -> Vec<Vec<f64>> {
        let t0 = obs::enabled().then(std::time::Instant::now);
        let sampler = TemporalSampler::new(graph, self.sampler_cfg.clone());
        let chunks: Vec<&[Seed]> = seeds.chunks(256).collect();
        let per_chunk: Vec<Vec<Vec<f64>>> = chunks
            .par_iter()
            .map(|chunk| {
                let sub = sampler.sample(chunk);
                let batch = build_batch(graph, &sub);
                let mut g = Graph::new();
                let mut binding = Binding::new();
                let logits = self.gnn.forward(&mut g, &mut binding, &self.ps, &batch);
                let ls = g.log_softmax(logits);
                let v = g.value(ls);
                (0..v.rows())
                    .map(|r| v.row(r).iter().map(|&x| x.exp()).collect())
                    .collect()
            })
            .collect();
        if let Some(t0) = t0 {
            obs::add("gnn.predict.seeds", seeds.len() as u64);
            obs::record_ns("gnn.predict", t0.elapsed().as_nanos() as u64);
        }
        per_chunk.into_iter().flatten().collect()
    }

    /// Per-seed argmax class index.
    pub fn predict(&self, graph: &HeteroGraph, seeds: &[Seed]) -> Vec<usize> {
        self.predict_proba(graph, seeds)
            .into_iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

/// Record one training epoch's observability series: losses, mean pre-clip
/// gradient norm, epoch duration and throughput. No-op when obs is off
/// (`t0` is `None`).
fn record_epoch_obs(
    t0: Option<std::time::Instant>,
    rows: usize,
    batches: f64,
    train_loss: f64,
    val_loss: f64,
    grad_norm_sum: f64,
) {
    let Some(t0) = t0 else { return };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    obs::observe("gnn.epoch_ms", ms);
    obs::series_push("gnn.train_loss", train_loss);
    obs::series_push("gnn.val_loss", val_loss);
    obs::series_push("gnn.grad_norm", grad_norm_sum / batches.max(1.0));
    obs::series_push("gnn.rows_per_s", rows as f64 / (ms / 1e3).max(1e-9));
    obs::add("gnn.train.epochs", 1);
    obs::add("gnn.train.batches", batches as u64);
}

/// Close out a training run's observability: total examples seen and a
/// synthetic `graph.sample` child span for the sampling time accumulated
/// (inside worker threads) while the `gnn.train` span was open.
fn close_train_obs(sample_ns0: u64, examples: usize) {
    if !obs::enabled() {
        return;
    }
    obs::add("gnn.train.examples", examples as u64);
    let sampled = obs::counter_value("graph.sample_ns").saturating_sub(sample_ns0);
    if sampled > 0 {
        obs::record_ns("graph.sample", sampled);
    }
}

/// Train a k-way classifier over `(seed, class index)` pairs. `classes` is
/// the label vocabulary (indices into it appear in `train`/`val`).
pub fn train_multiclass_model(
    graph: &HeteroGraph,
    classes: Vec<String>,
    train: &[(Seed, usize)],
    val: &[(Seed, usize)],
    cfg: &TrainConfig,
) -> GnnResult<MulticlassModel> {
    if train.is_empty() {
        return Err(GnnError::DegenerateTrainingSet(
            "no training examples".into(),
        ));
    }
    let k = classes.len();
    if k < 2 {
        return Err(GnnError::DegenerateTrainingSet(format!(
            "multiclass needs ≥ 2 classes, got {k}"
        )));
    }
    if let Some(&(_, bad)) = train.iter().chain(val).find(|&&(_, c)| c >= k) {
        return Err(GnnError::DegenerateTrainingSet(format!(
            "class index {bad} out of range for {k} classes"
        )));
    }
    let sampler_cfg = {
        let mut base = SamplerConfig::new(cfg.fanouts.clone());
        if !cfg.temporal {
            base = base.leaky();
        }
        if !cfg.degree_features {
            base = base.without_degree_features();
        }
        base
    };
    let sampler = TemporalSampler::new(graph, sampler_cfg.clone());
    let mut ps = ParamSet::new();
    let gnn_cfg = GnnConfig {
        hidden_dim: cfg.hidden_dim,
        layers: cfg.fanouts.len(),
        out_dim: k,
        activation: Activation::Relu,
        aggregation: cfg.aggregation,
        seed: cfg.seed,
    };
    let seed_type = train[0].0.node_type.0;
    let gnn = HeteroGnn::new(
        &mut ps,
        &input_dims(graph),
        graph.edge_types(),
        seed_type,
        &gnn_cfg,
    );
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let ce_loss = |g: &mut Graph,
                   binding: &mut Binding,
                   ps: &ParamSet,
                   examples: &[(Seed, usize)]|
     -> relgraph_tensor::Var {
        let seeds: Vec<Seed> = examples.iter().map(|&(s, _)| s).collect();
        let sub = sampler.sample(&seeds);
        let batch = build_batch(graph, &sub);
        let logits = gnn.forward(g, binding, ps, &batch);
        let mut one_hot = Tensor::zeros(examples.len(), k);
        for (r, &(_, c)) in examples.iter().enumerate() {
            one_hot.set(r, c, 1.0);
        }
        let target = g.constant(one_hot);
        loss::softmax_cross_entropy(g, logits, target)
    };

    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut report = TrainReport::default();
    let mut best_val = f64::INFINITY;
    let mut best_snapshot = ps.snapshot();
    let mut since_best = 0usize;
    let _train_span = obs::span("gnn.train");
    let sample_ns0 = obs::counter_value("graph.sample_ns");
    for epoch in 0..cfg.epochs {
        let epoch_t0 = obs::enabled().then(std::time::Instant::now);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches: f64 = 0.0;
        let mut grad_norm_sum = 0.0;
        // One graph + binding reused across minibatches: reset() recycles
        // every tape buffer into the arena instead of reallocating.
        let mut g = Graph::new();
        let mut binding = Binding::new();
        for chunk in order.chunks(cfg.batch_size) {
            let examples: Vec<(Seed, usize)> = chunk.iter().map(|&i| train[i]).collect();
            g.reset();
            binding.reset();
            let l = ce_loss(&mut g, &mut binding, &ps, &examples);
            let lv = g.value(l).item();
            if !lv.is_finite() {
                return Err(GnnError::NumericFailure { epoch });
            }
            g.backward(l)?;
            binding.accumulate_grads(&g, &mut ps);
            grad_norm_sum += clip_global_norm(&mut ps, cfg.clip_norm);
            opt.step(&mut ps);
            epoch_loss += lv;
            batches += 1.0;
        }
        let train_loss = epoch_loss / batches.max(1.0);
        report.train_losses.push(train_loss);
        let val_loss = if val.is_empty() {
            train_loss
        } else {
            // Forward-only and per-chunk independent: evaluate chunks in
            // parallel, reduce in chunk order (deterministic sum).
            let chunks: Vec<&[(Seed, usize)]> = val.chunks(cfg.batch_size).collect();
            let stats: Vec<(f64, f64)> = chunks
                .par_iter()
                .map(|chunk| {
                    let mut g = Graph::new();
                    let mut binding = Binding::new();
                    let l = ce_loss(&mut g, &mut binding, &ps, chunk);
                    (g.value(l).item() * chunk.len() as f64, chunk.len() as f64)
                })
                .collect();
            let (total, n) = stats
                .iter()
                .fold((0.0, 0.0), |(t, n), &(dt, dn)| (t + dt, n + dn));
            total / n.max(1.0)
        };
        report.val_losses.push(val_loss);
        report.epochs_run = epoch + 1;
        record_epoch_obs(
            epoch_t0,
            train.len(),
            batches,
            train_loss,
            val_loss,
            grad_norm_sum,
        );
        if val_loss < best_val - 1e-6 {
            best_val = val_loss;
            best_snapshot = ps.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.patience {
                break;
            }
        }
    }
    ps.restore(&best_snapshot);
    report.best_val_loss = best_val;
    close_train_obs(sample_ns0, train.len() * report.epochs_run);
    Ok(MulticlassModel {
        ps,
        gnn,
        classes,
        sampler_cfg,
        report,
    })
}

#[allow(clippy::too_many_arguments)]
fn batch_loss(
    g: &mut Graph,
    binding: &mut Binding,
    ps: &ParamSet,
    gnn: &HeteroGnn,
    graph: &HeteroGraph,
    sampler: &TemporalSampler,
    examples: &[(Seed, f64)],
    task: TaskKind,
    label_mean: f64,
    label_std: f64,
) -> relgraph_tensor::Var {
    let seeds: Vec<Seed> = examples.iter().map(|&(s, _)| s).collect();
    let sub = sampler.sample(&seeds);
    let batch = build_batch(graph, &sub);
    let pred = gnn.forward(g, binding, ps, &batch);
    let labels: Vec<f64> = examples
        .iter()
        .map(|&(_, y)| match task {
            TaskKind::Binary => y,
            TaskKind::Regression => (y - label_mean) / label_std,
        })
        .collect();
    let n = labels.len();
    let target = g.constant(Tensor::from_vec(n, 1, labels));
    match task {
        TaskKind::Binary => loss::bce_with_logits(g, pred, target),
        TaskKind::Regression => loss::huber(g, pred, target, 1.0),
    }
}

/// Train a node-level model.
///
/// `train` and `val` pair each [`Seed`] (entity + anchor time) with its
/// label. Returns the model with the best-validation-loss parameters
/// restored.
pub fn train_node_model(
    graph: &HeteroGraph,
    task: TaskKind,
    train: &[(Seed, f64)],
    val: &[(Seed, f64)],
    cfg: &TrainConfig,
) -> GnnResult<NodeModel> {
    if train.is_empty() {
        return Err(GnnError::DegenerateTrainingSet(
            "no training examples".into(),
        ));
    }
    if task == TaskKind::Binary {
        let pos = train.iter().filter(|&&(_, y)| y > 0.5).count();
        if pos == 0 || pos == train.len() {
            return Err(GnnError::DegenerateTrainingSet(format!(
                "binary task needs both classes; got {pos}/{} positives",
                train.len()
            )));
        }
    }
    // Label standardization for regression.
    let (label_mean, label_std) = match task {
        TaskKind::Binary => (0.0, 1.0),
        TaskKind::Regression => {
            let n = train.len() as f64;
            let mean = train.iter().map(|&(_, y)| y).sum::<f64>() / n;
            let var = train
                .iter()
                .map(|&(_, y)| (y - mean) * (y - mean))
                .sum::<f64>()
                / n;
            (mean, var.sqrt().max(1e-9))
        }
    };

    let sampler_cfg = {
        let mut base = SamplerConfig::new(cfg.fanouts.clone());
        if !cfg.temporal {
            base = base.leaky();
        }
        if !cfg.degree_features {
            base = base.without_degree_features();
        }
        base
    };
    let sampler = TemporalSampler::new(graph, sampler_cfg.clone());
    let mut ps = ParamSet::new();
    let gnn_cfg = GnnConfig {
        hidden_dim: cfg.hidden_dim,
        layers: cfg.fanouts.len(),
        out_dim: 1,
        activation: Activation::Relu,
        aggregation: cfg.aggregation,
        seed: cfg.seed,
    };
    let seed_type = train[0].0.node_type.0;
    let gnn = HeteroGnn::new(
        &mut ps,
        &input_dims(graph),
        graph.edge_types(),
        seed_type,
        &gnn_cfg,
    );
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut report = TrainReport::default();
    let mut best_val = f64::INFINITY;
    let mut best_snapshot = ps.snapshot();
    let mut since_best = 0usize;

    let _train_span = obs::span("gnn.train");
    let sample_ns0 = obs::counter_value("graph.sample_ns");
    for epoch in 0..cfg.epochs {
        let epoch_t0 = obs::enabled().then(std::time::Instant::now);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches: f64 = 0.0;
        let mut grad_norm_sum = 0.0;
        // One graph + binding reused across minibatches: reset() recycles
        // every tape buffer into the arena instead of reallocating.
        let mut g = Graph::new();
        let mut binding = Binding::new();
        for chunk in order.chunks(cfg.batch_size) {
            let examples: Vec<(Seed, f64)> = chunk.iter().map(|&i| train[i]).collect();
            g.reset();
            binding.reset();
            let l = batch_loss(
                &mut g,
                &mut binding,
                &ps,
                &gnn,
                graph,
                &sampler,
                &examples,
                task,
                label_mean,
                label_std,
            );
            let lv = g.value(l).item();
            if !lv.is_finite() {
                return Err(GnnError::NumericFailure { epoch });
            }
            g.backward(l)?;
            binding.accumulate_grads(&g, &mut ps);
            grad_norm_sum += clip_global_norm(&mut ps, cfg.clip_norm);
            opt.step(&mut ps);
            epoch_loss += lv;
            batches += 1.0;
        }
        let train_loss = epoch_loss / batches.max(1.0);
        report.train_losses.push(train_loss);

        // Validation (forward only): chunks are independent, so evaluate
        // them in parallel and reduce in chunk order (deterministic sum).
        let val_loss = if val.is_empty() {
            train_loss
        } else {
            let chunks: Vec<&[(Seed, f64)]> = val.chunks(cfg.batch_size).collect();
            let stats: Vec<(f64, f64)> = chunks
                .par_iter()
                .map(|chunk| {
                    let mut g = Graph::new();
                    let mut binding = Binding::new();
                    let l = batch_loss(
                        &mut g,
                        &mut binding,
                        &ps,
                        &gnn,
                        graph,
                        &sampler,
                        chunk,
                        task,
                        label_mean,
                        label_std,
                    );
                    (g.value(l).item() * chunk.len() as f64, chunk.len() as f64)
                })
                .collect();
            let (total, n) = stats
                .iter()
                .fold((0.0, 0.0), |(t, n), &(dt, dn)| (t + dt, n + dn));
            total / n.max(1.0)
        };
        report.val_losses.push(val_loss);
        report.epochs_run = epoch + 1;
        record_epoch_obs(
            epoch_t0,
            train.len(),
            batches,
            train_loss,
            val_loss,
            grad_norm_sum,
        );

        if val_loss < best_val - 1e-6 {
            best_val = val_loss;
            best_snapshot = ps.snapshot();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= cfg.patience {
                break;
            }
        }
    }
    ps.restore(&best_snapshot);
    report.best_val_loss = best_val;
    close_train_obs(sample_ns0, train.len() * report.epochs_run);
    Ok(NodeModel {
        ps,
        gnn,
        task,
        label_mean,
        label_std,
        sampler_cfg,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use relgraph_graph::{FeatureMatrix, HeteroGraphBuilder, NodeTypeId};
    use relgraph_metrics as metrics;

    /// Users whose label is determined *only* by the mean feature of their
    /// item neighbors — learnable by a 1-hop GNN, invisible to hop-0.
    fn neighbor_label_graph(n_users: usize, seed: u64) -> (HeteroGraph, Vec<(Seed, f64)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_items = n_users * 3;
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("user", n_users);
        let i = b.add_node_type("item", n_items);
        let e = b.add_edge_type("owns", u, i);
        let mut item_feats = FeatureMatrix::zeros(n_items, 2);
        let mut labels = Vec::with_capacity(n_users);
        for user in 0..n_users {
            let mut total = 0.0;
            for k in 0..3 {
                let item = user * 3 + k;
                let x: f64 = rng.gen_range(-1.0..1.0);
                item_feats.row_mut(item)[0] = x as f32;
                item_feats.row_mut(item)[1] = 1.0;
                total += x;
                b.add_edge(e, user, item, 0);
            }
            labels.push(if total > 0.0 { 1.0 } else { 0.0 });
        }
        b.set_features(i, item_feats);
        b.set_features(u, FeatureMatrix::from_rows(n_users, 1, vec![1.0; n_users]));
        let g = b.finish().unwrap();
        let examples = labels
            .into_iter()
            .enumerate()
            .map(|(n, y)| {
                (
                    Seed {
                        node_type: NodeTypeId(0),
                        node: n,
                        time: 10,
                    },
                    y,
                )
            })
            .collect();
        (g, examples)
    }

    fn cfg() -> TrainConfig {
        TrainConfig {
            epochs: 40,
            batch_size: 32,
            lr: 0.02,
            fanouts: vec![5],
            hidden_dim: 16,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn learns_neighbor_determined_labels() {
        let (g, examples) = neighbor_label_graph(120, 1);
        let (train, test) = examples.split_at(90);
        let model = train_node_model(&g, TaskKind::Binary, train, &[], &cfg()).unwrap();
        let seeds: Vec<Seed> = test.iter().map(|&(s, _)| s).collect();
        let probs = model.predict(&g, &seeds);
        let labels: Vec<bool> = test.iter().map(|&(_, y)| y > 0.5).collect();
        let auc = metrics::auroc(&probs, &labels).unwrap();
        assert!(
            auc > 0.85,
            "1-hop GNN should learn neighbor labels, AUROC {auc}"
        );
        assert_eq!(model.task(), TaskKind::Binary);
        assert!(model.num_params() > 0);
        assert!(model.report.epochs_run > 0);
    }

    #[test]
    fn hop_zero_cannot_learn_neighbor_labels() {
        let (g, examples) = neighbor_label_graph(120, 2);
        let (train, test) = examples.split_at(90);
        let mut c = cfg();
        c.fanouts = vec![];
        let model = train_node_model(&g, TaskKind::Binary, train, &[], &c).unwrap();
        let seeds: Vec<Seed> = test.iter().map(|&(s, _)| s).collect();
        let probs = model.predict(&g, &seeds);
        let labels: Vec<bool> = test.iter().map(|&(_, y)| y > 0.5).collect();
        let auc = metrics::auroc(&probs, &labels).unwrap();
        assert!(auc < 0.7, "hop-0 model should be near chance, AUROC {auc}");
    }

    #[test]
    fn regression_recovers_neighbor_mean() {
        let (g, examples) = neighbor_label_graph(120, 3);
        // Regression target: 10 * label + 5 (checks de-standardization too).
        let reg: Vec<(Seed, f64)> = examples.iter().map(|&(s, y)| (s, 10.0 * y + 5.0)).collect();
        let (train, test) = reg.split_at(90);
        let model = train_node_model(&g, TaskKind::Regression, train, &[], &cfg()).unwrap();
        let seeds: Vec<Seed> = test.iter().map(|&(s, _)| s).collect();
        let preds = model.predict(&g, &seeds);
        let truth: Vec<f64> = test.iter().map(|&(_, y)| y).collect();
        let mae = metrics::mae(&preds, &truth);
        assert!(mae < 3.0, "regression MAE too high: {mae}");
        // Predictions must live on the original scale.
        let mean_pred = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!(
            (mean_pred - 10.0).abs() < 4.0,
            "mean prediction {mean_pred} off scale"
        );
    }

    #[test]
    fn multiclass_learns_neighbor_majority() {
        // 3 classes; the label is the dominant one-hot among a user's item
        // neighbors.
        let mut rng = StdRng::seed_from_u64(7);
        let n_users = 120;
        let n_items = n_users * 3;
        let mut b = relgraph_graph::HeteroGraphBuilder::new();
        let u = b.add_node_type("user", n_users);
        let i = b.add_node_type("item", n_items);
        let e = b.add_edge_type("owns", u, i);
        let mut feats = relgraph_graph::FeatureMatrix::zeros(n_items, 3);
        let mut labels = Vec::with_capacity(n_users);
        for user in 0..n_users {
            let mut counts = [0usize; 3];
            for k in 0..3 {
                let item = user * 3 + k;
                let class = rng.gen_range(0..3usize);
                feats.row_mut(item)[class] = 1.0;
                counts[class] += 1;
                b.add_edge(e, user, item, 0);
            }
            let majority = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(c, _)| c)
                .unwrap();
            labels.push(majority);
        }
        b.set_features(i, feats);
        b.set_features(
            u,
            relgraph_graph::FeatureMatrix::from_rows(n_users, 1, vec![1.0; n_users]),
        );
        let g = b.finish().unwrap();
        let examples: Vec<(Seed, usize)> = labels
            .into_iter()
            .enumerate()
            .map(|(n, c)| {
                (
                    Seed {
                        node_type: relgraph_graph::NodeTypeId(0),
                        node: n,
                        time: 10,
                    },
                    c,
                )
            })
            .collect();
        let (train, test) = examples.split_at(90);
        let classes = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let model = train_multiclass_model(&g, classes, train, &[], &cfg()).unwrap();
        let seeds: Vec<Seed> = test.iter().map(|&(s, _)| s).collect();
        let preds = model.predict(&g, &seeds);
        let truth: Vec<usize> = test.iter().map(|&(_, c)| c).collect();
        let acc = relgraph_metrics::multiclass_accuracy(&preds, &truth);
        assert!(acc > 0.7, "multiclass accuracy {acc}");
        // Probabilities are normalized.
        for p in model.predict_proba(&g, &seeds) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert_eq!(model.classes().len(), 3);
    }

    #[test]
    fn multiclass_rejects_bad_inputs() {
        let (g, examples) = neighbor_label_graph(20, 9);
        let pairs: Vec<(Seed, usize)> = examples.iter().map(|&(s, _)| (s, 0)).collect();
        assert!(train_multiclass_model(&g, vec!["a".into()], &pairs, &[], &cfg()).is_err());
        assert!(
            train_multiclass_model(&g, vec!["a".into(), "b".into()], &[], &[], &cfg()).is_err()
        );
        let bad = vec![(pairs[0].0, 7usize)];
        assert!(
            train_multiclass_model(&g, vec!["a".into(), "b".into()], &bad, &[], &cfg()).is_err()
        );
    }

    #[test]
    fn degenerate_sets_rejected() {
        let (g, examples) = neighbor_label_graph(20, 4);
        assert!(matches!(
            train_node_model(&g, TaskKind::Binary, &[], &[], &cfg()),
            Err(GnnError::DegenerateTrainingSet(_))
        ));
        let all_pos: Vec<(Seed, f64)> = examples.iter().map(|&(s, _)| (s, 1.0)).collect();
        assert!(matches!(
            train_node_model(&g, TaskKind::Binary, &all_pos, &[], &cfg()),
            Err(GnnError::DegenerateTrainingSet(_))
        ));
    }

    #[test]
    fn early_stopping_uses_validation() {
        let (g, examples) = neighbor_label_graph(100, 5);
        let (train, val) = examples.split_at(70);
        let mut c = cfg();
        c.epochs = 50;
        c.patience = 3;
        let model = train_node_model(&g, TaskKind::Binary, train, val, &c).unwrap();
        assert!(model.report.val_losses.len() == model.report.epochs_run);
        assert!(model.report.best_val_loss.is_finite());
    }
}
