//! # relgraph-gnn
//!
//! Temporal heterogeneous graph neural networks over sampled subgraphs —
//! the model family the paper's predictive queries compile into.
//!
//! * [`batch`] converts a [`SampledSubgraph`](relgraph_graph::SampledSubgraph)
//!   into dense tensors, appending a relative-age feature per node (how long
//!   before the anchor the row appeared);
//! * [`sage`] implements one heterogeneous GraphSAGE-style layer: per-type
//!   self transform plus per-edge-type mean aggregation of neighbor
//!   messages;
//! * [`model`] stacks layers into a [`HeteroGnn`] producing seed-entity
//!   embeddings;
//! * [`train`] trains node-level models (binary classification with
//!   BCE, regression with Huber on standardized targets), with mini-batch
//!   Adam, gradient clipping and early stopping;
//! * [`recommend`] trains a two-tower recommendation model (GNN user tower,
//!   linear item tower) with a BPR ranking loss.

pub mod batch;
pub mod error;
pub mod model;
pub mod recommend;
pub mod sage;
pub mod train;

pub use batch::{build_batch, Batch};
pub use error::{GnnError, GnnResult};
pub use model::{GnnConfig, HeteroGnn};
pub use recommend::{train_two_tower, TwoTowerConfig, TwoTowerModel};
pub use sage::Aggregation;
pub use train::{
    train_multiclass_model, train_node_model, MulticlassModel, NodeModel, TaskKind, TrainConfig,
    TrainReport,
};
