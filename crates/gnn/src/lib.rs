//! # relgraph-gnn
//!
//! Temporal heterogeneous graph neural networks over sampled subgraphs —
//! the model family the paper's predictive queries compile into.
//!
//! * [`batch`] converts a [`SampledSubgraph`](relgraph_graph::SampledSubgraph)
//!   into dense tensors, appending a relative-age feature per node (how long
//!   before the anchor the row appeared);
//! * [`sage`] implements one heterogeneous GraphSAGE-style layer: per-type
//!   self transform plus per-edge-type mean aggregation of neighbor
//!   messages;
//! * [`model`] stacks layers into a [`HeteroGnn`] producing seed-entity
//!   embeddings;
//! * [`train`] trains node-level models (binary classification with
//!   BCE, regression with Huber on standardized targets), with mini-batch
//!   Adam, gradient clipping and early stopping;
//! * [`recommend`] trains a two-tower recommendation model (GNN user tower,
//!   linear item tower) with a BPR ranking loss.
//!
//! Training and prediction report timings, per-epoch loss curves and
//! sampler statistics through `relgraph-obs` when a sink is installed.
//!
//! ## Example
//!
//! ```
//! use relgraph_gnn::{train_node_model, TaskKind, TrainConfig};
//! use relgraph_graph::{HeteroGraphBuilder, Seed};
//!
//! // Ten users; the first five own an item, the rest own none.
//! let mut b = HeteroGraphBuilder::new();
//! let user = b.add_node_type("user", 10);
//! let item = b.add_node_type("item", 5);
//! let owns = b.add_edge_type("owns", user, item);
//! for u in 0..5 {
//!     b.add_edge(owns, u, u, 1);
//! }
//! let g = b.finish().unwrap();
//!
//! let examples: Vec<(Seed, f64)> = (0..10)
//!     .map(|u| {
//!         let seed = Seed { node_type: user, node: u, time: 10 };
//!         (seed, if u < 5 { 1.0 } else { 0.0 })
//!     })
//!     .collect();
//! let cfg = TrainConfig {
//!     epochs: 4,
//!     fanouts: vec![4],
//!     hidden_dim: 8,
//!     ..Default::default()
//! };
//! let model = train_node_model(&g, TaskKind::Binary, &examples, &[], &cfg).unwrap();
//! let probs = model.predict(&g, &[examples[0].0, examples[9].0]);
//! assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
//! ```

pub mod batch;
pub mod error;
pub mod infer;
pub mod infer32;
pub mod model;
pub mod recommend;
pub mod sage;
pub mod train;

pub use batch::{build_batch, Batch};
pub use error::{GnnError, GnnResult};
pub use infer::{predict_nodes, EmbeddingStore, NoCache};
pub use infer32::{predict_nodes_f32, EmbeddingStore32, InferModel32, NoCache32, Precision};
pub use model::{GnnConfig, HeteroGnn};
pub use recommend::{train_two_tower, TwoTowerConfig, TwoTowerModel};
pub use sage::Aggregation;
pub use train::{
    train_multiclass_model, train_node_model, ModelState, MulticlassModel, NodeModel, TaskKind,
    TrainConfig, TrainReport,
};
