//! Single-precision per-node inference: the serving-time `f32` twin of
//! [`crate::infer`].
//!
//! A fitted [`NodeModel`] trains and stays in `f64`; this module
//! down-converts its weights **once** into an [`InferModel32`] — every
//! linear layer narrowed to `f32` and prepacked for the `f32` packed-B
//! microkernel — and then evaluates the same deduplicated per-node layer
//! recursion as [`predict_nodes`](crate::infer::predict_nodes), tape-free:
//! no autodiff graph, no per-node tensor allocation, just
//! [`relgraph_tensor::mm_packed_f32`] over prepacked weights. The walk
//! (discovery order, kept-neighbor lists, level-0 feature rows before
//! narrowing) is byte-for-byte the `f64` walk — only arithmetic precision
//! differs, which is what the DESIGN.md §15 error bound quantifies.
//!
//! Within one precision mode, determinism is preserved: each embedding is
//! a pure function of `(type, node, level, anchor)` with a fixed `f32`
//! accumulation order, so cache-warm and cache-cold runs are bit-identical
//! — including under quantized stores, because every *fresh* embedding is
//! routed through [`EmbeddingStore32::canonicalize`] before anything
//! consumes it (a quantizing store round-trips the value through its codec
//! there, so the cold path computes with exactly what a warm hit would
//! return).

use std::collections::{HashMap, HashSet};

use rayon::prelude::*;
use relgraph_graph::{HeteroGraph, NodeTypeId, SamplerConfig};
use relgraph_nn::{Linear, Mlp, ParamSet};
use relgraph_obs as obs;
use relgraph_tensor::{apply_act_f32, mm_packed_f32, pack_b_f32, ActKind};

use crate::infer::{child_lists, feature_row};
use crate::sage::{Aggregation, SageLayer};
use crate::train::{NodeModel, TaskKind};

/// Seeds per chunk in the parallel evaluation fan-out (mirrors the `f64`
/// path's chunking so thread counts never affect grouping).
const EVAL_CHUNK: usize = 64;

/// Numeric mode of the serving inference path. Training is always `f64`;
/// this selects how *inference* computes and how the embedding cache
/// stores hop-k embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Double precision everywhere — bit-identical to the training-time
    /// prediction path. The default.
    #[default]
    F64,
    /// Weights down-converted once; per-node inference in `f32` with the
    /// wide SIMD kernel. Embedding cache stores `f32` rows.
    F32,
    /// `f32` compute plus an 8-bit linearly-quantized embedding cache
    /// (per-row scale/min), holding ~4–8× more entities per byte.
    Q8,
}

impl Precision {
    /// Stable one-byte tag for the model-snapshot header.
    pub fn tag(self) -> u8 {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
            Precision::Q8 => 2,
        }
    }

    /// Inverse of [`Precision::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Precision::F64),
            1 => Some(Precision::F32),
            2 => Some(Precision::Q8),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Q8 => "q8",
        })
    }
}

impl std::str::FromStr for Precision {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            "q8" => Ok(Precision::Q8),
            other => Err(format!(
                "unknown precision `{other}` (expected f64, f32 or q8)"
            )),
        }
    }
}

/// One dense layer narrowed to `f32`, weights prepacked for the packed-B
/// microkernel at conversion time so the per-request hot path never packs.
struct LinearF32 {
    packed_w: Vec<f32>,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl LinearF32 {
    fn from_linear(lin: &Linear, ps: &ParamSet) -> Self {
        let w = lin.weight(ps);
        let w32: Vec<f32> = w.data().iter().map(|&x| x as f32).collect();
        let bias: Vec<f32> = lin.bias(ps).data().iter().map(|&x| x as f32).collect();
        LinearF32 {
            packed_w: pack_b_f32(&w32, lin.in_dim(), lin.out_dim()),
            bias,
            in_dim: lin.in_dim(),
            out_dim: lin.out_dim(),
        }
    }

    /// `out = act(a · W + b)` for `rows` input rows.
    fn forward(&self, a: &[f32], rows: usize, out: &mut [f32], act: ActKind) {
        debug_assert_eq!(a.len(), rows * self.in_dim);
        debug_assert_eq!(out.len(), rows * self.out_dim);
        mm_packed_f32(
            a,
            &self.packed_w,
            out,
            rows,
            self.in_dim,
            self.out_dim,
            Some(&self.bias),
            act,
        );
    }
}

/// One SAGE layer narrowed to `f32`.
struct SageLayerF32 {
    self_lin: Vec<LinearF32>,
    edge_lin: Vec<LinearF32>,
    activation: ActKind,
    aggregation: Aggregation,
    out_dim: usize,
}

impl SageLayerF32 {
    fn from_layer(layer: &SageLayer, ps: &ParamSet) -> Self {
        SageLayerF32 {
            self_lin: layer
                .self_lins()
                .iter()
                .map(|l| LinearF32::from_linear(l, ps))
                .collect(),
            edge_lin: layer
                .edge_lins()
                .iter()
                .map(|l| LinearF32::from_linear(l, ps))
                .collect(),
            activation: layer.activation().kind(),
            aggregation: layer.aggregation(),
            out_dim: layer.out_dim(),
        }
    }
}

/// A fitted model down-converted once for `f32` serving: prepacked `f32`
/// layers plus the walk parameters (`SamplerConfig`, task, label scale)
/// copied out of the `f64` [`NodeModel`]. Build with
/// [`InferModel32::from_model`], evaluate with [`predict_nodes_f32`].
pub struct InferModel32 {
    layers: Vec<SageLayerF32>,
    head: Vec<LinearF32>,
    head_act: ActKind,
    seed_type: usize,
    sampler_cfg: SamplerConfig,
    task: TaskKind,
    label_mean: f64,
    label_std: f64,
}

impl InferModel32 {
    /// Down-convert a fitted `f64` model (one-time cost: one pass over
    /// every weight, narrowing and prepacking).
    pub fn from_model(model: &NodeModel) -> Self {
        let ps = model.ps();
        let gnn = model.gnn();
        let head: &Mlp = gnn.head();
        let (label_mean, label_std) = model.label_scale();
        InferModel32 {
            layers: gnn
                .layers()
                .iter()
                .map(|l| SageLayerF32::from_layer(l, ps))
                .collect(),
            head: head
                .layers()
                .iter()
                .map(|l| LinearF32::from_linear(l, ps))
                .collect(),
            head_act: head.activation().kind(),
            seed_type: gnn.seed_type(),
            sampler_cfg: model.sampler_cfg().clone(),
            task: model.task(),
            label_mean,
            label_std,
        }
    }

    /// Number of message-passing layers (the hop count `k`).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The entity node type the model predicts for.
    pub fn seed_type(&self) -> usize {
        self.seed_type
    }
}

/// An external cache of `f32` per-node embeddings keyed `(node type, node,
/// level)` — the single-precision twin of
/// [`EmbeddingStore`](crate::infer::EmbeddingStore), with one addition:
/// [`EmbeddingStore32::canonicalize`] lets a lossy (quantizing) store
/// project a fresh embedding onto its storable grid *before* the recursion
/// consumes it, which is what keeps warm and cold runs bit-identical under
/// lossy storage. The contract is `canonicalize(v) == get(..)` after
/// `put(.., v)` (ignoring eviction).
pub trait EmbeddingStore32: Send {
    /// Cached embedding, if present (may update recency bookkeeping).
    fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f32>>;
    /// Offer a freshly computed embedding to the cache.
    fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f32>);
    /// Project a fresh embedding onto exactly what a warm [`Self::get`]
    /// would return after [`Self::put`] of this value. Lossless stores
    /// return the input unchanged (the default).
    fn canonicalize(&self, emb: Vec<f32>) -> Vec<f32> {
        emb
    }
}

/// A store that caches nothing and canonicalizes to identity — the cold
/// reference for the `f32` equivalence tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCache32;

impl EmbeddingStore32 for NoCache32 {
    fn get(&mut self, _ty: usize, _node: usize, _level: usize) -> Option<Vec<f32>> {
        None
    }
    fn put(&mut self, _ty: usize, _node: usize, _level: usize, _emb: Vec<f32>) {}
}

type Key = (usize, usize, usize);

/// Predict for `nodes` in `f32`, deduplicating shared neighborhoods across
/// the batch and reusing any embeddings `store` already holds — the
/// single-precision twin of [`predict_nodes`](crate::infer::predict_nodes).
/// Returns predictions in input order on the same scale (widened to `f64`
/// only at the head's final sigmoid / label rescale).
///
/// # Panics
/// Panics if `node_type` differs from the type the model was trained on,
/// or if a node index is out of range for the graph.
pub fn predict_nodes_f32(
    model: &InferModel32,
    graph: &HeteroGraph,
    node_type: NodeTypeId,
    nodes: &[usize],
    anchor: i64,
    store: &mut dyn EmbeddingStore32,
) -> Vec<f64> {
    assert_eq!(
        node_type.0, model.seed_type,
        "seed node type differs from the model's training entity type"
    );
    let t0 = obs::enabled().then(std::time::Instant::now);
    let k = model.num_layers();
    let cfg = &model.sampler_cfg;

    // --- Discovery (top-down): identical walk to the f64 path.
    let mut levels: Vec<Vec<(usize, usize)>> = vec![Vec::new(); k + 1];
    let mut needed: HashSet<Key> = HashSet::new();
    let mut memo: HashMap<Key, Vec<f32>> = HashMap::new();
    let mut clists: HashMap<Key, Vec<(usize, Vec<usize>)>> = HashMap::new();
    let mut store_hits = 0u64;
    for &v in nodes {
        request32(
            node_type.0,
            v,
            k,
            &mut levels,
            &mut needed,
            &mut memo,
            store,
            &mut store_hits,
        );
    }
    for level in (1..=k).rev() {
        let items = std::mem::take(&mut levels[level]);
        let fanout = cfg.fanouts[k - level];
        for &(ty, node) in &items {
            let lists = child_lists(graph, cfg, ty, node, fanout, anchor);
            request32(
                ty,
                node,
                level - 1,
                &mut levels,
                &mut needed,
                &mut memo,
                store,
                &mut store_hits,
            );
            for (et, nbrs) in &lists {
                let dst = graph.edge_type(relgraph_graph::EdgeTypeId(*et)).dst.0;
                for &nbr in nbrs {
                    request32(
                        dst,
                        nbr,
                        level - 1,
                        &mut levels,
                        &mut needed,
                        &mut memo,
                        store,
                        &mut store_hits,
                    );
                }
            }
            clists.insert((ty, node, level), lists);
        }
        levels[level] = items;
    }

    // --- Evaluation (bottom-up), tape-free. Fresh values are offered to
    // the store *unprojected* (so a quantizing store encodes the original)
    // but memoized *canonicalized* (so downstream levels consume exactly
    // what a warm hit would have returned).
    let mut fresh: HashMap<Key, Vec<f32>> = HashMap::new();
    // Chunked fan-out with an inline fast path: one chunk (small warm
    // micro-batches) skips the rayon dispatch entirely. Chunks are
    // independent, so serial and parallel evaluation are bit-identical.
    fn eval_chunked<T: Copy + Sync, F: Fn(&[T]) -> Vec<Vec<f32>> + Sync>(
        items: &[T],
        f: F,
    ) -> Vec<Vec<Vec<f32>>> {
        if items.len() <= EVAL_CHUNK {
            vec![f(items)]
        } else {
            let chunks: Vec<&[T]> = items.chunks(EVAL_CHUNK).collect();
            chunks.par_iter().map(|chunk| f(chunk)).collect()
        }
    }
    if !levels[0].is_empty() {
        let rows = eval_chunked(&levels[0], |chunk| {
            chunk
                .iter()
                .map(|&(ty, node)| {
                    feature_row(graph, cfg, ty, node, anchor)
                        .into_iter()
                        .map(|x| x as f32)
                        .collect()
                })
                .collect()
        });
        for (&(ty, node), row) in levels[0].iter().zip(rows.into_iter().flatten()) {
            memo.insert((ty, node, 0), store.canonicalize(row.clone()));
            fresh.insert((ty, node, 0), row);
        }
    }
    for (level, level_nodes) in levels.iter().enumerate().skip(1) {
        if level_nodes.is_empty() {
            continue;
        }
        let layer = &model.layers[level - 1];
        let embs = eval_chunked(level_nodes, |chunk| {
            chunk
                .iter()
                .map(|&(ty, node)| eval_node32(graph, layer, &memo, &clists, ty, node, level))
                .collect()
        });
        for (&(ty, node), emb) in level_nodes.iter().zip(embs.into_iter().flatten()) {
            memo.insert((ty, node, level), store.canonicalize(emb.clone()));
            fresh.insert((ty, node, level), emb);
        }
    }

    // Offer every fresh embedding to the store, bottom level first and in
    // worklist order (deterministic LRU recency, matching the f64 path).
    for (level, level_nodes) in levels.iter().enumerate() {
        for &(ty, node) in level_nodes {
            store.put(
                ty,
                node,
                level,
                fresh.remove(&(ty, node, level)).expect("fresh embedding"),
            );
        }
    }

    // --- Head: per-seed MLP over the top-level embedding, widening to f64
    // only for the final sigmoid / label rescale (matching the f64 head's
    // output transform exactly in structure). A single chunk (the common
    // warm serving micro-batch) runs inline: the rayon dispatch would cost
    // more than the head itself, and per-chunk results are independent so
    // the serial and parallel orders produce identical bits.
    let head_chunk = |chunk: &[usize]| -> Vec<f64> {
        let mut buf_in: Vec<f32> = Vec::new();
        let mut buf_out: Vec<f32> = Vec::new();
        chunk
            .iter()
            .map(|&v| {
                let emb = &memo[&(node_type.0, v, k)];
                buf_in.clear();
                buf_in.extend_from_slice(emb);
                let last = model.head.len() - 1;
                for (i, lin) in model.head.iter().enumerate() {
                    let act = if i < last {
                        model.head_act
                    } else {
                        ActKind::Identity
                    };
                    buf_out.clear();
                    buf_out.resize(lin.out_dim, 0.0);
                    lin.forward(&buf_in, 1, &mut buf_out, act);
                    std::mem::swap(&mut buf_in, &mut buf_out);
                }
                let y = buf_in[0] as f64;
                match model.task {
                    TaskKind::Binary => 1.0 / (1.0 + (-y).exp()),
                    TaskKind::Regression => y * model.label_std + model.label_mean,
                }
            })
            .collect()
    };
    let preds: Vec<Vec<f64>> = if nodes.len() <= EVAL_CHUNK {
        vec![head_chunk(nodes)]
    } else {
        let chunks: Vec<&[usize]> = nodes.chunks(EVAL_CHUNK).collect();
        chunks.par_iter().map(|chunk| head_chunk(chunk)).collect()
    };

    if let Some(t0) = t0 {
        obs::add("gnn.infer32.seeds", nodes.len() as u64);
        obs::add("gnn.infer32.evals", needed.len() as u64);
        obs::add("gnn.infer32.store_hits", store_hits);
        obs::record_ns("gnn.infer32", t0.elapsed().as_nanos() as u64);
    }
    preds.into_iter().flatten().collect()
}

/// Register `(ty, node, level)` as needed unless it is already memoized,
/// queued, or available from the store.
#[allow(clippy::too_many_arguments)]
fn request32(
    ty: usize,
    node: usize,
    level: usize,
    levels: &mut [Vec<(usize, usize)>],
    needed: &mut HashSet<Key>,
    memo: &mut HashMap<Key, Vec<f32>>,
    store: &mut dyn EmbeddingStore32,
    store_hits: &mut u64,
) {
    let key = (ty, node, level);
    if memo.contains_key(&key) || needed.contains(&key) {
        return;
    }
    if let Some(emb) = store.get(ty, node, level) {
        *store_hits += 1;
        memo.insert(key, emb);
        return;
    }
    needed.insert(key);
    levels[level].push((ty, node));
}

/// One SAGE layer applied to one node in `f32`: fused self transform, plus
/// one message matmul + column aggregation per edge type with kept
/// neighbors, in ascending edge-type order — structurally the same
/// accumulation the `f64` tape performs, tape-free.
fn eval_node32(
    graph: &HeteroGraph,
    layer: &SageLayerF32,
    memo: &HashMap<Key, Vec<f32>>,
    clists: &HashMap<Key, Vec<(usize, Vec<usize>)>>,
    ty: usize,
    node: usize,
    level: usize,
) -> Vec<f32> {
    let lists = &clists[&(ty, node, level)];
    let has_children = lists.iter().any(|(_, nbrs)| !nbrs.is_empty());
    let x_self = &memo[&(ty, node, level - 1)];
    // Nodes with no kept neighbors fuse the activation into the self
    // transform (exactly like the f64 path).
    let act = if has_children {
        ActKind::Identity
    } else {
        layer.activation
    };
    let d_out = layer.out_dim;
    let mut acc = vec![0.0f32; d_out];
    layer.self_lin[ty].forward(x_self, 1, &mut acc, act);
    let mut data: Vec<f32> = Vec::new();
    let mut msg: Vec<f32> = Vec::new();
    for (et, nbrs) in lists {
        if nbrs.is_empty() {
            continue;
        }
        let dst = graph.edge_type(relgraph_graph::EdgeTypeId(*et)).dst.0;
        let d = memo[&(dst, nbrs[0], level - 1)].len();
        data.clear();
        data.reserve(nbrs.len() * d);
        for &nbr in nbrs {
            data.extend_from_slice(&memo[&(dst, nbr, level - 1)]);
        }
        msg.clear();
        msg.resize(nbrs.len() * d_out, 0.0);
        layer.edge_lin[*et].forward(&data, nbrs.len(), &mut msg, ActKind::Identity);
        // Single-segment aggregation over the message rows, ascending
        // neighbor order (the tape's segment ops accumulate the same way).
        match layer.aggregation {
            Aggregation::Mean => {
                let inv = 1.0f32 / nbrs.len() as f32;
                for (j, a) in acc.iter_mut().enumerate() {
                    let mut s = 0.0f32;
                    for r in 0..nbrs.len() {
                        s += msg[r * d_out + j];
                    }
                    *a += s * inv;
                }
            }
            Aggregation::Sum => {
                for (j, a) in acc.iter_mut().enumerate() {
                    let mut s = 0.0f32;
                    for r in 0..nbrs.len() {
                        s += msg[r * d_out + j];
                    }
                    *a += s;
                }
            }
            Aggregation::Max => {
                for (j, a) in acc.iter_mut().enumerate() {
                    let mut s = f32::NEG_INFINITY;
                    for r in 0..nbrs.len() {
                        s = s.max(msg[r * d_out + j]);
                    }
                    *a += s;
                }
            }
        }
    }
    if has_children {
        for a in acc.iter_mut() {
            *a = apply_act_f32(layer.activation, *a);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{predict_nodes, NoCache};
    use crate::train::{train_node_model, TrainConfig};
    use relgraph_graph::{FeatureMatrix, HeteroGraphBuilder, Seed};

    const SECONDS_PER_DAY: i64 = 86_400;

    fn tiny_graph() -> (HeteroGraph, Vec<(Seed, f64)>) {
        let n_users = 24;
        let n_items = 8;
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("user", n_users);
        let i = b.add_node_type("item", n_items);
        let owns = b.add_edge_type("owns", u, i);
        let owned_by = b.add_edge_type("owned_by", i, u);
        let mut item_feats = FeatureMatrix::zeros(n_items, 2);
        for item in 0..n_items {
            item_feats.row_mut(item)[0] = (item as f32 * 0.7).sin();
            item_feats.row_mut(item)[1] = 1.0;
        }
        let mut labels = Vec::with_capacity(n_users);
        for user in 0..n_users {
            let mut total = 0.0;
            for k in 0..3 {
                let item = (user + k * 5) % n_items;
                total += item_feats.row(item)[0] as f64;
                let t = (k as i64 + 1) * SECONDS_PER_DAY;
                b.add_edge(owns, user, item, t);
                b.add_edge(owned_by, item, user, t);
            }
            labels.push(if total > 0.0 { 1.0 } else { 0.0 });
        }
        b.set_features(i, item_feats);
        b.set_features(u, FeatureMatrix::from_rows(n_users, 1, vec![1.0; n_users]));
        let g = b.finish().unwrap();
        let anchor = 50 * SECONDS_PER_DAY;
        let examples = labels
            .into_iter()
            .enumerate()
            .map(|(n, y)| {
                (
                    Seed {
                        node_type: NodeTypeId(0),
                        node: n,
                        time: anchor,
                    },
                    y,
                )
            })
            .collect();
        (g, examples)
    }

    #[test]
    fn f32_predictions_track_f64_within_tolerance() {
        let (g, examples) = tiny_graph();
        let cfg = TrainConfig {
            epochs: 4,
            fanouts: vec![3, 3],
            hidden_dim: 8,
            seed: 7,
            ..Default::default()
        };
        let model = train_node_model(&g, TaskKind::Binary, &examples, &[], &cfg).unwrap();
        let nodes: Vec<usize> = examples.iter().map(|&(s, _)| s.node).collect();
        let anchor = examples[0].0.time;
        let reference = predict_nodes(&model, &g, NodeTypeId(0), &nodes, anchor, &mut NoCache);
        let m32 = InferModel32::from_model(&model);
        let got = predict_nodes_f32(&m32, &g, NodeTypeId(0), &nodes, anchor, &mut NoCache32);
        assert_eq!(got.len(), reference.len());
        for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-3,
                "seed {i}: f32 {a} vs f64 {b} diverged past the §15 tolerance"
            );
        }
    }

    #[test]
    fn f32_warm_store_is_bit_identical_to_cold() {
        #[derive(Default)]
        struct MapStore(HashMap<Key, Vec<f32>>);
        impl EmbeddingStore32 for MapStore {
            fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f32>> {
                self.0.get(&(ty, node, level)).cloned()
            }
            fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f32>) {
                self.0.insert((ty, node, level), emb);
            }
        }
        let (g, examples) = tiny_graph();
        let cfg = TrainConfig {
            epochs: 3,
            fanouts: vec![3, 3],
            hidden_dim: 8,
            seed: 9,
            ..Default::default()
        };
        let model = train_node_model(&g, TaskKind::Binary, &examples, &[], &cfg).unwrap();
        let m32 = InferModel32::from_model(&model);
        let nodes: Vec<usize> = examples.iter().map(|&(s, _)| s.node).collect();
        let anchor = examples[0].0.time;
        let mut store = MapStore::default();
        let cold = predict_nodes_f32(&m32, &g, NodeTypeId(0), &nodes, anchor, &mut store);
        assert!(!store.0.is_empty());
        let warm = predict_nodes_f32(&m32, &g, NodeTypeId(0), &nodes, anchor, &mut store);
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 warm diverged from cold");
        }
    }

    #[test]
    fn precision_parses_and_round_trips_tags() {
        for p in [Precision::F64, Precision::F32, Precision::Q8] {
            assert_eq!(p.to_string().parse::<Precision>().unwrap(), p);
            assert_eq!(Precision::from_tag(p.tag()), Some(p));
        }
        assert!("f16".parse::<Precision>().is_err());
        assert_eq!(Precision::from_tag(9), None);
    }
}
