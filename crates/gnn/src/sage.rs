//! One heterogeneous GraphSAGE-style layer.
//!
//! For every node type `t`, the layer computes
//!
//! ```text
//! h'_t = act( H_t · W_self[t] + b[t] + Σ_{e: src=t} mean_{(v,u) ∈ e} (H_{dst(e)}[u] · W_e) )
//! ```
//!
//! i.e. a per-type self transform plus, for each edge type whose source is
//! `t`, the mean of linearly-transformed sampled-neighbor features. Types
//! or nodes without edges fall back to the self term alone.

use relgraph_graph::EdgeTypeMeta;
use relgraph_nn::{Activation, Binding, Linear, ParamSet};
use relgraph_tensor::{Graph, Var};

/// Neighborhood aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Degree-invariant mean (the default; counts are supplied as explicit
    /// features instead).
    Mean,
    /// Sum — degree-sensitive, can overshoot on hubs.
    Sum,
    /// Columnwise max — picks the strongest message per dimension.
    Max,
}

impl std::fmt::Display for Aggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Aggregation::Mean => "mean",
            Aggregation::Sum => "sum",
            Aggregation::Max => "max",
        };
        f.write_str(s)
    }
}

/// One heterogeneous message-passing layer.
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Per node type: self transform (input dim may differ per type).
    self_lin: Vec<Linear>,
    /// Per edge type: message transform from the dst type's input dim.
    edge_lin: Vec<Linear>,
    activation: Activation,
    aggregation: Aggregation,
    out_dim: usize,
}

impl SageLayer {
    /// Build a layer mapping per-type `in_dims` to a uniform `out_dim`.
    /// `edge_types` must be the graph's edge-type metadata, index-aligned
    /// with batch edge lists.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dims: &[usize],
        edge_types: &[EdgeTypeMeta],
        out_dim: usize,
        activation: Activation,
        aggregation: Aggregation,
        seed: u64,
    ) -> Self {
        let self_lin = in_dims
            .iter()
            .enumerate()
            .map(|(t, &d)| {
                Linear::new(
                    ps,
                    &format!("{name}.self{t}"),
                    d,
                    out_dim,
                    seed.wrapping_add(t as u64),
                )
            })
            .collect();
        let edge_lin = edge_types
            .iter()
            .enumerate()
            .map(|(e, meta)| {
                Linear::new(
                    ps,
                    &format!("{name}.edge{e}"),
                    in_dims[meta.dst.0],
                    out_dim,
                    seed.wrapping_add(1000 + e as u64),
                )
            })
            .collect();
        SageLayer {
            self_lin,
            edge_lin,
            activation,
            aggregation,
            out_dim,
        }
    }

    /// Output dimension (uniform across node types).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Self transform for node type `t` (per-node inference path).
    pub(crate) fn self_lin(&self, t: usize) -> &Linear {
        &self.self_lin[t]
    }

    /// Message transform for edge type `e` (per-node inference path).
    pub(crate) fn edge_lin(&self, e: usize) -> &Linear {
        &self.edge_lin[e]
    }

    /// All per-type self transforms (precision down-conversion path).
    pub(crate) fn self_lins(&self) -> &[Linear] {
        &self.self_lin
    }

    /// All per-edge-type message transforms (precision down-conversion
    /// path).
    pub(crate) fn edge_lins(&self) -> &[Linear] {
        &self.edge_lin
    }

    /// The layer's nonlinearity.
    pub(crate) fn activation(&self) -> Activation {
        self.activation
    }

    /// The layer's aggregation function.
    pub(crate) fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Forward over all node types. `inputs[t]` is the `n_t × in_dims[t]`
    /// representation of type `t`; `edges[e]` the `(src_local, dst_local)`
    /// pairs of edge type `e`. Returns the new per-type representations.
    pub fn forward(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        ps: &ParamSet,
        inputs: &[Var],
        edges: &[Vec<(u32, u32)>],
        edge_types: &[EdgeTypeMeta],
    ) -> Vec<Var> {
        let num_types = inputs.len();
        // Types that receive no messages can fuse the activation straight
        // into their self transform (one kernel pass); the rest apply it
        // after the aggregation add.
        let mut gets_messages = vec![false; num_types];
        for (e, meta) in edge_types.iter().enumerate() {
            if !edges[e].is_empty() {
                gets_messages[meta.src.0] = true;
            }
        }
        // Self term per type: fused linear(+bias)(+activation) kernels.
        let mut acc: Vec<Var> = (0..num_types)
            .map(|t| {
                let act = if gets_messages[t] {
                    Activation::Identity
                } else {
                    self.activation
                };
                self.self_lin[t].forward_act(g, binding, ps, inputs[t], act)
            })
            .collect();
        // Message term per edge type.
        for (e, meta) in edge_types.iter().enumerate() {
            let pairs = &edges[e];
            if pairs.is_empty() {
                continue;
            }
            let n_src = g.value(acc[meta.src.0]).rows();
            let dst_idx: Vec<usize> = pairs.iter().map(|&(_, d)| d as usize).collect();
            let src_idx: Vec<usize> = pairs.iter().map(|&(s, _)| s as usize).collect();
            let gathered = g
                .gather_rows(inputs[meta.dst.0], dst_idx)
                .expect("sampler guarantees indices in range");
            let msg = self.edge_lin[e].forward(g, binding, ps, gathered);
            let agg = match self.aggregation {
                Aggregation::Mean => g.segment_mean(msg, src_idx, n_src),
                Aggregation::Sum => g.segment_sum(msg, src_idx, n_src),
                Aggregation::Max => g.segment_max(msg, src_idx, n_src),
            }
            .expect("sampler guarantees segments in range");
            acc[meta.src.0] = g.add(acc[meta.src.0], agg);
        }
        acc.into_iter()
            .zip(gets_messages)
            .map(|(h, got)| {
                if got {
                    self.activation.apply(g, h)
                } else {
                    h // activation already fused into the self transform
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_graph::NodeTypeId;
    use relgraph_tensor::Tensor;

    fn edge_types() -> Vec<EdgeTypeMeta> {
        vec![
            EdgeTypeMeta {
                name: "u->o".into(),
                src: NodeTypeId(0),
                dst: NodeTypeId(1),
            },
            EdgeTypeMeta {
                name: "o->u".into(),
                src: NodeTypeId(1),
                dst: NodeTypeId(0),
            },
        ]
    }

    #[test]
    fn forward_shapes() {
        let mut ps = ParamSet::new();
        let layer = SageLayer::new(
            &mut ps,
            "l0",
            &[3, 5],
            &edge_types(),
            8,
            Activation::Relu,
            Aggregation::Mean,
            1,
        );
        assert_eq!(layer.out_dim(), 8);
        let mut g = Graph::new();
        let mut b = Binding::new();
        let users = g.constant(Tensor::zeros(2, 3));
        let orders = g.constant(Tensor::zeros(4, 5));
        let edges = vec![vec![(0, 0), (0, 1), (1, 3)], vec![(2, 1)]];
        let out = layer.forward(&mut g, &mut b, &ps, &[users, orders], &edges, &edge_types());
        assert_eq!(g.value(out[0]).shape(), (2, 8));
        assert_eq!(g.value(out[1]).shape(), (4, 8));
    }

    #[test]
    fn empty_edges_use_self_term_only() {
        let mut ps = ParamSet::new();
        let layer = SageLayer::new(
            &mut ps,
            "l0",
            &[3, 5],
            &edge_types(),
            4,
            Activation::Identity,
            Aggregation::Mean,
            2,
        );
        let mut g = Graph::new();
        let mut b = Binding::new();
        let users = g.constant(Tensor::full(1, 3, 1.0));
        let orders = g.constant(Tensor::zeros(0, 5));
        let edges = vec![vec![], vec![]];
        let out = layer.forward(&mut g, &mut b, &ps, &[users, orders], &edges, &edge_types());
        assert_eq!(g.value(out[0]).shape(), (1, 4));
        assert_eq!(g.value(out[1]).shape(), (0, 4));
        assert!(g.value(out[0]).all_finite());
    }

    #[test]
    fn neighbor_information_flows() {
        // Two identical users with different neighbors must get different
        // outputs; identical neighbors → identical outputs.
        let mut ps = ParamSet::new();
        let layer = SageLayer::new(
            &mut ps,
            "l0",
            &[2, 2],
            &edge_types(),
            4,
            Activation::Identity,
            Aggregation::Mean,
            3,
        );
        let run = |orders: Tensor, edges: Vec<(u32, u32)>| {
            let mut g = Graph::new();
            let mut b = Binding::new();
            let users = g.constant(Tensor::full(2, 2, 1.0));
            let ov = g.constant(orders);
            let out = layer.forward(
                &mut g,
                &mut b,
                &ps,
                &[users, ov],
                &[edges, vec![]],
                &edge_types(),
            );
            g.value(out[0]).clone()
        };
        let o = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 5.0]]);
        let a = run(o.clone(), vec![(0, 0), (1, 1)]);
        assert_ne!(a.row(0), a.row(1), "different neighbors must differ");
        let b2 = run(o, vec![(0, 0), (1, 0)]);
        assert_eq!(b2.row(0), b2.row(1), "same neighbors must agree");
    }

    #[test]
    fn mean_aggregation_is_degree_invariant() {
        // A user with the same neighbor repeated twice equals one with it once.
        let mut ps = ParamSet::new();
        let layer = SageLayer::new(
            &mut ps,
            "l0",
            &[2, 2],
            &edge_types(),
            4,
            Activation::Identity,
            Aggregation::Mean,
            4,
        );
        let mut g = Graph::new();
        let mut b = Binding::new();
        let users = g.constant(Tensor::full(2, 2, 1.0));
        let orders = g.constant(Tensor::from_rows(&[&[3.0, -1.0]]));
        let edges = vec![vec![(0, 0), (0, 0), (1, 0)], vec![]];
        let out = layer.forward(&mut g, &mut b, &ps, &[users, orders], &edges, &edge_types());
        let h = g.value(out[0]);
        for j in 0..4 {
            assert!((h.get(0, j) - h.get(1, j)).abs() < 1e-12);
        }
    }
}
