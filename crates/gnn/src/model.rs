//! The full heterogeneous GNN: stacked SAGE layers + an MLP head over the
//! seed embeddings.

use relgraph_graph::EdgeTypeMeta;
use relgraph_nn::{Activation, Binding, Mlp, ParamSet};
use relgraph_tensor::{Graph, Var};

use crate::batch::Batch;
use crate::sage::{Aggregation, SageLayer};

/// Hyper-parameters of a [`HeteroGnn`].
#[derive(Debug, Clone)]
pub struct GnnConfig {
    /// Hidden width shared by all layers.
    pub hidden_dim: usize,
    /// Number of message-passing layers; must equal the sampler's hop
    /// count. Zero layers = MLP on raw seed features.
    pub layers: usize,
    /// Output dimension of the head (1 for binary/regression).
    pub out_dim: usize,
    /// Nonlinearity between layers and in the head.
    pub activation: Activation,
    /// Neighborhood aggregation function.
    pub aggregation: Aggregation,
    /// RNG seed for weight init.
    pub seed: u64,
}

impl Default for GnnConfig {
    fn default() -> Self {
        GnnConfig {
            hidden_dim: 32,
            layers: 2,
            out_dim: 1,
            activation: Activation::Relu,
            aggregation: Aggregation::Mean,
            seed: 17,
        }
    }
}

/// Stacked hetero-SAGE layers producing seed-entity outputs.
#[derive(Debug, Clone)]
pub struct HeteroGnn {
    layers: Vec<SageLayer>,
    head: Mlp,
    seed_type: usize,
    edge_types: Vec<EdgeTypeMeta>,
    config: GnnConfig,
    in_dims: Vec<usize>,
}

impl HeteroGnn {
    /// Construct for a graph with the given per-type input dims (as
    /// produced by [`crate::batch::input_dims`]) and edge types;
    /// `seed_type` is the node type the head reads.
    pub fn new(
        ps: &mut ParamSet,
        in_dims: &[usize],
        edge_types: &[EdgeTypeMeta],
        seed_type: usize,
        config: &GnnConfig,
    ) -> Self {
        let mut layers = Vec::with_capacity(config.layers);
        let mut dims: Vec<usize> = in_dims.to_vec();
        for l in 0..config.layers {
            let layer = SageLayer::new(
                ps,
                &format!("sage{l}"),
                &dims,
                edge_types,
                config.hidden_dim,
                config.activation,
                config.aggregation,
                config.seed.wrapping_add(31 * l as u64),
            );
            dims = vec![config.hidden_dim; in_dims.len()];
            layers.push(layer);
        }
        let head_in = if config.layers > 0 {
            config.hidden_dim
        } else {
            in_dims[seed_type]
        };
        let head = Mlp::new(
            ps,
            &[head_in, config.hidden_dim, config.out_dim],
            config.activation,
            config.seed.wrapping_add(9999),
        );
        HeteroGnn {
            layers,
            head,
            seed_type,
            edge_types: edge_types.to_vec(),
            config: config.clone(),
            in_dims: in_dims.to_vec(),
        }
    }

    /// The hyper-parameters this model was constructed with. Together with
    /// [`in_dims`](Self::in_dims), the edge types and the seed type, they
    /// fully determine the parameter registration order — which is what
    /// makes model snapshots (`ModelState`) reloadable.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// Per-node-type input feature dimensions the model was built for.
    pub fn in_dims(&self) -> &[usize] {
        &self.in_dims
    }

    /// The edge types the model was built for.
    pub fn edge_type_metas(&self) -> &[EdgeTypeMeta] {
        &self.edge_types
    }

    /// Number of message-passing layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The stacked layers (per-node inference path).
    pub(crate) fn layers(&self) -> &[SageLayer] {
        &self.layers
    }

    /// The MLP head (per-node inference path).
    pub(crate) fn head(&self) -> &Mlp {
        &self.head
    }

    /// Node type the head reads.
    pub(crate) fn seed_type(&self) -> usize {
        self.seed_type
    }

    /// Forward a batch to per-seed outputs (`num_seeds × out_dim`).
    pub fn forward(
        &self,
        g: &mut Graph,
        binding: &mut Binding,
        ps: &ParamSet,
        batch: &Batch,
    ) -> Var {
        let emb = self.embed(g, binding, ps, batch);
        self.head.forward(g, binding, ps, emb)
    }

    /// Forward a batch to per-seed embeddings *before* the head
    /// (`num_seeds × hidden` — or raw seed dim for a 0-layer model). Used
    /// by the two-tower recommender.
    pub fn embed(&self, g: &mut Graph, binding: &mut Binding, ps: &ParamSet, batch: &Batch) -> Var {
        let mut reps: Vec<Var> = batch
            .features
            .iter()
            .map(|t| g.constant_copied(t))
            .collect();
        for layer in &self.layers {
            reps = layer.forward(g, binding, ps, &reps, &batch.edges, &self.edge_types);
        }
        g.gather_rows(reps[self.seed_type], batch.seed_locals.clone())
            .expect("seed locals are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_graph::NodeTypeId;
    use relgraph_tensor::Tensor;

    fn edge_types() -> Vec<EdgeTypeMeta> {
        vec![EdgeTypeMeta {
            name: "e".into(),
            src: NodeTypeId(0),
            dst: NodeTypeId(1),
        }]
    }

    fn batch() -> Batch {
        Batch {
            features: vec![Tensor::full(3, 4, 0.5), Tensor::full(5, 6, -0.2)],
            edges: vec![vec![(0, 1), (1, 2), (2, 4)]],
            seed_type: NodeTypeId(0),
            seed_locals: vec![0, 2],
        }
    }

    #[test]
    fn forward_produces_one_row_per_seed() {
        let mut ps = ParamSet::new();
        let cfg = GnnConfig {
            hidden_dim: 8,
            layers: 2,
            ..Default::default()
        };
        let gnn = HeteroGnn::new(&mut ps, &[4, 6], &edge_types(), 0, &cfg);
        assert_eq!(gnn.num_layers(), 2);
        let mut g = Graph::new();
        let mut b = Binding::new();
        let out = gnn.forward(&mut g, &mut b, &ps, &batch());
        assert_eq!(g.value(out).shape(), (2, 1));
        assert!(g.value(out).all_finite());
    }

    #[test]
    fn zero_layer_model_is_feature_mlp() {
        let mut ps = ParamSet::new();
        let cfg = GnnConfig {
            hidden_dim: 8,
            layers: 0,
            ..Default::default()
        };
        let gnn = HeteroGnn::new(&mut ps, &[4, 6], &edge_types(), 0, &cfg);
        let mut g = Graph::new();
        let mut b = Binding::new();
        let out = gnn.forward(&mut g, &mut b, &ps, &batch());
        assert_eq!(g.value(out).shape(), (2, 1));
    }

    #[test]
    fn multi_class_head() {
        let mut ps = ParamSet::new();
        let cfg = GnnConfig {
            hidden_dim: 8,
            layers: 1,
            out_dim: 3,
            ..Default::default()
        };
        let gnn = HeteroGnn::new(&mut ps, &[4, 6], &edge_types(), 0, &cfg);
        let mut g = Graph::new();
        let mut b = Binding::new();
        let out = gnn.forward(&mut g, &mut b, &ps, &batch());
        assert_eq!(g.value(out).shape(), (2, 3));
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut ps = ParamSet::new();
        let cfg = GnnConfig {
            hidden_dim: 4,
            layers: 2,
            ..Default::default()
        };
        let gnn = HeteroGnn::new(&mut ps, &[4, 6], &edge_types(), 0, &cfg);
        let mut g = Graph::new();
        let mut b = Binding::new();
        let out = gnn.forward(&mut g, &mut b, &ps, &batch());
        let loss = g.mean_all(out);
        g.backward(loss).unwrap();
        b.accumulate_grads(&g, &mut ps);
        // The edge transform for the only edge type must receive gradient
        // (information flowed through the message path).
        let touched = ps.ids().filter(|&id| ps.grad(id).norm() > 0.0).count();
        assert!(
            touched > ps.len() / 2,
            "only {touched}/{} params got gradient",
            ps.len()
        );
    }
}
