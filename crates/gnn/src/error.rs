//! Error types for GNN training and inference.

use std::fmt;

use relgraph_tensor::TensorError;

/// Result alias for GNN operations.
pub type GnnResult<T> = Result<T, GnnError>;

/// Errors from GNN construction, training or prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum GnnError {
    /// Training set was empty or degenerate (e.g. one class only).
    DegenerateTrainingSet(String),
    /// Model/sampler configuration mismatch (e.g. layer count vs hops).
    ConfigMismatch(String),
    /// Numeric failure during training (non-finite loss).
    NumericFailure { epoch: usize },
    /// Underlying tensor error.
    Tensor(TensorError),
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::DegenerateTrainingSet(msg) => write!(f, "degenerate training set: {msg}"),
            GnnError::ConfigMismatch(msg) => write!(f, "configuration mismatch: {msg}"),
            GnnError::NumericFailure { epoch } => {
                write!(f, "non-finite loss encountered at epoch {epoch}")
            }
            GnnError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for GnnError {}

impl From<TensorError> for GnnError {
    fn from(e: TensorError) -> Self {
        GnnError::Tensor(e)
    }
}
