//! Per-node batch inference with cross-seed neighborhood deduplication.
//!
//! [`NodeModel::predict`](crate::NodeModel::predict) extracts one disjoint
//! subgraph per seed, so two seeds sharing most of their neighborhood pay
//! for it twice. This module evaluates the layer recursion *per node of the
//! full graph* instead: the hop-ℓ embedding of a node is a pure function of
//! `(node type, node, level, anchor)` — its inputs are the most recent
//! `fanouts[k-ℓ]` anchor-visible neighbors per edge type (the exact
//! recency rule the temporal sampler applies when it expands that node) —
//! so a node reached from many seeds is computed **once** per batch and its
//! embedding is shared. The same purity is what makes embeddings safe to
//! cache across batches: an [`EmbeddingStore`] (e.g. the serving engine's
//! LRU) short-circuits recomputation without ever changing a value, so
//! cache-warm and cache-cold runs are bit-identical by construction.
//!
//! Per-node evaluation agrees with the per-seed batched path up to kernel
//! dispatch: both accumulate in the same per-element order, but tensor
//! *shapes* differ (single-row matmuls here vs stacked batches there), and
//! the matmul kernel is chosen by shape — so predictions match
//! `NodeModel::predict` to ≤ 1e-9, not necessarily to the bit. For
//! non-uniform fanout schedules the per-node rule evaluates a node with the
//! fanout of its *level*, whereas a sampled subgraph reuses the edge list
//! from the hop at which the node was first reached; with the default
//! uniform fanouts the two coincide.

use std::collections::{HashMap, HashSet};

use rayon::prelude::*;
use relgraph_graph::sampler::DEGREE_WINDOWS_DAYS;
use relgraph_graph::{HeteroGraph, NodeTypeId, SamplerConfig, ALWAYS_VISIBLE};
use relgraph_nn::{Activation, Binding};
use relgraph_obs as obs;
use relgraph_tensor::{Graph, Tensor};

use crate::sage::{Aggregation, SageLayer};
use crate::train::{NodeModel, TaskKind};

const SECONDS_PER_DAY: i64 = 86_400;

/// Seeds per tape arena in the parallel evaluation fan-out.
const EVAL_CHUNK: usize = 64;

/// An external cache of per-node embeddings keyed `(node type, node,
/// level)`. All entries are implicitly relative to one anchor time — the
/// owner must flush (or key) the store when the anchor changes, and must
/// evict entries whose ℓ-hop neighborhood was touched by an ingest delta.
///
/// `Send` is part of the contract: stores are owned by per-shard serving
/// worker threads, so an implementation must be movable across threads
/// (it is never *shared* — each shard owns its slice exclusively).
pub trait EmbeddingStore: Send {
    /// Cached embedding, if present (may update recency bookkeeping).
    fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f64>>;
    /// Offer a freshly computed embedding to the cache.
    fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f64>);
}

/// A store that caches nothing: every batch recomputes its full (deduped)
/// recursion. Useful as the cold-path reference in equivalence tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCache;

impl EmbeddingStore for NoCache {
    fn get(&mut self, _ty: usize, _node: usize, _level: usize) -> Option<Vec<f64>> {
        None
    }
    fn put(&mut self, _ty: usize, _node: usize, _level: usize, _emb: Vec<f64>) {}
}

type Key = (usize, usize, usize);

/// Predict for `nodes` (all of `node_type`, all anchored at `anchor`),
/// deduplicating shared neighborhoods across the batch and reusing any
/// embeddings `store` already holds. Returns predictions in input order on
/// the same scale as [`NodeModel::predict`].
///
/// # Panics
/// Panics if `node_type` differs from the type the model was trained on,
/// or if a node index is out of range for the graph.
pub fn predict_nodes(
    model: &NodeModel,
    graph: &HeteroGraph,
    node_type: NodeTypeId,
    nodes: &[usize],
    anchor: i64,
    store: &mut dyn EmbeddingStore,
) -> Vec<f64> {
    assert_eq!(
        node_type.0,
        model.gnn().seed_type(),
        "seed node type differs from the model's training entity type"
    );
    let t0 = obs::enabled().then(std::time::Instant::now);
    let k = model.gnn().num_layers();
    let cfg = model.sampler_cfg();

    // --- Discovery (top-down): collect the set of (type, node, level)
    // embeddings the batch needs, deduplicating across seeds and pruning
    // every subtree the store already covers.
    let mut levels: Vec<Vec<(usize, usize)>> = vec![Vec::new(); k + 1];
    let mut needed: HashSet<Key> = HashSet::new();
    let mut memo: HashMap<Key, Vec<f64>> = HashMap::new();
    let mut clists: HashMap<Key, Vec<(usize, Vec<usize>)>> = HashMap::new();
    let mut store_hits = 0u64;
    for &v in nodes {
        request(
            node_type.0,
            v,
            k,
            &mut levels,
            &mut needed,
            &mut memo,
            store,
            &mut store_hits,
        );
    }
    for level in (1..=k).rev() {
        let items = std::mem::take(&mut levels[level]);
        let fanout = cfg.fanouts[k - level];
        for &(ty, node) in &items {
            let lists = child_lists(graph, cfg, ty, node, fanout, anchor);
            request(
                ty,
                node,
                level - 1,
                &mut levels,
                &mut needed,
                &mut memo,
                store,
                &mut store_hits,
            );
            for (et, nbrs) in &lists {
                let dst = graph.edge_type(relgraph_graph::EdgeTypeId(*et)).dst.0;
                for &nbr in nbrs {
                    request(
                        dst,
                        nbr,
                        level - 1,
                        &mut levels,
                        &mut needed,
                        &mut memo,
                        store,
                        &mut store_hits,
                    );
                }
            }
            clists.insert((ty, node, level), lists);
        }
        levels[level] = items;
    }

    // --- Evaluation (bottom-up): each level's nodes are independent given
    // the level below, so they fan out across threads in fixed-size chunks,
    // one reusable tape arena per chunk. Results merge in worklist order.
    if !levels[0].is_empty() {
        let chunks: Vec<&[(usize, usize)]> = levels[0].chunks(EVAL_CHUNK).collect();
        let rows: Vec<Vec<Vec<f64>>> = chunks
            .par_iter()
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&(ty, node)| feature_row(graph, cfg, ty, node, anchor))
                    .collect()
            })
            .collect();
        for (&(ty, node), row) in levels[0].iter().zip(rows.into_iter().flatten()) {
            memo.insert((ty, node, 0), row);
        }
    }
    for (level, level_nodes) in levels.iter().enumerate().skip(1) {
        if level_nodes.is_empty() {
            continue;
        }
        let layer = &model.gnn().layers()[level - 1];
        let chunks: Vec<&[(usize, usize)]> = level_nodes.chunks(EVAL_CHUNK).collect();
        let embs: Vec<Vec<Vec<f64>>> = chunks
            .par_iter()
            .map(|chunk| {
                let mut g = Graph::new();
                let mut b = Binding::new();
                chunk
                    .iter()
                    .map(|&(ty, node)| {
                        g.reset();
                        b.reset();
                        eval_node(
                            &mut g, &mut b, model, graph, layer, &memo, &clists, ty, node, level,
                        )
                    })
                    .collect()
            })
            .collect();
        for (&(ty, node), emb) in level_nodes.iter().zip(embs.into_iter().flatten()) {
            memo.insert((ty, node, level), emb);
        }
    }

    // Offer every fresh embedding to the store, bottom level first and in
    // worklist order (deterministic LRU recency).
    for (level, level_nodes) in levels.iter().enumerate() {
        for &(ty, node) in level_nodes {
            store.put(ty, node, level, memo[&(ty, node, level)].clone());
        }
    }

    // --- Head: per-seed MLP over the top-level embedding.
    let (label_mean, label_std) = model.label_scale();
    let chunks: Vec<&[usize]> = nodes.chunks(EVAL_CHUNK).collect();
    let preds: Vec<Vec<f64>> = chunks
        .par_iter()
        .map(|chunk| {
            let mut g = Graph::new();
            let mut b = Binding::new();
            chunk
                .iter()
                .map(|&v| {
                    g.reset();
                    b.reset();
                    let emb = &memo[&(node_type.0, v, k)];
                    let x = g.constant(Tensor::from_vec(1, emb.len(), emb.clone()));
                    let out = model.gnn().head().forward(&mut g, &mut b, model.ps(), x);
                    let y = g.value(out).get(0, 0);
                    match model.task() {
                        TaskKind::Binary => 1.0 / (1.0 + (-y).exp()),
                        TaskKind::Regression => y * label_std + label_mean,
                    }
                })
                .collect()
        })
        .collect();

    if let Some(t0) = t0 {
        obs::add("gnn.infer.seeds", nodes.len() as u64);
        obs::add("gnn.infer.evals", needed.len() as u64);
        obs::add("gnn.infer.store_hits", store_hits);
        obs::record_ns("gnn.infer", t0.elapsed().as_nanos() as u64);
    }
    preds.into_iter().flatten().collect()
}

/// Register `(ty, node, level)` as needed unless it is already memoized,
/// queued, or available from the store.
#[allow(clippy::too_many_arguments)]
fn request(
    ty: usize,
    node: usize,
    level: usize,
    levels: &mut [Vec<(usize, usize)>],
    needed: &mut HashSet<Key>,
    memo: &mut HashMap<Key, Vec<f64>>,
    store: &mut dyn EmbeddingStore,
    store_hits: &mut u64,
) {
    let key = (ty, node, level);
    if memo.contains_key(&key) || needed.contains(&key) {
        return;
    }
    if let Some(emb) = store.get(ty, node, level) {
        *store_hits += 1;
        memo.insert(key, emb);
        return;
    }
    needed.insert(key);
    levels[level].push((ty, node));
}

/// The node's kept neighbors per edge type: the most recent `fanout`
/// anchor-visible out-neighbors, in ascending-time (slice) order — exactly
/// what the temporal sampler keeps when it expands this node. Shared with
/// the `f32` inference path (`infer32`), which must walk the identical
/// neighborhoods.
pub(crate) fn child_lists(
    graph: &HeteroGraph,
    cfg: &SamplerConfig,
    ty: usize,
    node: usize,
    fanout: usize,
    anchor: i64,
) -> Vec<(usize, Vec<usize>)> {
    let mut out = Vec::new();
    for &et in graph.edge_types_from(NodeTypeId(ty)) {
        let meta = graph.edge_type(et);
        let (visible, _) = if cfg.temporal {
            graph.visible_slices(et, node, anchor)
        } else {
            graph.neighbor_slices(et, node)
        };
        let start = visible.len().saturating_sub(fanout);
        let mut nbrs = Vec::with_capacity(visible.len() - start);
        for &nbr in &visible[start..] {
            let nbr = nbr as usize;
            if cfg.temporal && graph.node_time(meta.dst, nbr) > anchor {
                continue;
            }
            nbrs.push(nbr);
        }
        out.push((et.0, nbrs));
    }
    out
}

/// The level-0 input row for a node — identical (bitwise) to the row
/// [`build_batch`](crate::batch::build_batch) produces for it. Shared with
/// the `f32` inference path, which narrows it once per node.
pub(crate) fn feature_row(
    graph: &HeteroGraph,
    cfg: &SamplerConfig,
    ty: usize,
    node: usize,
    anchor: i64,
) -> Vec<f64> {
    let tyid = NodeTypeId(ty);
    let raw = graph.features(tyid);
    let nw = DEGREE_WINDOWS_DAYS.len();
    let mut row = vec![0.0; raw.dim() + 2 + graph.num_edge_types() * nw];
    for (j, &x) in raw.row(node).iter().enumerate() {
        row[j] = x as f64;
    }
    let base = raw.dim();
    let nt = graph.node_time(tyid, node);
    if nt == ALWAYS_VISIBLE {
        row[base + 1] = 1.0;
    } else {
        let age_days = ((anchor - nt).max(0)) as f64 / SECONDS_PER_DAY as f64;
        row[base] = (1.0 + age_days).ln();
    }
    if cfg.degree_features {
        for &et in graph.edge_types_from(tyid) {
            for (w, &days) in DEGREE_WINDOWS_DAYS.iter().enumerate() {
                let hi = if cfg.temporal { anchor } else { i64::MAX };
                let lo = if days == 0 {
                    i64::MIN
                } else {
                    hi.saturating_sub(days * SECONDS_PER_DAY)
                };
                let deg = graph.degree_between(et, node, lo, hi) as u32;
                row[base + 2 + et.0 * nw + w] = (1.0 + deg as f64).ln();
            }
        }
    }
    row
}

/// One SAGE layer applied to one node: fused self transform, plus one
/// message matmul + segment aggregation per edge type with kept neighbors,
/// in ascending edge-type order — the per-element accumulation order of the
/// batched layer forward.
#[allow(clippy::too_many_arguments)]
fn eval_node(
    g: &mut Graph,
    b: &mut Binding,
    model: &NodeModel,
    graph: &HeteroGraph,
    layer: &SageLayer,
    memo: &HashMap<Key, Vec<f64>>,
    clists: &HashMap<Key, Vec<(usize, Vec<usize>)>>,
    ty: usize,
    node: usize,
    level: usize,
) -> Vec<f64> {
    let lists = &clists[&(ty, node, level)];
    let has_children = lists.iter().any(|(_, nbrs)| !nbrs.is_empty());
    let x_self = &memo[&(ty, node, level - 1)];
    let x = g.constant(Tensor::from_vec(1, x_self.len(), x_self.clone()));
    // Nodes with no kept neighbors fuse the activation into the self
    // transform (the batched layer does the same per node type).
    let act = if has_children {
        Activation::Identity
    } else {
        layer.activation()
    };
    let mut acc = layer.self_lin(ty).forward_act(g, b, model.ps(), x, act);
    for (et, nbrs) in lists {
        if nbrs.is_empty() {
            continue;
        }
        let dst = graph.edge_type(relgraph_graph::EdgeTypeId(*et)).dst.0;
        let d = memo[&(dst, nbrs[0], level - 1)].len();
        let mut data = Vec::with_capacity(nbrs.len() * d);
        for &nbr in nbrs {
            data.extend_from_slice(&memo[&(dst, nbr, level - 1)]);
        }
        let stacked = g.constant(Tensor::from_vec(nbrs.len(), d, data));
        let msg = layer.edge_lin(*et).forward(g, b, model.ps(), stacked);
        let agg = match layer.aggregation() {
            Aggregation::Mean => g.segment_mean(msg, vec![0; nbrs.len()], 1),
            Aggregation::Sum => g.segment_sum(msg, vec![0; nbrs.len()], 1),
            Aggregation::Max => g.segment_max(msg, vec![0; nbrs.len()], 1),
        }
        .expect("single segment is always in range");
        acc = g.add(acc, agg);
    }
    if has_children {
        acc = layer.activation().apply(g, acc);
    }
    g.value(acc).row(0).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train_node_model, TrainConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use relgraph_graph::{FeatureMatrix, HeteroGraphBuilder, Seed};

    /// Users share items (overlapping neighborhoods) with creation times,
    /// so temporal visibility and degree windows are all exercised.
    fn shared_item_graph(n_users: usize, seed: u64) -> (HeteroGraph, Vec<(Seed, f64)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_items = (n_users / 2).max(4);
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("user", n_users);
        let i = b.add_node_type("item", n_items);
        let owns = b.add_edge_type("owns", u, i);
        let owned_by = b.add_edge_type("owned_by", i, u);
        let mut item_feats = FeatureMatrix::zeros(n_items, 2);
        let mut item_times = vec![0i64; n_items];
        for (item, time) in item_times.iter_mut().enumerate() {
            item_feats.row_mut(item)[0] = rng.gen_range(-1.0f64..1.0) as f32;
            item_feats.row_mut(item)[1] = 1.0;
            *time = rng.gen_range(0..50) * SECONDS_PER_DAY;
        }
        let mut labels = Vec::with_capacity(n_users);
        for user in 0..n_users {
            let mut total = 0.0;
            for k in 0..3 {
                // Deliberate overlap: consecutive users share items.
                let item = (user + k * 7) % n_items;
                total += item_feats.row(item)[0] as f64;
                let t = item_times[item] + (k as i64 + 1) * SECONDS_PER_DAY;
                b.add_edge(owns, user, item, t);
                b.add_edge(owned_by, item, user, t);
            }
            labels.push(if total > 0.0 { 1.0 } else { 0.0 });
        }
        b.set_node_times(i, item_times);
        b.set_features(i, item_feats);
        b.set_features(u, FeatureMatrix::from_rows(n_users, 1, vec![1.0; n_users]));
        let g = b.finish().unwrap();
        let anchor = 100 * SECONDS_PER_DAY;
        let examples = labels
            .into_iter()
            .enumerate()
            .map(|(n, y)| {
                (
                    Seed {
                        node_type: NodeTypeId(0),
                        node: n,
                        time: anchor,
                    },
                    y,
                )
            })
            .collect();
        (g, examples)
    }

    fn model_for(g: &HeteroGraph, examples: &[(Seed, f64)]) -> NodeModel {
        let cfg = TrainConfig {
            epochs: 6,
            fanouts: vec![4, 4],
            hidden_dim: 8,
            seed: 3,
            ..Default::default()
        };
        train_node_model(g, TaskKind::Binary, examples, &[], &cfg).unwrap()
    }

    #[test]
    fn matches_per_seed_prediction_closely() {
        let (g, examples) = shared_item_graph(40, 1);
        let model = model_for(&g, &examples);
        let seeds: Vec<Seed> = examples.iter().map(|&(s, _)| s).collect();
        let reference = model.predict(&g, &seeds);
        let nodes: Vec<usize> = seeds.iter().map(|s| s.node).collect();
        let got = predict_nodes(
            &model,
            &g,
            NodeTypeId(0),
            &nodes,
            seeds[0].time,
            &mut NoCache,
        );
        assert_eq!(got.len(), reference.len());
        for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "seed {i}: per-node {a} vs per-seed {b}"
            );
        }
    }

    #[test]
    fn store_reuse_is_bit_identical() {
        // A naive unbounded store: a second batch served entirely from the
        // cache must reproduce the cold predictions bit for bit.
        #[derive(Default)]
        struct MapStore(HashMap<Key, Vec<f64>>);
        impl EmbeddingStore for MapStore {
            fn get(&mut self, ty: usize, node: usize, level: usize) -> Option<Vec<f64>> {
                self.0.get(&(ty, node, level)).cloned()
            }
            fn put(&mut self, ty: usize, node: usize, level: usize, emb: Vec<f64>) {
                self.0.insert((ty, node, level), emb);
            }
        }
        let (g, examples) = shared_item_graph(30, 2);
        let model = model_for(&g, &examples);
        let nodes: Vec<usize> = examples.iter().map(|&(s, _)| s.node).collect();
        let anchor = examples[0].0.time;
        let mut store = MapStore::default();
        let cold = predict_nodes(&model, &g, NodeTypeId(0), &nodes, anchor, &mut store);
        assert!(!store.0.is_empty(), "store should have been populated");
        let warm = predict_nodes(&model, &g, NodeTypeId(0), &nodes, anchor, &mut store);
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.to_bits(), b.to_bits(), "warm diverged from cold");
        }
        // Partial caches (only some levels retained) must not change values
        // either.
        let mut partial = MapStore::default();
        for (&(ty, node, level), emb) in store.0.iter() {
            if (ty + node) % 3 == 0 {
                partial.0.insert((ty, node, level), emb.clone());
            }
        }
        let mixed = predict_nodes(&model, &g, NodeTypeId(0), &nodes, anchor, &mut partial);
        for (a, b) in cold.iter().zip(&mixed) {
            assert_eq!(a.to_bits(), b.to_bits(), "partial-cache run diverged");
        }
    }

    #[test]
    fn batch_deduplicates_shared_neighborhoods() {
        let (g, examples) = shared_item_graph(40, 4);
        let model = model_for(&g, &examples);
        let nodes: Vec<usize> = examples.iter().map(|&(s, _)| s.node).collect();
        let anchor = examples[0].0.time;
        // Per-seed sampling visits ~|seeds| * (1 + 3 + 9) nodes; the deduped
        // recursion can touch at most every (node, level) pair once.
        let k = model.gnn().num_layers();
        let max_unique: usize = (0..=k)
            .map(|_| g.num_nodes(NodeTypeId(0)) + g.num_nodes(NodeTypeId(1)))
            .sum();
        // Duplicate the request list: identical predictions, no extra work.
        let doubled: Vec<usize> = nodes.iter().chain(nodes.iter()).copied().collect();
        let preds = predict_nodes(&model, &g, NodeTypeId(0), &doubled, anchor, &mut NoCache);
        assert_eq!(preds.len(), doubled.len());
        for (a, b) in preds[..nodes.len()].iter().zip(&preds[nodes.len()..]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(max_unique > 0);
    }
}
