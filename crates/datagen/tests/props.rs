//! Property-based tests for the dataset generators: every generated
//! database, under any small configuration, must be referentially intact,
//! deterministic and temporally bounded.

use proptest::prelude::*;
use relgraph_datagen::{
    generate_clinic, generate_ecommerce, generate_forum, ClinicConfig, EcommerceConfig, ForumConfig,
};
use relgraph_store::SECONDS_PER_DAY;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ecommerce_valid_for_any_config(
        seed in 0u64..1000,
        customers in 10usize..60,
        products in 5usize..25,
        horizon in 60i64..240,
    ) {
        let cfg = EcommerceConfig {
            seed,
            customers,
            products,
            horizon_days: horizon,
            ..Default::default()
        };
        let db = generate_ecommerce(&cfg).unwrap();
        prop_assert!(db.validate().is_ok());
        prop_assert_eq!(db.table("customers").unwrap().len(), customers);
        prop_assert_eq!(db.table("products").unwrap().len(), products);
        // Times bounded by the horizon (+5 days of review lag).
        let (lo, hi) = db.time_span().unwrap();
        prop_assert!(lo >= 0);
        prop_assert!(hi <= (horizon + 5) * SECONDS_PER_DAY);
        // Deterministic.
        let again = generate_ecommerce(&cfg).unwrap();
        prop_assert_eq!(db.total_rows(), again.total_rows());
    }

    #[test]
    fn forum_valid_for_any_config(seed in 0u64..1000, users in 10usize..60) {
        let cfg = ForumConfig { seed, users, ..Default::default() };
        let db = generate_forum(&cfg).unwrap();
        prop_assert!(db.validate().is_ok());
        prop_assert_eq!(db.table("users").unwrap().len(), users);
        let (lo, hi) = db.time_span().unwrap();
        prop_assert!(lo >= 0 && hi <= cfg.horizon_days * SECONDS_PER_DAY);
    }

    #[test]
    fn clinic_valid_for_any_config(seed in 0u64..1000, patients in 10usize..60) {
        let cfg = ClinicConfig { seed, patients, ..Default::default() };
        let db = generate_clinic(&cfg).unwrap();
        prop_assert!(db.validate().is_ok());
        prop_assert_eq!(db.table("patients").unwrap().len(), patients);
        // Every prescription's visit predates-or-equals the prescription.
        let visits = db.table("visits").unwrap();
        let rx = db.table("prescriptions").unwrap();
        for i in 0..rx.len().min(100) {
            let vid = rx.value_by_name(i, "visit_id").unwrap();
            let vrow = visits.row_by_key(&vid).unwrap();
            prop_assert!(visits.row_timestamp(vrow).unwrap() <= rx.row_timestamp(i).unwrap());
        }
    }

    #[test]
    fn different_seeds_differ(seed in 0u64..1000) {
        let a = generate_ecommerce(&EcommerceConfig {
            seed,
            customers: 30,
            products: 10,
            ..Default::default()
        })
        .unwrap();
        let b = generate_ecommerce(&EcommerceConfig {
            seed: seed + 1,
            customers: 30,
            products: 10,
            ..Default::default()
        })
        .unwrap();
        // Same schema, (almost surely) different event streams.
        prop_assert_eq!(a.table_count(), b.table_count());
        prop_assert_ne!(
            (a.table("orders").unwrap().len(), a.time_span()),
            (b.table("orders").unwrap().len(), b.time_span())
        );
    }
}
