//! Clinical dataset generator: patients / visits / prescriptions.
//!
//! Planted signal: each patient has a latent chronic-condition score that
//! drives visit frequency and severity; certain drugs carry a fixed risk
//! factor that raises the *future* visit (readmission) rate. The drug-risk
//! signal is only reachable through the visit → prescription hop, so
//! 2-hop models have an edge over flat patient features.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgraph_store::{DataType, Database, Row, StoreResult, TableSchema, Timestamp, Value};

use crate::util::{normal_with, poisson, uniform_time, SECONDS_PER_DAY};

const COHORTS: [&str; 4] = ["1950s", "1970s", "1990s", "2000s"];
const DEPTS: [&str; 5] = ["cardio", "ortho", "neuro", "general", "oncology"];
/// Drug names with their planted risk factors (probability-scale boosts).
const DRUGS: [(&str, f64); 8] = [
    ("anticoagulant_x", 0.9),
    ("opioid_z", 0.8),
    ("steroid_q", 0.6),
    ("statin_a", 0.2),
    ("betablocker_b", 0.25),
    ("antibiotic_c", 0.1),
    ("antihistamine_d", 0.05),
    ("vitamin_e", 0.0),
];

/// Configuration for [`generate_clinic`].
#[derive(Debug, Clone)]
pub struct ClinicConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of patients.
    pub patients: usize,
    /// Simulated horizon in days.
    pub horizon_days: i64,
    /// Base visits/day per unit chronic load.
    pub base_visit_rate: f64,
}

impl Default for ClinicConfig {
    fn default() -> Self {
        ClinicConfig {
            seed: 23,
            patients: 400,
            horizon_days: 540,
            base_visit_rate: 0.008,
        }
    }
}

/// Build the clinic schema (no rows).
pub fn clinic_schema(db: &mut Database) -> StoreResult<()> {
    db.create_table(
        TableSchema::builder("patients")
            .column("patient_id", DataType::Int)
            .column("registered_at", DataType::Timestamp)
            .column("birth_cohort", DataType::Text)
            .primary_key("patient_id")
            .time_column("registered_at")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("visits")
            .column("visit_id", DataType::Int)
            .column("patient_id", DataType::Int)
            .column("admitted_at", DataType::Timestamp)
            .column("severity", DataType::Float)
            .column("dept", DataType::Text)
            .primary_key("visit_id")
            .time_column("admitted_at")
            .foreign_key("patient_id", "patients")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("prescriptions")
            .column("rx_id", DataType::Int)
            .column("visit_id", DataType::Int)
            .column("prescribed_at", DataType::Timestamp)
            .column("drug", DataType::Text)
            .column("dose", DataType::Float)
            .primary_key("rx_id")
            .time_column("prescribed_at")
            .foreign_key("visit_id", "visits")
            .build()?,
    )?;
    Ok(())
}

/// Generate a synthetic clinical database.
pub fn generate_clinic(cfg: &ClinicConfig) -> StoreResult<Database> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("clinic");
    clinic_schema(&mut db)?;
    let horizon: Timestamp = cfg.horizon_days * SECONDS_PER_DAY;

    let mut registered = Vec::with_capacity(cfg.patients);
    let mut chronic = Vec::with_capacity(cfg.patients);
    for pid in 0..cfg.patients {
        let t = uniform_time(&mut rng, 0, horizon / 2);
        let c = 1.0 / (1.0 + (-normal_with(&mut rng, 0.0, 1.0)).exp());
        registered.push(t);
        chronic.push(c);
        db.insert(
            "patients",
            Row::new()
                .push(pid as i64)
                .push(Value::Timestamp(t))
                .push(COHORTS[rng.gen_range(0..COHORTS.len())]),
        )?;
    }

    let mut visit_id: i64 = 0;
    let mut rx_id: i64 = 0;
    let block_days = 30i64;
    let recent_window = 35 * SECONDS_PER_DAY;
    for pid in 0..cfg.patients {
        // Prescriptions from the last 90 days drive the near-future visit
        // rate: readmission risk is a *recent* relational signal (which
        // drug, two FK hops from the patient), not an accumulated count —
        // visit-history aggregates cannot tell a risky prescription from a
        // benign one.
        let mut recent_rx: Vec<(Timestamp, f64)> = Vec::new();
        let mut t = registered[pid];
        while t < horizon {
            let block_end = (t + block_days * SECONDS_PER_DAY).min(horizon);
            let days = (block_end - t) as f64 / SECONDS_PER_DAY as f64;
            recent_rx.retain(|&(rt, _)| rt > t - recent_window);
            let risk_boost = if recent_rx.is_empty() {
                1.0
            } else {
                let mean_risk: f64 =
                    recent_rx.iter().map(|&(_, r)| r).sum::<f64>() / recent_rx.len() as f64;
                1.0 + 5.0 * mean_risk
            };
            let lambda = cfg.base_visit_rate * (0.5 + 2.5 * chronic[pid]) * risk_boost * days;
            let n_visits = poisson(&mut rng, lambda);
            for _ in 0..n_visits {
                let admitted = uniform_time(&mut rng, t, block_end);
                let severity =
                    (0.25 + 0.6 * chronic[pid] + normal_with(&mut rng, 0.0, 0.15)).clamp(0.0, 1.0);
                db.insert(
                    "visits",
                    Row::new()
                        .push(visit_id)
                        .push(pid as i64)
                        .push(Value::Timestamp(admitted))
                        .push((severity * 1000.0).round() / 1000.0)
                        .push(DEPTS[rng.gen_range(0..DEPTS.len())]),
                )?;
                // Prescriptions: which drug is prescribed is *exogenous*
                // (uniform), so drug identity is pure relational signal —
                // two patients with identical visit/rx counts differ only
                // through the drug attribute two hops away.
                let n_rx = poisson(&mut rng, 1.2) as usize;
                for _ in 0..n_rx.min(4) {
                    let d = rng.gen_range(0..DRUGS.len());
                    let (drug, drug_risk) = DRUGS[d];
                    db.insert(
                        "prescriptions",
                        Row::new()
                            .push(rx_id)
                            .push(visit_id)
                            .push(Value::Timestamp(admitted))
                            .push(drug)
                            .push((normal_with(&mut rng, 1.0, 0.2).abs() * 100.0).round() / 100.0),
                    )?;
                    rx_id += 1;
                    recent_rx.push((admitted, drug_risk));
                }
                visit_id += 1;
            }
            t = block_end;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClinicConfig {
        ClinicConfig {
            patients: 60,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn generates_valid_database() {
        let db = generate_clinic(&small()).unwrap();
        assert_eq!(db.table("patients").unwrap().len(), 60);
        assert!(db.table("visits").unwrap().len() > 50, "too few visits");
        assert!(
            db.table("prescriptions").unwrap().len() > 50,
            "too few prescriptions"
        );
        db.validate().expect("referential integrity");
    }

    #[test]
    fn severity_bounded() {
        let db = generate_clinic(&small()).unwrap();
        let visits = db.table("visits").unwrap();
        let col = visits.column_by_name("severity").unwrap();
        for i in 0..col.len() {
            let s = col.get_f64(i).unwrap();
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_clinic(&small()).unwrap();
        let b = generate_clinic(&small()).unwrap();
        assert_eq!(a.total_rows(), b.total_rows());
    }

    #[test]
    fn prescriptions_share_visit_time() {
        let db = generate_clinic(&small()).unwrap();
        let visits = db.table("visits").unwrap();
        let rx = db.table("prescriptions").unwrap();
        for i in 0..rx.len().min(200) {
            let vid = rx.value_by_name(i, "visit_id").unwrap();
            let vrow = visits.row_by_key(&vid).unwrap();
            assert_eq!(rx.row_timestamp(i), visits.row_timestamp(vrow));
        }
    }
}
