//! Row sinks: where a generator's rows land.
//!
//! Generators emit rows in a deterministic order; a [`RowSink`] decides
//! what happens to each one. [`Database`] collects them in memory (the
//! classic path), [`DatabaseStreamWriter`] streams them straight to
//! columnar files on disk — that is the out-of-core path, whose peak
//! memory is the generator's own latent state plus the stream writer's
//! validity bitmaps, never the rows themselves. Both sinks see the exact
//! same row sequence, so an in-memory database and a streamed base
//! directory built from the same config are bit-identical.

use relgraph_store::{Database, DatabaseStreamWriter, Row, StoreResult};

/// Destination for generated rows.
pub trait RowSink {
    /// Accept one row for `table`. Rows arrive in generation order, which
    /// is deterministic per config.
    fn push_row(&mut self, table: &str, row: Row) -> StoreResult<()>;
}

impl RowSink for Database {
    fn push_row(&mut self, table: &str, row: Row) -> StoreResult<()> {
        self.insert(table, row).map(|_| ())
    }
}

impl RowSink for DatabaseStreamWriter {
    fn push_row(&mut self, table: &str, row: Row) -> StoreResult<()> {
        self.append(table, &row)
    }
}

#[cfg(test)]
mod tests {
    use relgraph_store::persist::snapshot::read_base;
    use relgraph_store::DatabaseStreamWriter;

    use crate::{generate_ecommerce, generate_ecommerce_into, EcommerceConfig};

    #[test]
    fn streamed_and_in_memory_are_bit_identical() {
        let cfg = EcommerceConfig {
            customers: 40,
            products: 16,
            seed: 5,
            ..Default::default()
        };
        let mem = generate_ecommerce(&cfg).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "relgraph-datagen-sink-{}-{:p}",
            std::process::id(),
            &cfg
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let schemas = mem.tables().iter().map(|t| t.schema().clone()).collect();
        let mut w = DatabaseStreamWriter::create(&dir, schemas).unwrap();
        generate_ecommerce_into(&cfg, &mut w).unwrap();
        w.finish().unwrap();
        let loaded = read_base(&dir, "ecommerce").unwrap();
        for (a, b) in mem.tables().iter().zip(loaded.tables()) {
            assert_eq!(a.len(), b.len(), "row count for `{}`", a.name());
            for i in 0..a.len() {
                assert_eq!(a.row(i), b.row(i), "row {i} of `{}`", a.name());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
