//! Sampling utilities shared by the generators (kept dependency-free beyond
//! `rand`: Poisson and normal variates are hand-rolled).

use rand::rngs::StdRng;
use rand::Rng;
use relgraph_store::{Timestamp, SECONDS_PER_DAY as DAY_SECS};

/// Seconds in one day (re-exported for generator configs).
pub const SECONDS_PER_DAY: i64 = DAY_SECS;

/// Standard normal variate via Box–Muller.
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal with mean and standard deviation.
pub fn normal_with(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

/// Log-normal variate `exp(N(mu, sigma))`.
pub fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    normal_with(rng, mu, sigma).exp()
}

/// Poisson variate. Knuth's method for small `lambda`, normal approximation
/// above 30 (adequate for workload generation).
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal_with(rng, lambda, lambda.sqrt());
        return x.max(0.0).round() as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Sample an index proportionally to `weights` (all non-negative; if the
/// total is zero the first index is returned).
pub fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Uniform timestamp in `[lo, hi)` (seconds).
pub fn uniform_time(rng: &mut StdRng, lo: Timestamp, hi: Timestamp) -> Timestamp {
    if hi <= lo {
        return lo;
    }
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_has_roughly_unit_moments() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_branch() {
        let mut r = rng();
        let n = 5_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 100.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), 0);
    }

    #[test]
    fn uniform_time_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let t = uniform_time(&mut r, 10, 20);
            assert!((10..20).contains(&t));
        }
        assert_eq!(uniform_time(&mut r, 5, 5), 5);
    }
}
