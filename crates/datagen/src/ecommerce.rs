//! E-commerce dataset generator: customers / products / orders / reviews.
//!
//! Planted signal (what a model must discover):
//!
//! * each customer has a latent *engagement* scalar driving their base
//!   order rate — recoverable from order history counts (1 hop);
//! * each product has a latent *quality* in `(0,1)`, observable only
//!   through review ratings left by **other** customers (a 2-hop signal:
//!   customer → product → reviews);
//! * buying high-quality / "hot"-category products boosts a customer's
//!   future order rate, so future activity depends on *attributes of
//!   neighbors*, not just own history.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgraph_store::{DataType, Database, Row, StoreResult, TableSchema, Timestamp, Value};

use crate::sink::RowSink;
use crate::util::{
    log_normal, normal_with, poisson, uniform_time, weighted_index, SECONDS_PER_DAY,
};

/// Product categories with fixed "hotness" multipliers (index-aligned).
const CATEGORIES: [&str; 8] = [
    "electronics",
    "books",
    "fashion",
    "home",
    "toys",
    "sports",
    "beauty",
    "grocery",
];
const HOTNESS: [f64; 8] = [1.5, 1.3, 1.1, 1.0, 0.9, 0.8, 0.7, 0.6];
const REGIONS: [&str; 4] = ["north", "south", "east", "west"];
const AGE_GROUPS: [&str; 4] = ["18-25", "26-40", "41-60", "60+"];
/// Order channels; each customer has a sticky preferred channel (the basis
/// of the MODE multiclass task).
const CHANNELS: [&str; 3] = ["web", "app", "store"];

/// Configuration for [`generate_ecommerce`].
#[derive(Debug, Clone)]
pub struct EcommerceConfig {
    /// RNG seed; everything is deterministic given the config.
    pub seed: u64,
    /// Number of customers.
    pub customers: usize,
    /// Number of products.
    pub products: usize,
    /// Simulated horizon in days.
    pub horizon_days: i64,
    /// Base per-day order rate per unit engagement.
    pub base_order_rate: f64,
    /// Probability an order receives a review.
    pub review_prob: f64,
}

impl Default for EcommerceConfig {
    fn default() -> Self {
        EcommerceConfig {
            seed: 7,
            customers: 500,
            products: 60,
            horizon_days: 360,
            base_order_rate: 0.04,
            review_prob: 0.35,
        }
    }
}

/// Build the e-commerce schema (no rows).
pub fn ecommerce_schema(db: &mut Database) -> StoreResult<()> {
    db.create_table(
        TableSchema::builder("customers")
            .column("customer_id", DataType::Int)
            .column("signup_time", DataType::Timestamp)
            .column("region", DataType::Text)
            .column("age_group", DataType::Text)
            .primary_key("customer_id")
            .time_column("signup_time")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("products")
            .column("product_id", DataType::Int)
            .column("category", DataType::Text)
            .column("price", DataType::Float)
            .column("listed_at", DataType::Timestamp)
            .primary_key("product_id")
            .time_column("listed_at")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("orders")
            .column("order_id", DataType::Int)
            .column("customer_id", DataType::Int)
            .column("product_id", DataType::Int)
            .column("quantity", DataType::Int)
            .column("amount", DataType::Float)
            .column("channel", DataType::Text)
            .column("placed_at", DataType::Timestamp)
            .primary_key("order_id")
            .time_column("placed_at")
            .foreign_key("customer_id", "customers")
            .foreign_key("product_id", "products")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("reviews")
            .column("review_id", DataType::Int)
            .column("customer_id", DataType::Int)
            .column("product_id", DataType::Int)
            .column("rating", DataType::Float)
            .column("written_at", DataType::Timestamp)
            .primary_key("review_id")
            .time_column("written_at")
            .foreign_key("customer_id", "customers")
            .foreign_key("product_id", "products")
            .build()?,
    )?;
    Ok(())
}

/// Generate a synthetic e-commerce database in memory.
pub fn generate_ecommerce(cfg: &EcommerceConfig) -> StoreResult<Database> {
    let mut db = Database::new("ecommerce");
    ecommerce_schema(&mut db)?;
    generate_ecommerce_into(cfg, &mut db)?;
    Ok(db)
}

/// Generate the e-commerce row stream into any [`RowSink`] — an in-memory
/// [`Database`] (what [`generate_ecommerce`] does) or a
/// [`relgraph_store::DatabaseStreamWriter`] writing columnar files
/// directly to disk. The row sequence is identical either way, so the two
/// destinations hold bit-identical data; the streaming path's memory high
/// water is the generator's latent per-customer/per-product state (a few
/// scalars each), independent of how many order/review rows it emits.
pub fn generate_ecommerce_into(cfg: &EcommerceConfig, sink: &mut impl RowSink) -> StoreResult<()> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let horizon: Timestamp = cfg.horizon_days * SECONDS_PER_DAY;

    // Products: latent quality drives review ratings and repeat purchasing.
    let mut product_category = Vec::with_capacity(cfg.products);
    let mut product_quality = Vec::with_capacity(cfg.products);
    let mut product_price = Vec::with_capacity(cfg.products);
    for pid in 0..cfg.products {
        let cat = rng.gen_range(0..CATEGORIES.len());
        let quality = 1.0 / (1.0 + (-normal_with(&mut rng, 0.0, 1.0)).exp());
        let price = log_normal(&mut rng, 3.0, 0.5);
        let listed = uniform_time(&mut rng, 0, horizon / 4);
        product_category.push(cat);
        product_quality.push(quality);
        product_price.push(price);
        sink.push_row(
            "products",
            Row::new()
                .push(pid as i64)
                .push(CATEGORIES[cat])
                .push((price * 100.0).round() / 100.0)
                .push(Value::Timestamp(listed)),
        )?;
    }

    // Customers with latent engagement and price preference.
    let mut signup = Vec::with_capacity(cfg.customers);
    let mut engagement = Vec::with_capacity(cfg.customers);
    let mut price_pref = Vec::with_capacity(cfg.customers);
    let mut cat_pref = Vec::with_capacity(cfg.customers);
    let mut channel_pref = Vec::with_capacity(cfg.customers);
    for cid in 0..cfg.customers {
        let t = uniform_time(&mut rng, 0, horizon * 6 / 10);
        let e = normal_with(&mut rng, 0.0, 0.8).exp().clamp(0.05, 10.0);
        signup.push(t);
        engagement.push(e);
        price_pref.push(log_normal(&mut rng, 3.0, 0.4));
        // A stable taste: which category this customer gravitates to. Taste
        // determines the recent-purchase mix and therefore churn risk — a
        // purely relational signal (categories are text attributes of
        // products two hops away).
        cat_pref.push(rng.gen_range(0..CATEGORIES.len()));
        channel_pref.push(rng.gen_range(0..CHANNELS.len()));
        sink.push_row(
            "customers",
            Row::new()
                .push(cid as i64)
                .push(Value::Timestamp(t))
                .push(REGIONS[rng.gen_range(0..REGIONS.len())])
                .push(AGE_GROUPS[rng.gen_range(0..AGE_GROUPS.len())]),
        )?;
    }

    // Orders + reviews: sequential simulation in 10-day blocks.
    //
    // While active, a customer orders at a stationary rate set by their
    // latent engagement (recoverable from history counts — 1-hop signal).
    // Each block they may *churn* permanently, with a hazard driven by the
    // category hotness and quality of their recent purchases. Imminent
    // churn is the planted relational signal: it is invisible to count/
    // recency features (the past looks identical up to the churn moment)
    // but readable from the attributes of recently-purchased products —
    // category at 2 hops, quality at 3 hops (other customers' reviews).
    let block_days = 10i64;
    let mut order_id: i64 = 0;
    let mut review_id: i64 = 0;
    let mut weights = vec![0.0; cfg.products];
    for cid in 0..cfg.customers {
        let mut recent: Vec<(f64, f64)> = Vec::new();
        let mut t = signup[cid];
        while t < horizon {
            let block_end = (t + block_days * SECONDS_PER_DAY).min(horizon);
            let days = (block_end - t) as f64 / SECONDS_PER_DAY as f64;
            if !recent.is_empty() {
                let n = recent.len() as f64;
                let mean_hot: f64 = recent.iter().map(|&(h, _)| h).sum::<f64>() / n;
                let mean_q: f64 = recent.iter().map(|&(_, q)| q).sum::<f64>() / n;
                let hazard =
                    (0.02 + 0.55 * (1.0 - mean_hot) + 0.35 * (0.5 - mean_q)).clamp(0.005, 0.75);
                if rng.gen_bool(hazard) {
                    break; // churned: no further orders, ever
                }
            }
            let lambda = cfg.base_order_rate * engagement[cid] * days;
            let n_orders = poisson(&mut rng, lambda);
            for _ in 0..n_orders {
                let placed = uniform_time(&mut rng, t, block_end);
                // Product choice: hot categories and prices near the
                // customer's preferred point are more likely.
                for (p, w) in weights.iter_mut().enumerate() {
                    let price_gap = (product_price[p].ln() - price_pref[cid].ln()).abs();
                    let taste = if product_category[p] == cat_pref[cid] {
                        4.0
                    } else {
                        1.0
                    };
                    *w = taste * (-price_gap).exp();
                }
                let p = weighted_index(&mut rng, &weights);
                let quantity = rng.gen_range(1..=3i64);
                let amount = product_price[p] * quantity as f64;
                // Sticky channel choice: the preferred channel ~60% of the
                // time, uniform otherwise.
                let channel = if rng.gen_bool(0.6) {
                    channel_pref[cid]
                } else {
                    rng.gen_range(0..CHANNELS.len())
                };
                sink.push_row(
                    "orders",
                    Row::new()
                        .push(order_id)
                        .push(cid as i64)
                        .push(p as i64)
                        .push(quantity)
                        .push((amount * 100.0).round() / 100.0)
                        .push(CHANNELS[channel])
                        .push(Value::Timestamp(placed)),
                )?;
                order_id += 1;
                recent.push((HOTNESS[product_category[p]], product_quality[p]));
                if recent.len() > 5 {
                    recent.remove(0);
                }
                if rng.gen_bool(cfg.review_prob) {
                    let rating = (1.0 + 4.0 * product_quality[p] + normal_with(&mut rng, 0.0, 0.7))
                        .clamp(1.0, 5.0);
                    let written = placed + rng.gen_range(1..=5) * SECONDS_PER_DAY;
                    sink.push_row(
                        "reviews",
                        Row::new()
                            .push(review_id)
                            .push(cid as i64)
                            .push(p as i64)
                            .push((rating * 10.0).round() / 10.0)
                            .push(Value::Timestamp(written)),
                    )?;
                    review_id += 1;
                }
            }
            t = block_end;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EcommerceConfig {
        EcommerceConfig {
            customers: 50,
            products: 20,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn generates_valid_database() {
        let db = generate_ecommerce(&small()).unwrap();
        assert_eq!(db.table("customers").unwrap().len(), 50);
        assert_eq!(db.table("products").unwrap().len(), 20);
        assert!(db.table("orders").unwrap().len() > 100, "too few orders");
        assert!(db.table("reviews").unwrap().len() > 10, "too few reviews");
        db.validate().expect("referential integrity");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_ecommerce(&small()).unwrap();
        let b = generate_ecommerce(&small()).unwrap();
        assert_eq!(
            a.table("orders").unwrap().len(),
            b.table("orders").unwrap().len()
        );
        assert_eq!(
            a.table("orders").unwrap().row(5).unwrap(),
            b.table("orders").unwrap().row(5).unwrap()
        );
        let c = generate_ecommerce(&EcommerceConfig {
            seed: 12,
            ..small()
        })
        .unwrap();
        assert_ne!(
            a.table("orders").unwrap().len(),
            c.table("orders").unwrap().len()
        );
    }

    #[test]
    fn orders_postdate_signup() {
        let db = generate_ecommerce(&small()).unwrap();
        let customers = db.table("customers").unwrap();
        let orders = db.table("orders").unwrap();
        for i in 0..orders.len() {
            let cid = orders.value_by_name(i, "customer_id").unwrap();
            let signup = customers
                .row_timestamp(customers.row_by_key(&cid).unwrap())
                .unwrap();
            let placed = orders.row_timestamp(i).unwrap();
            assert!(placed >= signup, "order before signup");
        }
    }

    #[test]
    fn timestamps_within_reasonable_horizon() {
        let cfg = small();
        let db = generate_ecommerce(&cfg).unwrap();
        let (lo, hi) = db.time_span().unwrap();
        assert!(lo >= 0);
        // Reviews may trail up to 5 days past the horizon.
        assert!(hi <= (cfg.horizon_days + 5) * SECONDS_PER_DAY);
    }

    #[test]
    fn ratings_bounded() {
        let db = generate_ecommerce(&small()).unwrap();
        let reviews = db.table("reviews").unwrap();
        let col = reviews.column_by_name("rating").unwrap();
        for i in 0..col.len() {
            let r = col.get_f64(i).unwrap();
            assert!((1.0..=5.0).contains(&r));
        }
    }

    #[test]
    fn engagement_spreads_order_counts() {
        // The planted heterogeneity should produce both light and heavy
        // buyers — otherwise the prediction tasks would be trivial.
        let db = generate_ecommerce(&small()).unwrap();
        let orders = db.table("orders").unwrap();
        let mut counts = std::collections::HashMap::new();
        let col = orders.column_by_name("customer_id").unwrap();
        for i in 0..col.len() {
            *counts.entry(col.get_i64(i).unwrap()).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let active = counts.len();
        assert!(max >= 10, "expected a heavy buyer, max={max}");
        assert!(
            active < 50 || counts.values().any(|&c| c <= 3),
            "expected light buyers"
        );
    }
}
