//! Social-forum dataset generator: users / follows / posts.
//!
//! Planted signal: each user has a latent activity level; the follow graph
//! forms by preferential attachment toward active users, and a user's
//! *future* posting rate is boosted by the mean activity of the users they
//! follow — a 2-hop signal (user → followee → followee's posts) that flat
//! entity features cannot see.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgraph_store::{DataType, Database, Row, StoreResult, TableSchema, Timestamp, Value};

use crate::util::{normal_with, poisson, uniform_time, weighted_index, SECONDS_PER_DAY};

const COUNTRIES: [&str; 5] = ["us", "de", "in", "br", "jp"];
const TOPICS: [&str; 6] = ["rust", "ml", "databases", "gaming", "music", "cooking"];

/// Configuration for [`generate_forum`].
#[derive(Debug, Clone)]
pub struct ForumConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of users.
    pub users: usize,
    /// Simulated horizon in days.
    pub horizon_days: i64,
    /// Mean follows per user.
    pub mean_follows: f64,
    /// Base posts/day per unit activity.
    pub base_post_rate: f64,
}

impl Default for ForumConfig {
    fn default() -> Self {
        ForumConfig {
            seed: 13,
            users: 400,
            horizon_days: 240,
            mean_follows: 4.0,
            base_post_rate: 0.05,
        }
    }
}

/// Build the forum schema (no rows).
pub fn forum_schema(db: &mut Database) -> StoreResult<()> {
    db.create_table(
        TableSchema::builder("users")
            .column("user_id", DataType::Int)
            .column("joined_at", DataType::Timestamp)
            .column("country", DataType::Text)
            .primary_key("user_id")
            .time_column("joined_at")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("follows")
            .column("follow_id", DataType::Int)
            .column("follower_id", DataType::Int)
            .column("followee_id", DataType::Int)
            .column("since", DataType::Timestamp)
            .primary_key("follow_id")
            .time_column("since")
            .foreign_key("follower_id", "users")
            .foreign_key("followee_id", "users")
            .build()?,
    )?;
    db.create_table(
        TableSchema::builder("posts")
            .column("post_id", DataType::Int)
            .column("user_id", DataType::Int)
            .column("posted_at", DataType::Timestamp)
            .column("topic", DataType::Text)
            .column("length", DataType::Int)
            .primary_key("post_id")
            .time_column("posted_at")
            .foreign_key("user_id", "users")
            .build()?,
    )?;
    Ok(())
}

/// Generate a synthetic forum database.
pub fn generate_forum(cfg: &ForumConfig) -> StoreResult<Database> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new("forum");
    forum_schema(&mut db)?;
    let horizon: Timestamp = cfg.horizon_days * SECONDS_PER_DAY;

    // Users with latent activity.
    let mut joined = Vec::with_capacity(cfg.users);
    let mut activity = Vec::with_capacity(cfg.users);
    for uid in 0..cfg.users {
        let t = uniform_time(&mut rng, 0, horizon / 2);
        let a = normal_with(&mut rng, 0.0, 1.0).exp().clamp(0.05, 12.0);
        joined.push(t);
        activity.push(a);
        db.insert(
            "users",
            Row::new()
                .push(uid as i64)
                .push(Value::Timestamp(t))
                .push(COUNTRIES[rng.gen_range(0..COUNTRIES.len())]),
        )?;
    }

    // Follows: preferential attachment toward active users; edge time is
    // after both endpoints joined.
    let mut follow_id: i64 = 0;
    let mut followee_activity_sum = vec![0.0f64; cfg.users];
    let mut followee_count = vec![0usize; cfg.users];
    for uid in 0..cfg.users {
        let n = poisson(&mut rng, cfg.mean_follows) as usize;
        let mut chosen = std::collections::HashSet::new();
        for _ in 0..n.min(cfg.users.saturating_sub(1)) {
            // Weight by activity so hubs emerge.
            let target = weighted_index(&mut rng, &activity);
            if target == uid || !chosen.insert(target) {
                continue;
            }
            let since = uniform_time(&mut rng, joined[uid].max(joined[target]), horizon);
            db.insert(
                "follows",
                Row::new()
                    .push(follow_id)
                    .push(uid as i64)
                    .push(target as i64)
                    .push(Value::Timestamp(since)),
            )?;
            follow_id += 1;
            followee_activity_sum[uid] += activity[target];
            followee_count[uid] += 1;
        }
    }

    // Posts: rate boosted by mean followee activity (the 2-hop signal).
    let mut post_id: i64 = 0;
    for uid in 0..cfg.users {
        let social = if followee_count[uid] > 0 {
            followee_activity_sum[uid] / followee_count[uid] as f64
        } else {
            0.0
        };
        let boost = 1.0 + 0.4 * (social / 2.0).min(2.0);
        let days = (horizon - joined[uid]) as f64 / SECONDS_PER_DAY as f64;
        let lambda = cfg.base_post_rate * activity[uid] * boost * days;
        let n_posts = poisson(&mut rng, lambda);
        for _ in 0..n_posts {
            let t = uniform_time(&mut rng, joined[uid], horizon);
            db.insert(
                "posts",
                Row::new()
                    .push(post_id)
                    .push(uid as i64)
                    .push(Value::Timestamp(t))
                    .push(TOPICS[rng.gen_range(0..TOPICS.len())])
                    .push(rng.gen_range(20..2000i64)),
            )?;
            post_id += 1;
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ForumConfig {
        ForumConfig {
            users: 60,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn generates_valid_database() {
        let db = generate_forum(&small()).unwrap();
        assert_eq!(db.table("users").unwrap().len(), 60);
        assert!(db.table("follows").unwrap().len() > 50);
        assert!(db.table("posts").unwrap().len() > 100);
        db.validate().expect("referential integrity");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_forum(&small()).unwrap();
        let b = generate_forum(&small()).unwrap();
        assert_eq!(
            a.table("posts").unwrap().len(),
            b.table("posts").unwrap().len()
        );
    }

    #[test]
    fn no_self_follows() {
        let db = generate_forum(&small()).unwrap();
        let follows = db.table("follows").unwrap();
        for i in 0..follows.len() {
            let a = follows.value_by_name(i, "follower_id").unwrap();
            let b = follows.value_by_name(i, "followee_id").unwrap();
            assert_ne!(a, b, "self-follow at row {i}");
        }
    }

    #[test]
    fn follow_postdates_both_joins() {
        let db = generate_forum(&small()).unwrap();
        let users = db.table("users").unwrap();
        let follows = db.table("follows").unwrap();
        for i in 0..follows.len() {
            let since = follows.row_timestamp(i).unwrap();
            for col in ["follower_id", "followee_id"] {
                let id = follows.value_by_name(i, col).unwrap();
                let joined = users.row_timestamp(users.row_by_key(&id).unwrap()).unwrap();
                assert!(since >= joined);
            }
        }
    }

    #[test]
    fn hubs_emerge() {
        let db = generate_forum(&small()).unwrap();
        let follows = db.table("follows").unwrap();
        let mut indeg = std::collections::HashMap::new();
        let col = follows.column_by_name("followee_id").unwrap();
        for i in 0..col.len() {
            *indeg.entry(col.get_i64(i).unwrap()).or_insert(0usize) += 1;
        }
        let max = indeg.values().copied().max().unwrap_or(0);
        assert!(
            max >= 5,
            "preferential attachment should create hubs, max in-degree {max}"
        );
    }
}
