//! # relgraph-datagen
//!
//! Seeded synthetic relational databases with *planted* temporal and
//! multi-hop signal, standing in for the production databases (RelBench
//! datasets) the paper's evaluation uses. See DESIGN.md §2 for the
//! substitution argument.
//!
//! Three domains, mirroring the paper's motivating applications:
//!
//! * [`ecommerce`] — customers / products / orders / reviews. Latent
//!   per-customer engagement drives order rates; latent product quality
//!   (observable only through *other* customers' reviews — a 2-hop signal)
//!   modulates repeat purchasing.
//! * [`forum`] — users / follows / posts. Posting activity diffuses over
//!   the follow graph: following active users raises future activity.
//! * [`clinic`] — patients / visits / prescriptions. Readmission risk
//!   combines a chronic latent with drug-risk signal reachable only through
//!   the visit→prescription hop.
//!
//! Every generator is deterministic given its config (seed included) and
//! produces a [`relgraph_store::Database`] that passes referential-integrity
//! validation.

pub mod clinic;
pub mod ecommerce;
pub mod forum;
pub mod sink;
pub mod util;

pub use clinic::{generate_clinic, ClinicConfig};
pub use ecommerce::{
    ecommerce_schema, generate_ecommerce, generate_ecommerce_into, EcommerceConfig,
};
pub use forum::{generate_forum, ForumConfig};
pub use sink::RowSink;
