//! Trivial baselines: class-prior / mean predictors and
//! popularity / co-visitation recommenders.

use std::collections::{HashMap, HashSet};

/// Predicts the training-set positive rate for every example.
#[derive(Debug, Clone)]
pub struct PriorClassifier {
    prior: f64,
}

impl PriorClassifier {
    /// Fit on binary labels.
    pub fn fit(y: &[f64]) -> Self {
        let prior = if y.is_empty() {
            0.5
        } else {
            y.iter().filter(|&&v| v > 0.5).count() as f64 / y.len() as f64
        };
        PriorClassifier { prior }
    }

    /// The constant probability.
    pub fn predict(&self, n: usize) -> Vec<f64> {
        vec![self.prior; n]
    }
}

/// Predicts the training-set mean for every example.
#[derive(Debug, Clone)]
pub struct MeanRegressor {
    mean: f64,
}

impl MeanRegressor {
    /// Fit on targets.
    pub fn fit(y: &[f64]) -> Self {
        let mean = if y.is_empty() {
            0.0
        } else {
            y.iter().sum::<f64>() / y.len() as f64
        };
        MeanRegressor { mean }
    }

    /// The constant prediction.
    pub fn predict(&self, n: usize) -> Vec<f64> {
        vec![self.mean; n]
    }

    /// The fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Recommends globally most-frequent items to everyone.
#[derive(Debug, Clone)]
pub struct PopularityRecommender {
    ranked: Vec<u64>,
}

impl PopularityRecommender {
    /// Fit on historical `(user, item)` interactions.
    pub fn fit(interactions: &[(u64, u64)]) -> Self {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &(_, item) in interactions {
            *counts.entry(item).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u64, usize)> = counts.into_iter().collect();
        // Stable deterministic order: by count desc, then item id.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        PopularityRecommender {
            ranked: ranked.into_iter().map(|(i, _)| i).collect(),
        }
    }

    /// Top-`k` items, optionally excluding a user's already-seen set.
    pub fn recommend(&self, k: usize, exclude: &HashSet<u64>) -> Vec<u64> {
        self.ranked
            .iter()
            .copied()
            .filter(|i| !exclude.contains(i))
            .take(k)
            .collect()
    }
}

/// Item-to-item co-visitation: recommends items most co-interacted with the
/// user's history.
#[derive(Debug, Clone)]
pub struct CoVisitRecommender {
    /// item → (co-item → co-count)
    co: HashMap<u64, HashMap<u64, usize>>,
    fallback: PopularityRecommender,
}

impl CoVisitRecommender {
    /// Fit on historical `(user, item)` interactions.
    pub fn fit(interactions: &[(u64, u64)]) -> Self {
        let mut by_user: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(u, i) in interactions {
            by_user.entry(u).or_default().push(i);
        }
        let mut co: HashMap<u64, HashMap<u64, usize>> = HashMap::new();
        for items in by_user.values() {
            for (a_idx, &a) in items.iter().enumerate() {
                for &b in &items[a_idx + 1..] {
                    if a == b {
                        continue;
                    }
                    *co.entry(a).or_default().entry(b).or_insert(0) += 1;
                    *co.entry(b).or_default().entry(a).or_insert(0) += 1;
                }
            }
        }
        CoVisitRecommender {
            co,
            fallback: PopularityRecommender::fit(interactions),
        }
    }

    /// Top-`k` recommendations given the user's interaction history,
    /// excluding the history itself; backfills with popularity.
    pub fn recommend(&self, history: &[u64], k: usize) -> Vec<u64> {
        let seen: HashSet<u64> = history.iter().copied().collect();
        let mut scores: HashMap<u64, usize> = HashMap::new();
        for h in history {
            if let Some(cands) = self.co.get(h) {
                for (&item, &c) in cands {
                    if !seen.contains(&item) {
                        *scores.entry(item).or_insert(0) += c;
                    }
                }
            }
        }
        let mut ranked: Vec<(u64, usize)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out: Vec<u64> = ranked.into_iter().map(|(i, _)| i).take(k).collect();
        if out.len() < k {
            let have: HashSet<u64> = out.iter().copied().chain(seen.iter().copied()).collect();
            for i in self.fallback.recommend(k + have.len(), &have) {
                if out.len() >= k {
                    break;
                }
                out.push(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_and_mean() {
        let p = PriorClassifier::fit(&[1.0, 0.0, 1.0, 1.0]);
        assert_eq!(p.predict(2), vec![0.75, 0.75]);
        assert_eq!(PriorClassifier::fit(&[]).predict(1), vec![0.5]);
        let m = MeanRegressor::fit(&[1.0, 3.0]);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.predict(3), vec![2.0; 3]);
    }

    #[test]
    fn popularity_ranks_by_frequency() {
        let inter = [(1, 10), (2, 10), (3, 10), (1, 20), (2, 20), (1, 30)];
        let r = PopularityRecommender::fit(&inter);
        assert_eq!(r.recommend(3, &HashSet::new()), vec![10, 20, 30]);
        let mut ex = HashSet::new();
        ex.insert(10);
        assert_eq!(r.recommend(2, &ex), vec![20, 30]);
    }

    #[test]
    fn covisit_finds_companions() {
        // Users who buy 1 also buy 2; item 9 is popular but unrelated.
        let inter = [
            (1, 1),
            (1, 2),
            (2, 1),
            (2, 2),
            (3, 1),
            (3, 2),
            (4, 9),
            (5, 9),
            (6, 9),
            (7, 9),
        ];
        let r = CoVisitRecommender::fit(&inter);
        let recs = r.recommend(&[1], 1);
        assert_eq!(recs, vec![2], "co-visitation should beat popularity");
    }

    #[test]
    fn covisit_backfills_with_popularity() {
        let inter = [(1, 1), (2, 2), (2, 2), (3, 3)];
        let r = CoVisitRecommender::fit(&inter);
        // No co-visits for item 1 → fall back to popularity (2 first).
        let recs = r.recommend(&[1], 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], 2);
        assert!(!recs.contains(&1));
    }

    #[test]
    fn covisit_excludes_history() {
        let inter = [(1, 1), (1, 2), (2, 1), (2, 2)];
        let r = CoVisitRecommender::fit(&inter);
        let recs = r.recommend(&[1, 2], 5);
        assert!(!recs.contains(&1) && !recs.contains(&2));
    }
}
