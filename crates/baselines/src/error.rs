//! Error types for baseline models.

use std::fmt;

use relgraph_store::StoreError;

/// Result alias for baseline operations.
pub type BaselineResult<T> = Result<T, BaselineError>;

/// Errors from feature engineering or baseline training.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Empty or single-class training data.
    DegenerateTrainingSet(String),
    /// Feature rows with inconsistent widths.
    RaggedFeatures { expected: usize, got: usize },
    /// Underlying store error during feature computation.
    Store(StoreError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::DegenerateTrainingSet(m) => write!(f, "degenerate training set: {m}"),
            BaselineError::RaggedFeatures { expected, got } => {
                write!(
                    f,
                    "ragged feature rows: expected width {expected}, got {got}"
                )
            }
            BaselineError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<StoreError> for BaselineError {
    fn from(e: StoreError) -> Self {
        BaselineError::Store(e)
    }
}
