//! Gradient-boosted decision trees — the LightGBM stand-in.
//!
//! Depth-limited regression trees are fit to the negative gradient of
//! either squared error (regression) or logistic loss (binary
//! classification), with shrinkage. Split candidates are per-feature
//! quantiles computed once on the full data. Deterministic.

use crate::error::{BaselineError, BaselineResult};

/// Training objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GbdtObjective {
    /// Squared error; `predict` returns raw values.
    Regression,
    /// Logistic loss; `predict` returns probabilities.
    Binary,
}

/// Hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Boosting rounds (number of trees).
    pub rounds: usize,
    /// Shrinkage per tree.
    pub learning_rate: f64,
    /// Split candidates per feature.
    pub quantiles: usize,
    /// Minimum examples per leaf.
    pub min_leaf: usize,
    /// Maximum tree depth (1 = stumps; 2 captures pairwise interactions).
    pub max_depth: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 150,
            learning_rate: 0.1,
            quantiles: 16,
            min_leaf: 5,
            max_depth: 2,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn eval(&self, row: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.eval(row)
                } else {
                    right.eval(row)
                }
            }
        }
    }

    fn count_feature_usage(&self, counts: &mut [usize]) {
        if let Node::Split {
            feature,
            left,
            right,
            ..
        } = self
        {
            counts[*feature] += 1;
            left.count_feature_usage(counts);
            right.count_feature_usage(counts);
        }
    }
}

/// A fitted gradient-boosted tree ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    objective: GbdtObjective,
    base: f64,
    trees: Vec<Node>,
    learning_rate: f64,
}

fn build_tree(
    x: &[Vec<f64>],
    grad: &[f64],
    rows: &[usize],
    candidates: &[Vec<f64>],
    depth: usize,
    cfg: &GbdtConfig,
) -> Node {
    let sum: f64 = rows.iter().map(|&r| grad[r]).sum();
    let mean = sum / rows.len() as f64;
    if depth == 0 || rows.len() < 2 * cfg.min_leaf {
        return Node::Leaf(mean);
    }
    // Best split by variance reduction on the residuals.
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for (f, cands) in candidates.iter().enumerate() {
        for &t in cands {
            let mut left_sum = 0.0;
            let mut left_n = 0usize;
            for &r in rows {
                if x[r][f] <= t {
                    left_sum += grad[r];
                    left_n += 1;
                }
            }
            let right_n = rows.len() - left_n;
            if left_n < cfg.min_leaf || right_n < cfg.min_leaf {
                continue;
            }
            let right_sum = sum - left_sum;
            let gain = left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64
                - sum * sum / rows.len() as f64;
            if best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, t));
            }
        }
    }
    let Some((gain, feature, threshold)) = best else {
        return Node::Leaf(mean);
    };
    if gain <= 1e-12 {
        return Node::Leaf(mean);
    }
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| x[r][feature] <= threshold);
    let left = build_tree(x, grad, &left_rows, candidates, depth - 1, cfg);
    let right = build_tree(x, grad, &right_rows, candidates, depth - 1, cfg);
    Node::Split {
        feature,
        threshold,
        left: Box::new(left),
        right: Box::new(right),
    }
}

impl Gbdt {
    /// Fit on feature rows `x` and labels `y` (binary labels in {0,1}).
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        objective: GbdtObjective,
        cfg: &GbdtConfig,
    ) -> BaselineResult<Self> {
        let _span = relgraph_obs::span("baselines.gbdt_fit");
        relgraph_obs::add("baselines.gbdt.rows", x.len() as u64);
        if x.is_empty() || x.len() != y.len() {
            return Err(BaselineError::DegenerateTrainingSet(format!(
                "{} rows vs {} labels",
                x.len(),
                y.len()
            )));
        }
        let d = x[0].len();
        for row in x {
            if row.len() != d {
                return Err(BaselineError::RaggedFeatures {
                    expected: d,
                    got: row.len(),
                });
            }
        }
        if objective == GbdtObjective::Binary {
            let pos = y.iter().filter(|&&v| v > 0.5).count();
            if pos == 0 || pos == y.len() {
                return Err(BaselineError::DegenerateTrainingSet(
                    "binary objective needs both classes".into(),
                ));
            }
        }
        let n = x.len();
        // Base score: mean for regression, log-odds for binary.
        let mean = y.iter().sum::<f64>() / n as f64;
        let base = match objective {
            GbdtObjective::Regression => mean,
            GbdtObjective::Binary => {
                let p = mean.clamp(1e-6, 1.0 - 1e-6);
                (p / (1.0 - p)).ln()
            }
        };
        // Per-feature quantile split candidates, computed once.
        let mut candidates: Vec<Vec<f64>> = Vec::with_capacity(d);
        for f in 0..d {
            let mut vals: Vec<f64> = x.iter().map(|r| r[f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            vals.dedup();
            let mut cs = Vec::new();
            if vals.len() > 1 {
                let q = cfg.quantiles.min(vals.len() - 1);
                for k in 1..=q {
                    let idx = k * (vals.len() - 1) / (q + 1);
                    let t = (vals[idx] + vals[idx + 1]) / 2.0;
                    if cs.last().is_none_or(|&l: &f64| l != t) {
                        cs.push(t);
                    }
                }
            }
            candidates.push(cs);
        }

        let all_rows: Vec<usize> = (0..n).collect();
        let mut score: Vec<f64> = vec![base; n];
        let mut trees = Vec::with_capacity(cfg.rounds);
        for _ in 0..cfg.rounds {
            let grad: Vec<f64> = match objective {
                GbdtObjective::Regression => score.iter().zip(y).map(|(&s, &t)| t - s).collect(),
                GbdtObjective::Binary => {
                    score.iter().zip(y).map(|(&s, &t)| t - sigmoid(s)).collect()
                }
            };
            let tree = build_tree(x, &grad, &all_rows, &candidates, cfg.max_depth, cfg);
            if matches!(tree, Node::Leaf(v) if v.abs() < 1e-12) {
                break; // converged
            }
            for (s, row) in score.iter_mut().zip(x) {
                *s += cfg.learning_rate * tree.eval(row);
            }
            trees.push(tree);
        }
        Ok(Gbdt {
            objective,
            base,
            trees,
            learning_rate: cfg.learning_rate,
        })
    }

    /// Raw score per row (log-odds for binary).
    pub fn score(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter()
            .map(|row| {
                self.base + self.learning_rate * self.trees.iter().map(|t| t.eval(row)).sum::<f64>()
            })
            .collect()
    }

    /// Predictions: probabilities for `Binary`, values for `Regression`.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        let scores = self.score(x);
        match self.objective {
            GbdtObjective::Regression => scores,
            GbdtObjective::Binary => scores.into_iter().map(sigmoid).collect(),
        }
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// How often each feature was chosen for a split (importance proxy).
    pub fn feature_usage(&self, num_features: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_features];
        for t in &self.trees {
            t.count_feature_usage(&mut counts);
        }
        counts
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Nonlinear with interaction: y = 1[x0 > 0 XOR x1 > 0] — requires
        // depth ≥ 2 trees; additive stumps provably cannot represent it.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            x.push(vec![a, b]);
            y.push(if (a > 0.0) != (b > 0.0) { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    #[test]
    fn learns_nonlinear_xor_with_depth_two() {
        let (x, y) = xor_data(400, 1);
        let m = Gbdt::fit(&x, &y, GbdtObjective::Binary, &GbdtConfig::default()).unwrap();
        let (xt, yt) = xor_data(200, 2);
        let p = m.predict(&xt);
        let acc = p
            .iter()
            .zip(&yt)
            .filter(|(&pi, &ti)| (pi > 0.5) == (ti > 0.5))
            .count();
        assert!(acc > 170, "accuracy {acc}/200");
        assert!(m.num_trees() > 10);
    }

    #[test]
    fn depth_one_stumps_fail_xor() {
        let (x, y) = xor_data(400, 1);
        let cfg = GbdtConfig {
            max_depth: 1,
            ..Default::default()
        };
        let m = Gbdt::fit(&x, &y, GbdtObjective::Binary, &cfg).unwrap();
        let (xt, yt) = xor_data(200, 2);
        let p = m.predict(&xt);
        let acc = p
            .iter()
            .zip(&yt)
            .filter(|(&pi, &ti)| (pi > 0.5) == (ti > 0.5))
            .count();
        assert!(acc < 140, "stumps should not solve XOR, got {acc}/200");
    }

    #[test]
    fn regression_fits_step_function() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let m = Gbdt::fit(&x, &y, GbdtObjective::Regression, &GbdtConfig::default()).unwrap();
        let p = m.predict(&x);
        let mae: f64 = p.iter().zip(&y).map(|(&a, &b)| (a - b).abs()).sum::<f64>() / y.len() as f64;
        assert!(mae < 0.2, "MAE {mae}");
    }

    #[test]
    fn constant_target_yields_base_only() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 20];
        let m = Gbdt::fit(&x, &y, GbdtObjective::Regression, &GbdtConfig::default()).unwrap();
        let p = m.predict(&x);
        assert!(p.iter().all(|&v| (v - 3.0).abs() < 1e-9));
        assert_eq!(m.num_trees(), 0, "no useful splits → early convergence");
    }

    #[test]
    fn probabilities_bounded() {
        let (x, y) = xor_data(100, 3);
        let m = Gbdt::fit(&x, &y, GbdtObjective::Binary, &GbdtConfig::default()).unwrap();
        for p in m.predict(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn feature_usage_prefers_informative_features() {
        let mut rng = StdRng::seed_from_u64(4);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.2 { 1.0 } else { 0.0 })
            .collect();
        let m = Gbdt::fit(&x, &y, GbdtObjective::Binary, &GbdtConfig::default()).unwrap();
        let usage = m.feature_usage(2);
        assert!(usage[0] > usage[1], "usage {usage:?}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(Gbdt::fit(&[], &[], GbdtObjective::Binary, &GbdtConfig::default()).is_err());
        let x = vec![vec![1.0]; 10];
        let y = vec![1.0; 10];
        assert!(Gbdt::fit(&x, &y, GbdtObjective::Binary, &GbdtConfig::default()).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(matches!(
            Gbdt::fit(
                &ragged,
                &[0.0, 1.0],
                GbdtObjective::Binary,
                &GbdtConfig::default()
            ),
            Err(BaselineError::RaggedFeatures { .. })
        ));
    }
}
