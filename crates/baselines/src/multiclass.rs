//! Multiclass baselines: one-vs-rest reductions of the binary models and
//! the majority-class floor.

use crate::error::{BaselineError, BaselineResult};
use crate::gbdt::{Gbdt, GbdtConfig, GbdtObjective};
use crate::linear::{LinearConfig, LogisticRegressor};

fn check_classes(y: &[usize], n_classes: usize) -> BaselineResult<()> {
    if y.is_empty() {
        return Err(BaselineError::DegenerateTrainingSet("no labels".into()));
    }
    if n_classes < 2 {
        return Err(BaselineError::DegenerateTrainingSet(format!(
            "need ≥ 2 classes, got {n_classes}"
        )));
    }
    if let Some(&bad) = y.iter().find(|&&c| c >= n_classes) {
        return Err(BaselineError::DegenerateTrainingSet(format!(
            "class index {bad} out of range for {n_classes} classes"
        )));
    }
    Ok(())
}

fn argmax(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Always predicts the most frequent training class.
#[derive(Debug, Clone)]
pub struct MajorityClass {
    class: usize,
}

impl MajorityClass {
    /// Fit on class indices.
    pub fn fit(y: &[usize], n_classes: usize) -> BaselineResult<Self> {
        check_classes(y, n_classes)?;
        let mut counts = vec![0usize; n_classes];
        for &c in y {
            counts[c] += 1;
        }
        Ok(MajorityClass {
            class: argmax(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>()),
        })
    }

    /// The constant prediction.
    pub fn predict(&self, n: usize) -> Vec<usize> {
        vec![self.class; n]
    }

    /// The majority class index.
    pub fn class(&self) -> usize {
        self.class
    }
}

/// One-vs-rest gradient-boosted trees.
#[derive(Debug, Clone)]
pub struct MulticlassGbdt {
    per_class: Vec<Option<Gbdt>>,
    fallback: usize,
}

impl MulticlassGbdt {
    /// Fit one binary GBDT per class (classes absent from training get a
    /// constant −∞ score and can never be predicted).
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        cfg: &GbdtConfig,
    ) -> BaselineResult<Self> {
        check_classes(y, n_classes)?;
        let mut per_class = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let labels: Vec<f64> = y
                .iter()
                .map(|&yc| if yc == c { 1.0 } else { 0.0 })
                .collect();
            let pos = labels.iter().filter(|&&v| v > 0.5).count();
            if pos == 0 || pos == labels.len() {
                per_class.push(None);
            } else {
                per_class.push(Some(Gbdt::fit(x, &labels, GbdtObjective::Binary, cfg)?));
            }
        }
        let fallback = MajorityClass::fit(y, n_classes)?.class();
        Ok(MulticlassGbdt {
            per_class,
            fallback,
        })
    }

    /// Per-class one-vs-rest scores (log-odds; absent classes get −∞).
    pub fn score(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = x.len();
        let mut scores = vec![vec![f64::NEG_INFINITY; self.per_class.len()]; n];
        for (c, m) in self.per_class.iter().enumerate() {
            if let Some(m) = m {
                for (row, s) in scores.iter_mut().zip(m.score(x)) {
                    row[c] = s;
                }
            }
        }
        scores
    }

    /// Argmax class per row.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<usize> {
        self.score(x)
            .into_iter()
            .map(|s| {
                if s.iter().all(|v| v.is_infinite()) {
                    self.fallback
                } else {
                    argmax(&s)
                }
            })
            .collect()
    }
}

/// One-vs-rest logistic regression.
#[derive(Debug, Clone)]
pub struct MulticlassLogReg {
    per_class: Vec<Option<LogisticRegressor>>,
    fallback: usize,
}

impl MulticlassLogReg {
    /// Fit one binary logistic regressor per class.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        cfg: &LinearConfig,
    ) -> BaselineResult<Self> {
        check_classes(y, n_classes)?;
        let mut per_class = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let labels: Vec<f64> = y
                .iter()
                .map(|&yc| if yc == c { 1.0 } else { 0.0 })
                .collect();
            let pos = labels.iter().filter(|&&v| v > 0.5).count();
            if pos == 0 || pos == labels.len() {
                per_class.push(None);
            } else {
                per_class.push(Some(LogisticRegressor::fit(x, &labels, cfg)?));
            }
        }
        let fallback = MajorityClass::fit(y, n_classes)?.class();
        Ok(MulticlassLogReg {
            per_class,
            fallback,
        })
    }

    /// Argmax class per row (by one-vs-rest probability).
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<usize> {
        let n = x.len();
        let k = self.per_class.len();
        let mut probs = vec![vec![f64::NEG_INFINITY; k]; n];
        for (c, m) in self.per_class.iter().enumerate() {
            if let Some(m) = m {
                for (row, p) in probs.iter_mut().zip(m.predict_proba(x)) {
                    row[c] = p;
                }
            }
        }
        probs
            .into_iter()
            .map(|p| {
                if p.iter().all(|v| v.is_infinite()) {
                    self.fallback
                } else {
                    argmax(&p)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Three linearly separated blobs along x0.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let c = rng.gen_range(0..3usize);
            x.push(vec![
                c as f64 * 3.0 + rng.gen_range(-0.8..0.8),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(c);
        }
        (x, y)
    }

    #[test]
    fn majority_class() {
        let m = MajorityClass::fit(&[0, 1, 1, 2, 1], 3).unwrap();
        assert_eq!(m.class(), 1);
        assert_eq!(m.predict(2), vec![1, 1]);
        assert!(MajorityClass::fit(&[], 3).is_err());
        assert!(MajorityClass::fit(&[5], 3).is_err());
        assert!(MajorityClass::fit(&[0], 1).is_err());
    }

    #[test]
    fn gbdt_separates_blobs() {
        let (x, y) = blobs(300, 1);
        let m = MulticlassGbdt::fit(&x, &y, 3, &GbdtConfig::default()).unwrap();
        let (xt, yt) = blobs(100, 2);
        let p = m.predict(&xt);
        let acc = p.iter().zip(&yt).filter(|(a, b)| a == b).count();
        assert!(acc > 90, "gbdt multiclass accuracy {acc}/100");
    }

    #[test]
    fn logreg_separates_blobs() {
        let (x, y) = blobs(300, 3);
        let m = MulticlassLogReg::fit(&x, &y, 3, &LinearConfig::default()).unwrap();
        let (xt, yt) = blobs(100, 4);
        let p = m.predict(&xt);
        let acc = p.iter().zip(&yt).filter(|(a, b)| a == b).count();
        assert!(acc > 90, "logreg multiclass accuracy {acc}/100");
    }

    #[test]
    fn absent_class_never_predicted() {
        // Class 2 exists in the vocabulary but not in training.
        let x = vec![vec![0.0], vec![1.0], vec![0.1], vec![0.9]];
        let y = vec![0, 1, 0, 1];
        let m = MulticlassGbdt::fit(&x, &y, 3, &GbdtConfig::default()).unwrap();
        assert!(m.predict(&x).iter().all(|&c| c < 2));
    }
}
