//! Temporal aggregate feature engineering over foreign-key joins.
//!
//! This module plays the role of the manual feature-engineering pipeline
//! the paper argues predictive queries replace. Given an entity table, it
//! derives, per (entity, anchor-time) pair:
//!
//! * the entity's own numeric / hashed-text columns and its age;
//! * per referencing fact table and per look-back window: event counts,
//!   sums and means of numeric columns, and days-since-last-event;
//! * one dimension hop: means of numeric columns of tables the fact table
//!   itself references (e.g. average price of purchased products).
//!
//! All aggregates respect the anchor: only facts with `time ≤ anchor` are
//! visible, so the baseline is leak-free by construction (matching the
//! paper's protocol for its strongest baselines).

use std::collections::HashMap;

use relgraph_store::{Database, StoreError, StoreResult, Table, Timestamp, SECONDS_PER_DAY};

/// Configuration for [`FeatureEngineer`].
#[derive(Debug, Clone)]
pub struct FeatureConfig {
    /// Look-back windows in days; `0` means "all history".
    pub windows_days: Vec<i64>,
    /// Hash buckets per entity text column.
    pub text_hash_dim: usize,
    /// Keep only the first `n` feature templates (the F4 effort sweep);
    /// `None` keeps all.
    pub max_features: Option<usize>,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            windows_days: vec![7, 30, 90, 0],
            text_hash_dim: 4,
            max_features: None,
        }
    }
}

/// One derivable feature.
#[derive(Debug, Clone)]
enum Template {
    /// Entity numeric column.
    OwnNumeric { col: usize },
    /// Entity text column, one-hot bucket.
    OwnTextBucket {
        col: usize,
        bucket: usize,
        dim: usize,
    },
    /// `ln(1 + days since entity creation)`.
    OwnAgeDays,
    /// Count of fact rows in window (fact index, window days).
    FactCount { fact: usize, window: i64 },
    /// Sum / mean of a fact numeric column in window.
    FactSum {
        fact: usize,
        col: usize,
        window: i64,
    },
    FactMean {
        fact: usize,
        col: usize,
        window: i64,
    },
    /// Share of in-window fact rows whose text column hashes to `bucket`
    /// (a leak-free histogram of the categorical event attribute — e.g.
    /// the channel mix of a customer's past orders).
    FactTextShare {
        fact: usize,
        col: usize,
        bucket: usize,
        dim: usize,
        window: i64,
    },
    /// `ln(1 + days since last fact)` over all history.
    FactRecency { fact: usize },
    /// Mean over in-window fact rows of a referenced dimension's numeric
    /// column (`dim_join` indexes the fact's FK list).
    DimMean {
        fact: usize,
        dim_join: usize,
        dim_col: usize,
        window: i64,
    },
}

/// Precomputed per-fact-table index.
struct FactIndex {
    /// Fact table name.
    table: String,
    /// entity row → (time, fact row), sorted by time.
    by_entity: HashMap<usize, Vec<(Timestamp, usize)>>,
    /// Dimension joins: (fk column name, dim table name, fact row → dim row,
    /// numeric column indices of the dim table).
    dims: Vec<DimJoin>,
}

struct DimJoin {
    dim_table: String,
    fact_to_dim: Vec<Option<usize>>,
    numeric_cols: Vec<usize>,
}

/// Derives leak-free tabular features for (entity, anchor) pairs.
pub struct FeatureEngineer {
    entity_table: String,
    config: FeatureConfig,
    templates: Vec<Template>,
    names: Vec<String>,
    facts: Vec<FactIndex>,
}

fn numeric_feature_cols(table: &Table) -> Vec<usize> {
    let schema = table.schema();
    let mut skip = Vec::new();
    if let Some(pk) = schema.primary_key_index() {
        skip.push(pk);
    }
    if let Some(tc) = schema.time_column_index() {
        skip.push(tc);
    }
    for fk in schema.foreign_keys() {
        if let Some(i) = schema.column_index(&fk.column) {
            skip.push(i);
        }
    }
    schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, c)| !skip.contains(i) && c.data_type.is_numeric())
        .map(|(i, _)| i)
        .collect()
}

fn text_feature_cols(table: &Table) -> Vec<usize> {
    table
        .schema()
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.data_type == relgraph_store::DataType::Text)
        .map(|(i, _)| i)
        .collect()
}

impl FeatureEngineer {
    /// Plan and index features for `entity_table` over `db`.
    pub fn new(db: &Database, entity_table: &str, config: FeatureConfig) -> StoreResult<Self> {
        let entity = db.table(entity_table)?;
        let entity_pk = entity
            .schema()
            .primary_key()
            .map(str::to_string)
            .ok_or_else(|| {
                StoreError::InvalidQuery(format!(
                    "entity table `{entity_table}` needs a primary key"
                ))
            })?;
        let mut templates = Vec::new();
        let mut names = Vec::new();

        // Entity-own features.
        for col in numeric_feature_cols(entity) {
            templates.push(Template::OwnNumeric { col });
            names.push(format!(
                "{entity_table}.{}",
                entity.schema().columns()[col].name
            ));
        }
        for col in text_feature_cols(entity) {
            for bucket in 0..config.text_hash_dim {
                templates.push(Template::OwnTextBucket {
                    col,
                    bucket,
                    dim: config.text_hash_dim,
                });
                names.push(format!(
                    "{entity_table}.{}#h{bucket}",
                    entity.schema().columns()[col].name
                ));
            }
        }
        if entity.schema().time_column().is_some() {
            templates.push(Template::OwnAgeDays);
            names.push(format!("{entity_table}.age_days"));
        }

        // Fact tables: any table with an FK to the entity table.
        let mut facts = Vec::new();
        for table in db.tables() {
            let Some(fk) = table
                .schema()
                .foreign_keys()
                .iter()
                .find(|f| f.referenced_table == entity_table)
            else {
                continue;
            };
            if table.schema().time_column_index().is_none() {
                continue; // aggregates need event times
            }
            let fact_idx = facts.len();
            // Index rows by referenced entity row, time-sorted.
            let fk_col = table.column_by_name(&fk.column).expect("fk column exists");
            let mut by_entity: HashMap<usize, Vec<(Timestamp, usize)>> = HashMap::new();
            for row in 0..table.len() {
                let key = fk_col.get(row);
                if key.is_null() {
                    continue;
                }
                let Some(erow) = entity.row_by_key(&key) else {
                    continue;
                };
                let Some(t) = table.row_timestamp(row) else {
                    continue;
                };
                by_entity.entry(erow).or_default().push((t, row));
            }
            for v in by_entity.values_mut() {
                v.sort_unstable();
            }
            let numeric_cols = numeric_feature_cols(table);
            let text_cols = text_feature_cols(table);
            // Dimension joins (FKs of the fact table to other tables).
            let mut dims = Vec::new();
            for dfk in table.schema().foreign_keys() {
                if dfk.referenced_table == entity_table {
                    continue;
                }
                let Ok(dim) = db.table(&dfk.referenced_table) else {
                    continue;
                };
                if dim.schema().primary_key().is_none() {
                    continue;
                }
                let dcols = numeric_feature_cols(dim);
                if dcols.is_empty() {
                    continue;
                }
                let dcol = table.column_by_name(&dfk.column).expect("fk column exists");
                let fact_to_dim: Vec<Option<usize>> = (0..table.len())
                    .map(|r| {
                        let k = dcol.get(r);
                        if k.is_null() {
                            None
                        } else {
                            dim.row_by_key(&k)
                        }
                    })
                    .collect();
                dims.push(DimJoin {
                    dim_table: dfk.referenced_table.clone(),
                    fact_to_dim,
                    numeric_cols: dcols,
                });
            }

            // Templates per window.
            let tname = table.name();
            for &w in &config.windows_days {
                let suffix = if w == 0 {
                    "all".to_string()
                } else {
                    format!("{w}d")
                };
                templates.push(Template::FactCount {
                    fact: fact_idx,
                    window: w,
                });
                names.push(format!("{tname}.count_{suffix}"));
                for &col in &numeric_cols {
                    let cname = &table.schema().columns()[col].name;
                    templates.push(Template::FactSum {
                        fact: fact_idx,
                        col,
                        window: w,
                    });
                    names.push(format!("{tname}.{cname}_sum_{suffix}"));
                    templates.push(Template::FactMean {
                        fact: fact_idx,
                        col,
                        window: w,
                    });
                    names.push(format!("{tname}.{cname}_mean_{suffix}"));
                }
                for &col in &text_cols {
                    let cname = &table.schema().columns()[col].name;
                    for bucket in 0..config.text_hash_dim {
                        templates.push(Template::FactTextShare {
                            fact: fact_idx,
                            col,
                            bucket,
                            dim: config.text_hash_dim,
                            window: w,
                        });
                        names.push(format!("{tname}.{cname}#h{bucket}_share_{suffix}"));
                    }
                }
                for (j, dj) in dims.iter().enumerate() {
                    for &dc in &dj.numeric_cols {
                        let dname = &db.table(&dj.dim_table)?.schema().columns()[dc].name;
                        templates.push(Template::DimMean {
                            fact: fact_idx,
                            dim_join: j,
                            dim_col: dc,
                            window: w,
                        });
                        names.push(format!("{tname}.{}.{dname}_mean_{suffix}", dj.dim_table));
                    }
                }
            }
            templates.push(Template::FactRecency { fact: fact_idx });
            names.push(format!("{tname}.days_since_last"));

            facts.push(FactIndex {
                table: tname.to_string(),
                by_entity,
                dims,
            });
        }

        if let Some(n) = config.max_features {
            templates.truncate(n);
            names.truncate(n);
        }
        let _ = entity_pk;
        Ok(FeatureEngineer {
            entity_table: entity_table.to_string(),
            config,
            templates,
            names,
            facts,
        })
    }

    /// Number of features produced per example.
    pub fn num_features(&self) -> usize {
        self.templates.len()
    }

    /// Feature names (aligned with feature vector slots).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Compute the feature matrix for `(entity row, anchor time)` pairs.
    pub fn compute(
        &self,
        db: &Database,
        seeds: &[(usize, Timestamp)],
    ) -> StoreResult<Vec<Vec<f64>>> {
        let _span = relgraph_obs::span("baselines.featurize");
        relgraph_obs::add("baselines.featurize.rows", seeds.len() as u64);
        let entity = db.table(&self.entity_table)?;
        let fact_tables: Vec<&Table> = self
            .facts
            .iter()
            .map(|f| db.table(&f.table))
            .collect::<StoreResult<_>>()?;
        let dim_tables: Vec<Vec<&Table>> = self
            .facts
            .iter()
            .map(|f| {
                f.dims
                    .iter()
                    .map(|d| db.table(&d.dim_table))
                    .collect::<StoreResult<_>>()
            })
            .collect::<StoreResult<_>>()?;
        let mut out = Vec::with_capacity(seeds.len());
        for &(erow, anchor) in seeds {
            let mut row = Vec::with_capacity(self.templates.len());
            for tpl in &self.templates {
                let v = match tpl {
                    Template::OwnNumeric { col } => entity
                        .column(*col)
                        .and_then(|c| c.get_f64(erow))
                        .unwrap_or(0.0),
                    Template::OwnTextBucket { col, bucket, dim } => {
                        let s = entity
                            .column(*col)
                            .and_then(|c| c.get_str(erow).map(str::to_string));
                        match s {
                            Some(s) if hash_bucket(&s, *dim) == *bucket => 1.0,
                            _ => 0.0,
                        }
                    }
                    Template::OwnAgeDays => match entity.row_timestamp(erow) {
                        Some(t) => {
                            (1.0 + ((anchor - t).max(0) as f64 / SECONDS_PER_DAY as f64)).ln()
                        }
                        None => 0.0,
                    },
                    Template::FactCount { fact, window } => {
                        self.window_rows(*fact, erow, anchor, *window).len() as f64
                    }
                    Template::FactSum { fact, col, window } => {
                        let table = fact_tables[*fact];
                        self.window_rows(*fact, erow, anchor, *window)
                            .iter()
                            .filter_map(|&(_, r)| table.column(*col).and_then(|c| c.get_f64(r)))
                            .sum()
                    }
                    Template::FactMean { fact, col, window } => {
                        let table = fact_tables[*fact];
                        let vals: Vec<f64> = self
                            .window_rows(*fact, erow, anchor, *window)
                            .iter()
                            .filter_map(|&(_, r)| table.column(*col).and_then(|c| c.get_f64(r)))
                            .collect();
                        if vals.is_empty() {
                            0.0
                        } else {
                            vals.iter().sum::<f64>() / vals.len() as f64
                        }
                    }
                    Template::FactTextShare {
                        fact,
                        col,
                        bucket,
                        dim,
                        window,
                    } => {
                        let table = fact_tables[*fact];
                        let rows = self.window_rows(*fact, erow, anchor, *window);
                        if rows.is_empty() {
                            0.0
                        } else {
                            let hits = rows
                                .iter()
                                .filter_map(|&(_, r)| table.column(*col).and_then(|c| c.get_str(r)))
                                .filter(|s| hash_bucket(s, *dim) == *bucket)
                                .count();
                            hits as f64 / rows.len() as f64
                        }
                    }
                    Template::FactRecency { fact } => {
                        let rows = self.window_rows(*fact, erow, anchor, 0);
                        match rows.last() {
                            Some(&(t, _)) => {
                                (1.0 + ((anchor - t).max(0) as f64 / SECONDS_PER_DAY as f64)).ln()
                            }
                            None => (1.0 + 3650.0f64).ln(), // "never" sentinel ≈ 10y
                        }
                    }
                    Template::DimMean {
                        fact,
                        dim_join,
                        dim_col,
                        window,
                    } => {
                        let dj = &self.facts[*fact].dims[*dim_join];
                        let dim = dim_tables[*fact][*dim_join];
                        let vals: Vec<f64> = self
                            .window_rows(*fact, erow, anchor, *window)
                            .iter()
                            .filter_map(|&(_, r)| dj.fact_to_dim[r])
                            .filter_map(|dr| dim.column(*dim_col).and_then(|c| c.get_f64(dr)))
                            .collect();
                        if vals.is_empty() {
                            0.0
                        } else {
                            vals.iter().sum::<f64>() / vals.len() as f64
                        }
                    }
                };
                row.push(v);
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Fact rows of `fact` for entity `erow` in `(anchor − window, anchor]`
    /// (`window == 0` ⇒ all history up to anchor), time-sorted.
    fn window_rows(
        &self,
        fact: usize,
        erow: usize,
        anchor: Timestamp,
        window: i64,
    ) -> &[(Timestamp, usize)] {
        static EMPTY: &[(Timestamp, usize)] = &[];
        let Some(rows) = self.facts[fact].by_entity.get(&erow) else {
            return EMPTY;
        };
        let hi = rows.partition_point(|&(t, _)| t <= anchor);
        let lo = if window == 0 {
            0
        } else {
            let floor = anchor - window * SECONDS_PER_DAY;
            rows.partition_point(|&(t, _)| t <= floor)
        };
        &rows[lo..hi]
    }

    /// The configured look-back windows.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }
}

/// FNV-1a bucket (same scheme as db2graph's featurizer).
fn hash_bucket(s: &str, dim: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % dim as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph_store::{DataType, Row, TableSchema, Value};

    fn shop() -> Database {
        let mut db = Database::new("shop");
        db.create_table(
            TableSchema::builder("customers")
                .column("customer_id", DataType::Int)
                .column("signup", DataType::Timestamp)
                .column("region", DataType::Text)
                .primary_key("customer_id")
                .time_column("signup")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("products")
                .column("product_id", DataType::Int)
                .column("price", DataType::Float)
                .primary_key("product_id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("orders")
                .column("order_id", DataType::Int)
                .column("customer_id", DataType::Int)
                .column("product_id", DataType::Int)
                .column("amount", DataType::Float)
                .column("placed_at", DataType::Timestamp)
                .primary_key("order_id")
                .time_column("placed_at")
                .foreign_key("customer_id", "customers")
                .foreign_key("product_id", "products")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "customers",
            Row::new()
                .push(1i64)
                .push(Value::Timestamp(0))
                .push("north"),
        )
        .unwrap();
        db.insert(
            "customers",
            Row::new()
                .push(2i64)
                .push(Value::Timestamp(SECONDS_PER_DAY))
                .push("south"),
        )
        .unwrap();
        db.insert("products", Row::new().push(100i64).push(10.0))
            .unwrap();
        db.insert("products", Row::new().push(101i64).push(30.0))
            .unwrap();
        // Customer 1: orders on day 1 (p100, $10) and day 20 (p101, $30).
        db.insert(
            "orders",
            Row::new()
                .push(1i64)
                .push(1i64)
                .push(100i64)
                .push(10.0)
                .push(Value::Timestamp(SECONDS_PER_DAY)),
        )
        .unwrap();
        db.insert(
            "orders",
            Row::new()
                .push(2i64)
                .push(1i64)
                .push(101i64)
                .push(30.0)
                .push(Value::Timestamp(20 * SECONDS_PER_DAY)),
        )
        .unwrap();
        db
    }

    fn find(fe: &FeatureEngineer, name: &str) -> usize {
        fe.names()
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("feature `{name}` not found in {:?}", fe.names()))
    }

    #[test]
    fn plans_expected_features() {
        let db = shop();
        let fe = FeatureEngineer::new(&db, "customers", FeatureConfig::default()).unwrap();
        assert!(fe.num_features() > 10);
        assert_eq!(fe.names().len(), fe.num_features());
        // Own, fact, and dimension features are all present.
        find(&fe, "customers.age_days");
        find(&fe, "orders.count_30d");
        find(&fe, "orders.amount_sum_all");
        find(&fe, "orders.products.price_mean_all");
        find(&fe, "orders.days_since_last");
    }

    #[test]
    fn windows_respect_anchor() {
        let db = shop();
        let fe = FeatureEngineer::new(&db, "customers", FeatureConfig::default()).unwrap();
        // Anchor day 10: only the day-1 order is visible.
        let rows = fe.compute(&db, &[(0, 10 * SECONDS_PER_DAY)]).unwrap();
        let count_all = find(&fe, "orders.count_all");
        let count_7 = find(&fe, "orders.count_7d");
        assert_eq!(rows[0][count_all], 1.0);
        assert_eq!(rows[0][count_7], 0.0); // day-1 order is 9 days old
                                           // Anchor day 21: both orders visible; 7d window catches the day-20 one.
        let rows = fe.compute(&db, &[(0, 21 * SECONDS_PER_DAY)]).unwrap();
        assert_eq!(rows[0][count_all], 2.0);
        assert_eq!(rows[0][count_7], 1.0);
    }

    #[test]
    fn dimension_hop_means() {
        let db = shop();
        let fe = FeatureEngineer::new(&db, "customers", FeatureConfig::default()).unwrap();
        let price_mean = find(&fe, "orders.products.price_mean_all");
        let rows = fe.compute(&db, &[(0, 30 * SECONDS_PER_DAY)]).unwrap();
        assert_eq!(rows[0][price_mean], 20.0);
        // Customer 2 has no orders: zeros.
        let rows = fe.compute(&db, &[(1, 30 * SECONDS_PER_DAY)]).unwrap();
        assert_eq!(rows[0][price_mean], 0.0);
        assert_eq!(rows[0][find(&fe, "orders.count_all")], 0.0);
    }

    #[test]
    fn sum_and_mean_aggregates() {
        let db = shop();
        let fe = FeatureEngineer::new(&db, "customers", FeatureConfig::default()).unwrap();
        let rows = fe.compute(&db, &[(0, 30 * SECONDS_PER_DAY)]).unwrap();
        assert_eq!(rows[0][find(&fe, "orders.amount_sum_all")], 40.0);
        assert_eq!(rows[0][find(&fe, "orders.amount_mean_all")], 20.0);
    }

    #[test]
    fn recency_feature() {
        let db = shop();
        let fe = FeatureEngineer::new(&db, "customers", FeatureConfig::default()).unwrap();
        let recency = find(&fe, "orders.days_since_last");
        let rows = fe.compute(&db, &[(0, 21 * SECONDS_PER_DAY)]).unwrap();
        assert!((rows[0][recency] - (1.0 + 1.0f64).ln()).abs() < 1e-9);
        // Entity with no events gets the sentinel.
        let rows = fe.compute(&db, &[(1, 21 * SECONDS_PER_DAY)]).unwrap();
        assert!((rows[0][recency] - (1.0 + 3650.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn max_features_truncates() {
        let db = shop();
        let cfg = FeatureConfig {
            max_features: Some(5),
            ..Default::default()
        };
        let fe = FeatureEngineer::new(&db, "customers", cfg).unwrap();
        assert_eq!(fe.num_features(), 5);
        let rows = fe.compute(&db, &[(0, 10 * SECONDS_PER_DAY)]).unwrap();
        assert_eq!(rows[0].len(), 5);
    }

    #[test]
    fn text_buckets_one_hot() {
        let db = shop();
        let fe = FeatureEngineer::new(&db, "customers", FeatureConfig::default()).unwrap();
        let rows = fe.compute(&db, &[(0, 10), (1, 10)]).unwrap();
        let bucket_slots: Vec<usize> = fe
            .names()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.contains("region#"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(bucket_slots.len(), 4);
        for row in &rows {
            let total: f64 = bucket_slots.iter().map(|&i| row[i]).sum();
            assert_eq!(total, 1.0);
        }
    }
}
