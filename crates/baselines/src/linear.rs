//! Logistic and ridge-linear regression on engineered features, trained by
//! full-batch gradient descent on standardized inputs.

use crate::error::{BaselineError, BaselineResult};

/// Shared hyper-parameters for the linear models.
#[derive(Debug, Clone)]
pub struct LinearConfig {
    /// Gradient steps.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 penalty on weights (not the bias).
    pub l2: f64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            iterations: 300,
            lr: 0.5,
            l2: 1e-3,
        }
    }
}

/// Column-wise standardization fitted on training data.
#[derive(Debug, Clone)]
struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    fn fit(x: &[Vec<f64>]) -> Self {
        let d = x.first().map_or(0, Vec::len);
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; d];
        for row in x {
            for ((s, &v), &m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Scaler { mean, std }
    }

    fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect()
    }
}

fn check_shapes(x: &[Vec<f64>], y: &[f64]) -> BaselineResult<usize> {
    if x.is_empty() || x.len() != y.len() {
        return Err(BaselineError::DegenerateTrainingSet(format!(
            "{} feature rows vs {} labels",
            x.len(),
            y.len()
        )));
    }
    let d = x[0].len();
    for row in x {
        if row.len() != d {
            return Err(BaselineError::RaggedFeatures {
                expected: d,
                got: row.len(),
            });
        }
    }
    Ok(d)
}

/// L2-regularized logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegressor {
    weights: Vec<f64>,
    bias: f64,
    scaler: Scaler,
}

impl LogisticRegressor {
    /// Fit on feature rows `x` and binary labels `y` (`0.0`/`1.0`).
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &LinearConfig) -> BaselineResult<Self> {
        let _span = relgraph_obs::span("baselines.logistic_fit");
        relgraph_obs::add("baselines.linear.rows", x.len() as u64);
        let d = check_shapes(x, y)?;
        let pos = y.iter().filter(|&&v| v > 0.5).count();
        if pos == 0 || pos == y.len() {
            return Err(BaselineError::DegenerateTrainingSet(format!(
                "logistic regression needs both classes ({pos}/{} positive)",
                y.len()
            )));
        }
        let scaler = Scaler::fit(x);
        let xs: Vec<Vec<f64>> = x.iter().map(|r| scaler.apply(r)).collect();
        let n = xs.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..cfg.iterations {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &target) in xs.iter().zip(y) {
                let z: f64 = b + row.iter().zip(&w).map(|(&a, &c)| a * c).sum::<f64>();
                let p = sigmoid(z);
                let err = p - target;
                for (g, &a) in gw.iter_mut().zip(row) {
                    *g += err * a;
                }
                gb += err;
            }
            for ((wi, g), _) in w.iter_mut().zip(&gw).zip(0..) {
                *wi -= cfg.lr * (g / n + cfg.l2 * *wi);
            }
            b -= cfg.lr * gb / n;
        }
        Ok(LogisticRegressor {
            weights: w,
            bias: b,
            scaler,
        })
    }

    /// Predicted probability per row.
    pub fn predict_proba(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter()
            .map(|row| {
                let row = self.scaler.apply(row);
                let z: f64 = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(&a, &w)| a * w)
                        .sum::<f64>();
                sigmoid(z)
            })
            .collect()
    }

    /// Learned weights (standardized space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Ridge linear regression.
#[derive(Debug, Clone)]
pub struct LinearRegressor {
    weights: Vec<f64>,
    bias: f64,
    scaler: Scaler,
    y_mean: f64,
    y_std: f64,
}

impl LinearRegressor {
    /// Fit on feature rows `x` and targets `y` by solving the ridge normal
    /// equations `(XᵀX/n + λI)·w = Xᵀy/n` on standardized data — exact and
    /// immune to the step-size divergence gradient descent risks on
    /// strongly correlated engineered features.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &LinearConfig) -> BaselineResult<Self> {
        let _span = relgraph_obs::span("baselines.ridge_fit");
        relgraph_obs::add("baselines.linear.rows", x.len() as u64);
        let d = check_shapes(x, y)?;
        let scaler = Scaler::fit(x);
        let xs: Vec<Vec<f64>> = x.iter().map(|r| scaler.apply(r)).collect();
        let n = xs.len() as f64;
        let y_mean = y.iter().sum::<f64>() / n;
        let y_var = y.iter().map(|&v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n;
        let y_std = y_var.sqrt().max(1e-12);
        let ys: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();
        // Normal equations (both X and y are centered/scaled, so bias = 0
        // in standardized space).
        let mut a = vec![vec![0.0f64; d]; d];
        let mut b_vec = vec![0.0f64; d];
        for (row, &t) in xs.iter().zip(&ys) {
            for i in 0..d {
                b_vec[i] += row[i] * t;
                for j in i..d {
                    a[i][j] += row[i] * row[j];
                }
            }
        }
        let ridge = cfg.l2.max(1e-8);
        #[allow(clippy::needless_range_loop)] // mirrors/scales across two rows of `a`
        for i in 0..d {
            for j in 0..i {
                a[i][j] = a[j][i];
            }
            for j in 0..d {
                a[i][j] /= n;
            }
            b_vec[i] /= n;
            a[i][i] += ridge;
        }
        let w = solve_linear_system(a, b_vec).ok_or_else(|| {
            BaselineError::DegenerateTrainingSet("singular normal equations".into())
        })?;
        Ok(LinearRegressor {
            weights: w,
            bias: 0.0,
            scaler,
            y_mean,
            y_std,
        })
    }

    /// Predicted value per row (original scale).
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter()
            .map(|row| {
                let row = self.scaler.apply(row);
                let z: f64 = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(&a, &w)| a * w)
                        .sum::<f64>();
                z * self.y_std + self.y_mean
            })
            .collect()
    }
}

/// Solve `A·x = b` by Gaussian elimination with partial pivoting. Returns
/// `None` when the matrix is numerically singular.
#[allow(clippy::needless_range_loop)] // elimination touches two rows of `a` per step
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn linear_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
        // y_lin = 3*x0 - 2*x1 + 1; y_bin = 1[y_lin > 1].
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut ylin = Vec::new();
        let mut ybin = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            let v = 3.0 * a - 2.0 * b + 1.0;
            x.push(vec![a, b, rng.gen_range(-1.0..1.0)]);
            ylin.push(v + rng.gen_range(-0.1..0.1));
            ybin.push(if v > 1.0 { 1.0 } else { 0.0 });
        }
        (x, ylin, ybin)
    }

    #[test]
    fn logistic_separates_linear_classes() {
        let (x, _, y) = linear_data(300, 1);
        let model = LogisticRegressor::fit(&x, &y, &LinearConfig::default()).unwrap();
        let (xt, _, yt) = linear_data(100, 2);
        let p = model.predict_proba(&xt);
        let correct = p
            .iter()
            .zip(&yt)
            .filter(|(&pi, &ti)| (pi > 0.5) == (ti > 0.5))
            .count();
        assert!(correct >= 90, "accuracy {correct}/100");
        assert_eq!(model.weights().len(), 3);
    }

    #[test]
    fn linear_recovers_coefficients() {
        let (x, y, _) = linear_data(300, 3);
        let model = LinearRegressor::fit(&x, &y, &LinearConfig::default()).unwrap();
        let (xt, yt, _) = linear_data(100, 4);
        let p = model.predict(&xt);
        let mae: f64 =
            p.iter().zip(&yt).map(|(&a, &b)| (a - b).abs()).sum::<f64>() / yt.len() as f64;
        assert!(mae < 0.3, "MAE {mae}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(LogisticRegressor::fit(&[], &[], &LinearConfig::default()).is_err());
        let x = vec![vec![1.0], vec![2.0]];
        assert!(LogisticRegressor::fit(&x, &[1.0, 1.0], &LinearConfig::default()).is_err());
        let ragged = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(matches!(
            LogisticRegressor::fit(&ragged, &[1.0, 0.0], &LinearConfig::default()),
            Err(BaselineError::RaggedFeatures { .. })
        ));
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let x = vec![
            vec![5.0, 1.0],
            vec![5.0, -1.0],
            vec![5.0, 1.0],
            vec![5.0, -1.0],
        ];
        let y = vec![1.0, 0.0, 1.0, 0.0];
        let m = LogisticRegressor::fit(&x, &y, &LinearConfig::default()).unwrap();
        let p = m.predict_proba(&x);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[0] > 0.9 && p[1] < 0.1);
    }
}
