//! # relgraph-baselines
//!
//! The comparators the paper's evaluation pits relational deep learning
//! against:
//!
//! * [`features`] — the "diligent data scientist": hand-style temporal
//!   aggregate feature engineering over FK joins (counts, sums, means and
//!   recency per time window, including one dimension-table hop);
//! * [`linear`] — logistic and ridge-linear regression on those features;
//! * [`gbdt`] — gradient-boosted decision stumps (the LightGBM stand-in);
//! * [`trivial`] — prior/mean predictors and popularity / co-visitation
//!   recommenders.
//!
//! All models consume plain `&[Vec<f64>]` feature rows and are fully
//! deterministic given their configs.

pub mod error;
pub mod features;
pub mod gbdt;
pub mod linear;
pub mod multiclass;
pub mod trivial;

pub use error::{BaselineError, BaselineResult};
pub use features::{FeatureConfig, FeatureEngineer};
pub use gbdt::{Gbdt, GbdtConfig, GbdtObjective};
pub use linear::{LinearConfig, LinearRegressor, LogisticRegressor};
pub use multiclass::{MajorityClass, MulticlassGbdt, MulticlassLogReg};
pub use trivial::{CoVisitRecommender, MeanRegressor, PopularityRecommender, PriorClassifier};
