//! Property-based tests for the feature engineer — above all the
//! leak-freedom invariant: features anchored at time `t` must be identical
//! whether or not the database contains rows after `t`.

use proptest::prelude::*;
use relgraph_baselines::{FeatureConfig, FeatureEngineer};
use relgraph_store::{DataType, Database, Row, TableSchema, Value, SECONDS_PER_DAY};

fn schema_db() -> Database {
    let mut db = Database::new("d");
    db.create_table(
        TableSchema::builder("users")
            .column("user_id", DataType::Int)
            .column("joined", DataType::Timestamp)
            .primary_key("user_id")
            .time_column("joined")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("events")
            .column("event_id", DataType::Int)
            .column("user_id", DataType::Int)
            .column("amount", DataType::Float)
            .column("at", DataType::Timestamp)
            .primary_key("event_id")
            .time_column("at")
            .foreign_key("user_id", "users")
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

/// `(user, amount, day)` event tuples over a fixed 3-user population.
fn events_strategy() -> impl Strategy<Value = Vec<(usize, f64, i64)>> {
    proptest::collection::vec((0usize..3, -5.0f64..5.0, 0i64..200), 0..40)
}

fn build(events: &[(usize, f64, i64)]) -> Database {
    let mut db = schema_db();
    for u in 0..3i64 {
        db.insert("users", Row::new().push(u).push(Value::Timestamp(0)))
            .unwrap();
    }
    for (i, &(u, amount, day)) in events.iter().enumerate() {
        db.insert(
            "events",
            Row::new()
                .push(i as i64)
                .push(u as i64)
                .push(amount)
                .push(Value::Timestamp(day * SECONDS_PER_DAY)),
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The leak-freedom property: adding strictly-future rows must not
    /// change any feature anchored in the past.
    #[test]
    fn features_invariant_to_future_rows(
        past in events_strategy(),
        future in events_strategy(),
        anchor_day in 1i64..200,
    ) {
        let anchor = anchor_day * SECONDS_PER_DAY;
        let past: Vec<_> =
            past.into_iter().filter(|&(_, _, d)| d * SECONDS_PER_DAY <= anchor).collect();
        let db_past = build(&past);
        // Same past plus rows strictly after the anchor.
        let mut combined = past.clone();
        combined.extend(
            future.into_iter().map(|(u, a, d)| (u, a, anchor_day + 1 + d)),
        );
        let db_full = build(&combined);

        let fe_past =
            FeatureEngineer::new(&db_past, "users", FeatureConfig::default()).unwrap();
        let fe_full =
            FeatureEngineer::new(&db_full, "users", FeatureConfig::default()).unwrap();
        prop_assert_eq!(fe_past.names(), fe_full.names());
        let seeds: Vec<(usize, i64)> = (0..3).map(|u| (u, anchor)).collect();
        let x_past = fe_past.compute(&db_past, &seeds).unwrap();
        let x_full = fe_full.compute(&db_full, &seeds).unwrap();
        for (row_p, row_f) in x_past.iter().zip(&x_full) {
            for (a, b) in row_p.iter().zip(row_f) {
                prop_assert!((a - b).abs() < 1e-9, "feature leaked: {a} vs {b}");
            }
        }
    }

    /// The all-history event count is non-decreasing in the anchor.
    #[test]
    fn alltime_count_monotone_in_anchor(events in events_strategy()) {
        let db = build(&events);
        let fe = FeatureEngineer::new(&db, "users", FeatureConfig::default()).unwrap();
        let slot = fe.names().iter().position(|n| n == "events.count_all").unwrap();
        for user in 0..3usize {
            let mut prev = -1.0;
            for day in (0..220).step_by(20) {
                let x = fe.compute(&db, &[(user, day * SECONDS_PER_DAY)]).unwrap();
                prop_assert!(x[0][slot] >= prev, "count_all decreased");
                prev = x[0][slot];
            }
        }
    }

    /// Window counts never exceed the all-history count, and widths match.
    #[test]
    fn window_counts_bounded_and_widths_consistent(
        events in events_strategy(),
        anchor_day in 0i64..220,
    ) {
        let db = build(&events);
        let fe = FeatureEngineer::new(&db, "users", FeatureConfig::default()).unwrap();
        let all = fe.names().iter().position(|n| n == "events.count_all").unwrap();
        let windows: Vec<usize> = fe
            .names()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with("events.count_") && !n.ends_with("_all"))
            .map(|(i, _)| i)
            .collect();
        let seeds: Vec<(usize, i64)> =
            (0..3).map(|u| (u, anchor_day * SECONDS_PER_DAY)).collect();
        let x = fe.compute(&db, &seeds).unwrap();
        for row in &x {
            prop_assert_eq!(row.len(), fe.num_features());
            for &w in &windows {
                prop_assert!(row[w] <= row[all] + 1e-9, "window count exceeds total");
            }
        }
    }

    /// Truncating the template list is a prefix operation on features.
    #[test]
    fn max_features_is_a_prefix(events in events_strategy(), keep in 1usize..10) {
        let db = build(&events);
        let full = FeatureEngineer::new(&db, "users", FeatureConfig::default()).unwrap();
        let cut = FeatureEngineer::new(
            &db,
            "users",
            FeatureConfig { max_features: Some(keep), ..Default::default() },
        )
        .unwrap();
        let k = keep.min(full.num_features());
        prop_assert_eq!(&full.names()[..k], cut.names());
        let seeds = [(0usize, 100 * SECONDS_PER_DAY)];
        let xf = full.compute(&db, &seeds).unwrap();
        let xc = cut.compute(&db, &seeds).unwrap();
        prop_assert_eq!(&xf[0][..k], &xc[0][..]);
    }
}
