//! Error types for tensor operations.

use std::fmt;

/// Result alias for tensor operations.
pub type TensorResult<T> = Result<T, TensorError>;

/// Errors from tensor / autodiff operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that had to agree did not.
    ShapeMismatch {
        op: &'static str,
        lhs: (usize, usize),
        rhs: (usize, usize),
    },
    /// An index (row gather, segment id) exceeded its bound.
    IndexOutOfRange {
        op: &'static str,
        index: usize,
        bound: usize,
    },
    /// `backward` called on a non-scalar node.
    NonScalarLoss { shape: (usize, usize) },
    /// A numeric problem (NaN/Inf encountered where forbidden).
    NonFinite { op: &'static str },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::IndexOutOfRange { op, index, bound } => {
                write!(f, "index {index} out of range {bound} in `{op}`")
            }
            TensorError::NonScalarLoss { shape } => {
                write!(
                    f,
                    "backward requires a 1x1 loss, got {}x{}",
                    shape.0, shape.1
                )
            }
            TensorError::NonFinite { op } => write!(f, "non-finite value produced by `{op}`"),
        }
    }
}

impl std::error::Error for TensorError {}
