//! Dense row-major 2-D `f64` tensors with the handful of BLAS-like kernels
//! the autodiff engine needs.

use std::fmt;

/// A dense row-major matrix of `f64`. Vectors are `1×d` or `n×1` tensors;
/// scalars are `1×1`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Tensor { rows, cols, data: vec![v; rows * cols] }
    }

    /// A `1×1` scalar.
    pub fn scalar(v: f64) -> Self {
        Tensor { rows: 1, cols: 1, data: vec![v] }
    }

    /// From raw row-major data. Panics if the length is not `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data must have rows*cols elements");
        Tensor { rows, cols, data }
    }

    /// From row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Tensor { rows: r, cols: c, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set element at (`r`, `c`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The single element of a `1×1` tensor. Panics otherwise.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix product `self × rhs` (naive ikj loop). Panics on shape
    /// mismatch — shape checking happens in the tape layer.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise binary map (panics on shape mismatch).
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shapes must agree");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&a| f(a)).collect() }
    }

    /// In-place `self += rhs` (panics on shape mismatch).
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shapes must agree");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self *= c`.
    pub fn scale_assign(&mut self, c: f64) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|&a| a * a).sum::<f64>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(a.matmul(&b), Tensor::scalar(3.0));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_helpers() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.zip_map(&b, |x, y| x * y), Tensor::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f64::abs), Tensor::from_rows(&[&[1.0, 2.0]]));
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, Tensor::from_rows(&[&[4.0, 2.0]]));
        c.scale_assign(0.5);
        assert_eq!(c, Tensor::from_rows(&[&[2.0, 1.0]]));
        assert_eq!(b.sum(), 7.0);
        assert!(a.all_finite());
        assert!(!Tensor::scalar(f64::NAN).all_finite());
    }

    #[test]
    #[should_panic]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn item_on_matrix_panics() {
        let _ = Tensor::zeros(2, 2).item();
    }
}
