//! Dense row-major 2-D `f64` tensors with the handful of BLAS-like kernels
//! the autodiff engine needs.
//!
//! [`Tensor::matmul`] is cache-blocked and parallelizes over disjoint
//! output-row blocks. Every kernel accumulates each output element in
//! ascending inner-index order regardless of blocking or thread count, so
//! results are **bit-identical** to the naive serial kernels — blocking
//! changes the traversal, never the floating-point summation order per
//! element. The fused [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`] avoid
//! materializing transposes in the autodiff backward pass.

use std::fmt;

use rayon::prelude::*;

/// Below this many multiply-adds a matmul runs single-threaded — thread
/// fan-out costs more than the multiplication itself.
/// Benchmark hook: when set, every matmul variant routes through the
/// pre-optimization path (serial naive ikj kernel, transposes materialized)
/// so the pipeline bench can measure before/after in a single run.
static BASELINE_MATMUL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Toggle the pre-optimization matmul path (benchmarks only; thread-global).
pub fn set_baseline_matmul(on: bool) {
    BASELINE_MATMUL.store(on, std::sync::atomic::Ordering::Relaxed);
}

fn baseline_matmul() -> bool {
    BASELINE_MATMUL.load(std::sync::atomic::Ordering::Relaxed)
}

const PAR_FLOPS_THRESHOLD: usize = 64 * 64 * 64;

/// Output rows per parallel task (also the unit of A-row cache reuse).
const ROW_BLOCK: usize = 32;

/// Inner-dimension block: one block of B rows (`K_BLOCK × cols` values)
/// stays resident in cache while a row block of A streams over it.
const K_BLOCK: usize = 128;

/// A dense row-major matrix of `f64`. Vectors are `1×d` or `n×1` tensors;
/// scalars are `1×1`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// A `1×1` scalar.
    pub fn scalar(v: f64) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// From raw row-major data. Panics if the length is not `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data must have rows*cols elements"
        );
        Tensor { rows, cols, data }
    }

    /// From row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Tensor {
            rows: r,
            cols: c,
            data,
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set element at (`r`, `c`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The single element of a `1×1` tensor. Panics otherwise.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix product `self × rhs`: cache-blocked, parallel over output-row
    /// blocks for large shapes, falling back to the naive kernel when the
    /// work wouldn't cover the fan-out cost. Bit-identical to
    /// [`Tensor::matmul_naive`] at any thread count (per-element
    /// accumulation order is ascending `k` in both). Panics on shape
    /// mismatch — shape checking happens in the tape layer.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let (m, n, kd) = (self.rows, rhs.cols, self.cols);
        if relgraph_obs::enabled() {
            relgraph_obs::add("tensor.matmul.calls", 1);
            relgraph_obs::add("tensor.matmul.flops", 2 * (m * n * kd) as u64);
        }
        if baseline_matmul() || m * n * kd < PAR_FLOPS_THRESHOLD || n == 0 {
            relgraph_obs::add("tensor.matmul.naive_calls", 1);
            return self.matmul_naive(rhs);
        }
        relgraph_obs::add("tensor.matmul.blocked_calls", 1);
        let mut out = Tensor::zeros(m, n);
        out.data
            .par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(chunk, out_block)| {
                let i0 = chunk * ROW_BLOCK;
                let rows_here = out_block.len() / n;
                // k-blocking: one B block stays cache-resident while every row
                // of this A block streams over it. Per output element the
                // accumulation order is still ascending k.
                for k0 in (0..kd).step_by(K_BLOCK) {
                    let k1 = (k0 + K_BLOCK).min(kd);
                    for di in 0..rows_here {
                        let a_row = &self.row(i0 + di)[k0..k1];
                        let out_row = &mut out_block[di * n..(di + 1) * n];
                        for (dk, &a) in a_row.iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let b_row = rhs.row(k0 + dk);
                            for (o, &b) in out_row.iter_mut().zip(b_row) {
                                *o += a * b;
                            }
                        }
                    }
                }
            });
        out
    }

    /// Reference matmul: the plain serial ikj loop. Kept public as the
    /// ground truth for property tests and the pre-optimization baseline in
    /// benchmarks.
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Fused `self × rhsᵀ` (`m×k · (n×k)ᵀ → m×n`) without materializing the
    /// transpose: every output element is a dot product of two contiguous
    /// rows, accumulated in ascending `k` order (thread count never affects
    /// the result).
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.cols, "matmul_nt inner dimensions must agree");
        if relgraph_obs::enabled() {
            relgraph_obs::add("tensor.matmul.calls", 1);
            relgraph_obs::add(
                "tensor.matmul.flops",
                2 * (self.rows * rhs.rows * self.cols) as u64,
            );
        }
        if baseline_matmul() {
            return self.matmul_naive(&rhs.transpose());
        }
        let (m, n) = (self.rows, rhs.rows);
        let mut out = Tensor::zeros(m, n);
        if n == 0 {
            return out;
        }
        let serial = m * n * self.cols < PAR_FLOPS_THRESHOLD;
        let body = |(i, out_row): (usize, &mut [f64])| {
            let a_row = self.row(i);
            for (o, j) in out_row.iter_mut().zip(0..n) {
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(rhs.row(j)) {
                    acc += a * b;
                }
                *o = acc;
            }
        };
        if serial {
            out.data.chunks_mut(n).enumerate().for_each(body);
        } else {
            out.data.par_chunks_mut(n).enumerate().for_each(body);
        }
        out
    }

    /// Fused `selfᵀ × rhs` (`(m×k)ᵀ · m×n → k×n`) without materializing the
    /// transpose. Parallel tasks own disjoint output-row blocks and each
    /// accumulates over the shared dimension in ascending order, so the
    /// result matches `self.transpose().matmul(rhs)` bit-for-bit.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "matmul_tn outer dimensions must agree");
        if relgraph_obs::enabled() {
            relgraph_obs::add("tensor.matmul.calls", 1);
            relgraph_obs::add(
                "tensor.matmul.flops",
                2 * (self.cols * rhs.cols * self.rows) as u64,
            );
        }
        if baseline_matmul() {
            return self.transpose().matmul_naive(rhs);
        }
        let (kd, n, m) = (self.cols, rhs.cols, self.rows);
        let mut out = Tensor::zeros(kd, n);
        if n == 0 || kd == 0 {
            return out;
        }
        let serial = m * n * kd < PAR_FLOPS_THRESHOLD;
        let body = |(chunk, out_block): (usize, &mut [f64])| {
            let p0 = chunk * ROW_BLOCK;
            let rows_here = out_block.len() / n;
            for i in 0..m {
                let a_row = self.row(i);
                let b_row = rhs.row(i);
                for dp in 0..rows_here {
                    let a = a_row[p0 + dp];
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut out_block[dp * n..(dp + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        };
        if serial {
            out.data
                .chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        } else {
            out.data
                .par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise binary map (panics on shape mismatch).
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shapes must agree");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// In-place `self += rhs` (panics on shape mismatch).
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shapes must agree");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self *= c`.
    pub fn scale_assign(&mut self, c: f64) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|&a| a * a).sum::<f64>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(a.matmul(&b), Tensor::scalar(3.0));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_helpers() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(
            a.zip_map(&b, |x, y| x * y),
            Tensor::from_rows(&[&[3.0, -8.0]])
        );
        assert_eq!(a.map(f64::abs), Tensor::from_rows(&[&[1.0, 2.0]]));
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, Tensor::from_rows(&[&[4.0, 2.0]]));
        c.scale_assign(0.5);
        assert_eq!(c, Tensor::from_rows(&[&[2.0, 1.0]]));
        assert_eq!(b.sum(), 7.0);
        assert!(a.all_finite());
        assert!(!Tensor::scalar(f64::NAN).all_finite());
    }

    #[test]
    #[should_panic]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn item_on_matrix_panics() {
        let _ = Tensor::zeros(2, 2).item();
    }
}
