//! Dense row-major 2-D `f64` tensors with the handful of BLAS-like kernels
//! the autodiff engine needs.
//!
//! [`Tensor::matmul`] dispatches by size: tiny products run the naive
//! serial kernel (blocking overhead would dominate), everything else runs
//! the register-tiled FMA microkernel from [`crate::kernels`], serial below
//! `PAR_FLOPS_THRESHOLD` multiply-adds and parallel over disjoint
//! output-row panels above it. Each output element is accumulated by a
//! fixed `mul_add` chain that depends only on its input row/column — never
//! on tiling, panel boundaries or thread count — so results are
//! **bit-identical across thread counts** (and serial vs parallel), and
//! agree with [`Tensor::matmul_naive`] to rounding (FMA keeps one more bit
//! per step, so the microkernel is the *more* accurate of the two). The
//! fused [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`] avoid materializing
//! transposes in the autodiff backward pass, and
//! [`Tensor::matmul_bias_act`] fuses the linear-layer epilogue
//! (`+ bias`, activation) into the same output pass.

use std::fmt;

use rayon::prelude::*;

use crate::kernels::{self, ActKind};

/// Benchmark hook: when set, every matmul variant routes through the
/// pre-optimization path (serial naive ikj kernel, transposes materialized,
/// fused epilogues split into separate passes) so the pipeline bench can
/// measure before/after in a single run.
static BASELINE_MATMUL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Toggle the pre-optimization matmul path (benchmarks only; thread-global).
pub fn set_baseline_matmul(on: bool) {
    BASELINE_MATMUL.store(on, std::sync::atomic::Ordering::Relaxed);
}

pub(crate) fn baseline_matmul() -> bool {
    BASELINE_MATMUL.load(std::sync::atomic::Ordering::Relaxed)
}

/// Below this many multiply-adds, `matmul` falls back to the naive serial
/// kernel: register blocking and the runtime feature-dispatch indirection
/// cost more than the multiplication itself at these sizes.
pub(crate) const NAIVE_FLOPS_THRESHOLD: usize = 32 * 32 * 32;

/// Below this many multiply-adds a matmul runs the microkernel
/// single-threaded — thread fan-out costs more than the multiplication.
pub(crate) const PAR_FLOPS_THRESHOLD: usize = 64 * 64 * 64;

/// Output rows per parallel task (also the unit of A-row cache reuse).
/// Panel boundaries are a fixed function of this constant, never of the
/// worker count, so splitting work across threads cannot move an output
/// element between differently-shaped tiles.
const ROW_BLOCK: usize = 32;

/// A dense row-major matrix of `f64`. Vectors are `1×d` or `n×1` tensors;
/// scalars are `1×1`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f64) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// A `1×1` scalar.
    pub fn scalar(v: f64) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// From raw row-major data. Panics if the length is not `rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data must have rows*cols elements"
        );
        Tensor { rows, cols, data }
    }

    /// From row slices. Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Tensor {
            rows: r,
            cols: c,
            data,
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set element at (`r`, `c`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The single element of a `1×1` tensor. Panics otherwise.
    pub fn item(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Consume the tensor and return its backing buffer — the recycling
    /// half of the tape's scratch-buffer pool.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// A zeroed `rows×cols` tensor reusing `buf`'s capacity. Semantically
    /// identical to [`Tensor::zeros`] (the buffer is cleared and refilled
    /// with `0.0`), but allocation-free when the buffer is large enough.
    pub fn from_buffer(rows: usize, cols: usize, mut buf: Vec<f64>) -> Self {
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Tensor {
            rows,
            cols,
            data: buf,
        }
    }

    /// Matrix product `self × rhs`. Size-dispatched: naive below
    /// `NAIVE_FLOPS_THRESHOLD`, register-tiled FMA microkernel above
    /// (serial, then parallel over output-row panels past
    /// `PAR_FLOPS_THRESHOLD`). Bit-identical across thread counts; agrees
    /// with [`Tensor::matmul_naive`] to rounding. Panics on shape
    /// mismatch — shape checking happens in the tape layer.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into a caller-provided `m×n` output
    /// (its prior contents are ignored) — the allocation-free entry point
    /// for the tape's buffer pool.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.mm_fused_into(rhs, None, ActKind::Identity, out);
    }

    /// Fused linear-layer forward `act(self × rhs + bias)` in a single
    /// output pass: the bias add and activation run in the epilogue of the
    /// matmul microkernel while the output panel is still cache-hot.
    ///
    /// `bias` is `1×n`, broadcast over rows. The result is **bit-identical**
    /// to the unfused `matmul → add-row → activation` composition at every
    /// size (the matmul part takes the same dispatch path, and the epilogue
    /// applies `act(Σ + bias)` to the fully accumulated element exactly as
    /// the separate passes would).
    pub fn matmul_bias_act(&self, rhs: &Tensor, bias: &Tensor, act: ActKind) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        self.matmul_bias_act_into(rhs, bias, act, &mut out);
        out
    }

    /// [`Tensor::matmul_bias_act`] writing into a caller-provided `m×n`
    /// output (prior contents ignored).
    pub fn matmul_bias_act_into(
        &self,
        rhs: &Tensor,
        bias: &Tensor,
        act: ActKind,
        out: &mut Tensor,
    ) {
        assert_eq!(bias.rows, 1, "bias must be a 1×n row vector");
        assert_eq!(bias.cols, rhs.cols, "bias width must match output width");
        self.mm_fused_into(rhs, Some(bias), act, out);
    }

    /// Shared dispatch for plain and fused matmul.
    fn mm_fused_into(&self, rhs: &Tensor, bias: Option<&Tensor>, act: ActKind, out: &mut Tensor) {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let (m, n, kd) = (self.rows, rhs.cols, self.cols);
        assert_eq!(out.shape(), (m, n), "matmul output shape mismatch");
        if relgraph_obs::enabled() {
            relgraph_obs::add("tensor.matmul.calls", 1);
            // The fused kernel still performs the full 2·m·n·k multiply-add
            // work plus one add per output element for the bias.
            let bias_flops = if bias.is_some() { (m * n) as u64 } else { 0 };
            relgraph_obs::add("tensor.matmul.flops", 2 * (m * n * kd) as u64 + bias_flops);
            if bias.is_some() {
                relgraph_obs::add("tensor.matmul.fused_calls", 1);
            }
        }
        if m * n == 0 {
            return;
        }
        if baseline_matmul() || m * n * kd < NAIVE_FLOPS_THRESHOLD {
            // Small-product fallback (and the benchmark baseline path):
            // naive matmul, then bias/activation as separate passes — the
            // exact unfused composition, so fused results never depend on
            // which dispatch branch ran.
            relgraph_obs::add("tensor.matmul.naive_calls", 1);
            self.naive_into(rhs, out);
            match (bias, act) {
                (None, ActKind::Identity) => {}
                _ => {
                    let bias = bias.map(Tensor::data);
                    for r in 0..m {
                        let orow = &mut out.data[r * n..(r + 1) * n];
                        for (j, o) in orow.iter_mut().enumerate() {
                            let s = bias.map_or(*o, |bv| *o + bv[j]);
                            *o = act.apply(s);
                        }
                    }
                }
            }
            return;
        }
        relgraph_obs::add("tensor.matmul.blocked_calls", 1);
        let bias = bias.map(Tensor::data);
        let packed = kernels::pack_b(&rhs.data, kd, n);
        let body = |(chunk, out_block): (usize, &mut [f64])| {
            let i0 = chunk * ROW_BLOCK;
            let rows_here = out_block.len() / n;
            let a_panel = &self.data[i0 * kd..(i0 + rows_here) * kd];
            kernels::mm_panel(a_panel, &packed, out_block, rows_here, kd, n, bias, act);
        };
        if m * n * kd < PAR_FLOPS_THRESHOLD {
            out.data
                .chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        } else {
            out.data
                .par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        }
    }

    /// Reference matmul: the plain serial ikj loop. Kept public as the
    /// ground truth for property tests and the pre-optimization baseline in
    /// benchmarks.
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions must agree");
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        self.naive_into(rhs, &mut out);
        out
    }

    /// Naive ikj kernel into a pre-shaped output (overwrites contents).
    fn naive_into(&self, rhs: &Tensor, out: &mut Tensor) {
        out.data.fill(0.0);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
    }

    /// Fused `self × rhsᵀ` (`m×k · (n×k)ᵀ → m×n`) without materializing the
    /// transpose: every output element is a dot product of two contiguous
    /// rows, split into fixed interleaved `mul_add` lanes (see
    /// [`crate::kernels`]) so thread count never affects the result.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] writing into a caller-provided `m×n` output
    /// (prior contents ignored).
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.cols, rhs.cols, "matmul_nt inner dimensions must agree");
        let (m, n, kd) = (self.rows, rhs.rows, self.cols);
        assert_eq!(out.shape(), (m, n), "matmul_nt output shape mismatch");
        if relgraph_obs::enabled() {
            relgraph_obs::add("tensor.matmul.calls", 1);
            relgraph_obs::add("tensor.matmul.flops", 2 * (m * n * kd) as u64);
        }
        if baseline_matmul() {
            *out = self.matmul_naive(&rhs.transpose());
            return;
        }
        if m * n == 0 {
            return;
        }
        let body = |(chunk, out_block): (usize, &mut [f64])| {
            let i0 = chunk * ROW_BLOCK;
            let rows_here = out_block.len() / n;
            let a_panel = &self.data[i0 * kd..(i0 + rows_here) * kd];
            kernels::mm_nt_panel(a_panel, &rhs.data, out_block, rows_here, kd, n);
        };
        if m * n * kd < PAR_FLOPS_THRESHOLD {
            out.data
                .chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        } else {
            out.data
                .par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        }
    }

    /// Fused `selfᵀ × rhs` (`(m×k)ᵀ · m×n → k×n`) without materializing the
    /// transpose. Parallel tasks own disjoint output-row panels and each
    /// element accumulates over the shared dimension in ascending order
    /// with `mul_add`, so the result is independent of thread count.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul_tn`] writing into a caller-provided `k×n` output
    /// (prior contents ignored).
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rows, rhs.rows, "matmul_tn outer dimensions must agree");
        let (kd, n, m) = (self.cols, rhs.cols, self.rows);
        assert_eq!(out.shape(), (kd, n), "matmul_tn output shape mismatch");
        if relgraph_obs::enabled() {
            relgraph_obs::add("tensor.matmul.calls", 1);
            relgraph_obs::add("tensor.matmul.flops", 2 * (kd * n * m) as u64);
        }
        if baseline_matmul() {
            *out = self.transpose().matmul_naive(rhs);
            return;
        }
        if n == 0 || kd == 0 {
            return;
        }
        out.data.fill(0.0);
        let body = |(chunk, out_block): (usize, &mut [f64])| {
            let p0 = chunk * ROW_BLOCK;
            let rows_here = out_block.len() / n;
            kernels::mm_tn_panel(&self.data, &rhs.data, out_block, p0, rows_here, m, kd, n);
        };
        if m * n * kd < PAR_FLOPS_THRESHOLD {
            out.data
                .chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        } else {
            out.data
                .par_chunks_mut(ROW_BLOCK * n)
                .enumerate()
                .for_each(body);
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise binary map (panics on shape mismatch).
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shapes must agree");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// In-place `self += rhs` (panics on shape mismatch).
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shapes must agree");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self *= c`.
    pub fn scale_assign(&mut self, c: f64) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|&a| a * a).sum::<f64>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(a.matmul(&b), Tensor::scalar(3.0));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_helpers() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(
            a.zip_map(&b, |x, y| x * y),
            Tensor::from_rows(&[&[3.0, -8.0]])
        );
        assert_eq!(a.map(f64::abs), Tensor::from_rows(&[&[1.0, 2.0]]));
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, Tensor::from_rows(&[&[4.0, 2.0]]));
        c.scale_assign(0.5);
        assert_eq!(c, Tensor::from_rows(&[&[2.0, 1.0]]));
        assert_eq!(b.sum(), 7.0);
        assert!(a.all_finite());
        assert!(!Tensor::scalar(f64::NAN).all_finite());
    }

    #[test]
    #[should_panic]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic]
    fn item_on_matrix_panics() {
        let _ = Tensor::zeros(2, 2).item();
    }
}
