//! Define-by-run reverse-mode autodiff over [`Tensor`]s.
//!
//! A [`Graph`] is a tape of eagerly-evaluated operations; [`Var`] indexes a
//! node. Calling [`Graph::backward`] on a scalar node fills the gradient of
//! every node that (transitively) requires one.
//!
//! The op set is a closed enum so every backward rule is visible in one
//! `match` and individually gradient-checked (see [`crate::gradcheck`]).
//!
//! ## Tape arena
//!
//! A `Graph` owns a scratch-buffer pool: [`Graph::reset`] clears the tape
//! for the next minibatch while recycling every node's value and gradient
//! buffer, so steady-state training performs almost no allocator traffic.
//! Pooled buffers are zero-filled on reuse ([`Tensor::from_buffer`]), which
//! makes a recycled tensor indistinguishable from a fresh
//! [`Tensor::zeros`] — reuse can never change results.

use crate::error::{TensorError, TensorResult};
use crate::kernels::ActKind;
use crate::tensor::Tensor;

/// Maximum number of scratch buffers retained across [`Graph::reset`].
/// Typical minibatch tapes hold well under this many nodes; the cap bounds
/// memory for pathological tapes.
const POOL_MAX_BUFFERS: usize = 256;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The operation that produced a node.
#[derive(Debug, Clone)]
pub enum Op {
    /// Differentiable input (parameter or feature tensor).
    Leaf,
    /// Non-differentiable input (targets, masks).
    Constant,
    /// Matrix product.
    MatMul(Var, Var),
    /// Elementwise sum of same-shape tensors.
    Add(Var, Var),
    /// Elementwise difference.
    Sub(Var, Var),
    /// Elementwise (Hadamard) product.
    Mul(Var, Var),
    /// Multiply by a compile-time scalar.
    Scale(Var, f64),
    /// Add a `1×d` row vector to every row of an `n×d` tensor.
    AddRow(Var, Var),
    /// Fused linear layer `act(x·w + b)` evaluated in one kernel pass;
    /// bit-identical to the `MatMul → AddRow → activation` composition.
    LinearAct {
        /// Input activations (`m×k`).
        x: Var,
        /// Weight matrix (`k×n`).
        w: Var,
        /// Bias row (`1×n`).
        b: Var,
        /// Fused activation.
        act: ActKind,
    },
    /// Rectified linear unit.
    Relu(Var),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(Var, f64),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// `ln(1+e^x)`, numerically stabilized.
    Softplus(Var),
    /// Select rows by index (with repetition) from an `n×d` tensor.
    GatherRows(Var, Vec<usize>),
    /// Sum rows into `num_segments` buckets: `out[seg[i]] += in[i]`.
    SegmentSum {
        input: Var,
        segments: Vec<usize>,
        num_segments: usize,
    },
    /// Mean of rows per bucket (empty buckets stay zero).
    SegmentMean {
        input: Var,
        segments: Vec<usize>,
        num_segments: usize,
    },
    /// Columnwise max of rows per bucket (empty buckets stay zero);
    /// gradient flows to the (first) argmax row per (bucket, column).
    SegmentMax {
        input: Var,
        segments: Vec<usize>,
        num_segments: usize,
    },
    /// Concatenate tensors with equal row counts along columns.
    ConcatCols(Vec<Var>),
    /// Sum of all elements (`1×1`).
    SumAll(Var),
    /// Mean of all elements (`1×1`).
    MeanAll(Var),
    /// Row-wise log-softmax.
    LogSoftmax(Var),
    /// Elementwise Huber loss between prediction and target.
    Huber { pred: Var, target: Var, delta: f64 },
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    requires_grad: bool,
}

/// A tape of eagerly-evaluated tensor operations supporting reverse-mode
/// differentiation. Create one per training loop and [`Graph::reset`] it
/// between forward passes to reuse its buffers.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Recycled backing buffers from previous tapes (see [`Graph::reset`]).
    pool: Vec<Vec<f64>>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clear the tape for the next forward pass, recycling every node's
    /// value and gradient buffer into the scratch pool (and keeping the
    /// node vector's capacity). Results are unaffected: pooled buffers are
    /// zero-filled on reuse, exactly like a fresh allocation.
    pub fn reset(&mut self) {
        let Graph { nodes, pool } = self;
        for node in nodes.drain(..) {
            recycle(pool, node.value);
            if let Some(g) = node.grad {
                recycle(pool, g);
            }
        }
    }

    /// A zeroed `rows×cols` tensor, reusing a pooled buffer when one is
    /// available.
    fn alloc(&mut self, rows: usize, cols: usize) -> Tensor {
        alloc_from(&mut self.pool, rows, cols)
    }

    /// Insert a differentiable leaf whose value is copied from `t` into a
    /// pooled buffer — the allocation-free alternative to
    /// `leaf(t.clone())` for per-batch parameter binding.
    pub fn leaf_copied(&mut self, t: &Tensor) -> Var {
        let v = self.copied(t);
        self.leaf(v)
    }

    /// Insert a constant whose value is copied from `t` into a pooled
    /// buffer.
    pub fn constant_copied(&mut self, t: &Tensor) -> Var {
        let v = self.copied(t);
        self.constant(v)
    }

    fn copied(&mut self, t: &Tensor) -> Tensor {
        let (r, c) = t.shape();
        let mut v = self.alloc(r, c);
        v.data_mut().copy_from_slice(t.data());
        v
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of a node, if `backward` has produced one.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Insert a differentiable leaf (parameter / input).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Insert a constant (no gradient is computed for it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// Matrix product `a × b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.try_matmul(a, b).expect("matmul shape mismatch")
    }

    /// Checked matrix product.
    pub fn try_matmul(&mut self, a: Var, b: Var) -> TensorResult<Var> {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        if ac != br {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: (ar, ac),
                rhs: (br, bc),
            });
        }
        let mut v = self.alloc(ar, bc);
        self.value(a).matmul_into(self.value(b), &mut v);
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::MatMul(a, b), rg))
    }

    /// Fused linear layer `act(x·w + b)` — one kernel pass instead of the
    /// three-node `matmul → add_row → activation` chain, with bit-identical
    /// values and gradients.
    pub fn linear_act(&mut self, x: Var, w: Var, b: Var, act: ActKind) -> Var {
        self.try_linear_act(x, w, b, act)
            .expect("linear_act shape mismatch")
    }

    /// Checked fused linear layer.
    pub fn try_linear_act(&mut self, x: Var, w: Var, b: Var, act: ActKind) -> TensorResult<Var> {
        let (xr, xc) = self.value(x).shape();
        let (wr, wc) = self.value(w).shape();
        let (br, bc) = self.value(b).shape();
        if xc != wr {
            return Err(TensorError::ShapeMismatch {
                op: "linear_act",
                lhs: (xr, xc),
                rhs: (wr, wc),
            });
        }
        if br != 1 || bc != wc {
            return Err(TensorError::ShapeMismatch {
                op: "linear_act",
                lhs: (xr, wc),
                rhs: (br, bc),
            });
        }
        let mut v = self.alloc(xr, wc);
        self.value(x)
            .matmul_bias_act_into(self.value(w), self.value(b), act, &mut v);
        let rg = self.rg(x) || self.rg(w) || self.rg(b);
        Ok(self.push(v, Op::LinearAct { x, w, b, act }, rg))
    }

    /// Pooled elementwise unary op: `out = f(value(a))`.
    fn unary(&mut self, a: Var, f: impl Fn(f64) -> f64, op: Op) -> Var {
        let Graph { nodes, pool } = &mut *self;
        let v = map_pool(pool, &nodes[a.0].value, f);
        let rg = nodes[a.0].requires_grad;
        self.push(v, op, rg)
    }

    fn binary_same_shape(
        &mut self,
        op_name: &'static str,
        a: Var,
        b: Var,
        f: impl Fn(f64, f64) -> f64,
        mk: impl Fn(Var, Var) -> Op,
    ) -> TensorResult<Var> {
        if self.value(a).shape() != self.value(b).shape() {
            return Err(TensorError::ShapeMismatch {
                op: op_name,
                lhs: self.value(a).shape(),
                rhs: self.value(b).shape(),
            });
        }
        let Graph { nodes, pool } = &mut *self;
        let v = zip_pool(pool, &nodes[a.0].value, &nodes[b.0].value, f);
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, mk(a, b), rg))
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary_same_shape("add", a, b, |x, y| x + y, Op::Add)
            .expect("add shape mismatch")
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary_same_shape("sub", a, b, |x, y| x - y, Op::Sub)
            .expect("sub shape mismatch")
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary_same_shape("mul", a, b, |x, y| x * y, Op::Mul)
            .expect("mul shape mismatch")
    }

    /// `a * c` for scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        self.unary(a, move |x| x * c, Op::Scale(a, c))
    }

    /// Add row vector `b` (`1×d`) to every row of `a` (`n×d`).
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        self.try_add_row(a, b).expect("add_row shape mismatch")
    }

    /// Checked broadcasting row add.
    pub fn try_add_row(&mut self, a: Var, b: Var) -> TensorResult<Var> {
        let (ar, ac) = self.value(a).shape();
        let (br, bc) = self.value(b).shape();
        if br != 1 || bc != ac {
            return Err(TensorError::ShapeMismatch {
                op: "add_row",
                lhs: (ar, ac),
                rhs: (br, bc),
            });
        }
        let mut v = self.alloc(ar, ac);
        for i in 0..ar {
            let src = self.nodes[a.0].value.row(i);
            let brow = self.nodes[b.0].value.row(0);
            for ((x, &av), &bv) in v.row_mut(i).iter_mut().zip(src).zip(brow) {
                *x = av + bv;
            }
        }
        let rg = self.rg(a) || self.rg(b);
        Ok(self.push(v, Op::AddRow(a, b), rg))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, |x| x.max(0.0), Op::Relu(a))
    }

    /// Elementwise leaky ReLU.
    pub fn leaky_relu(&mut self, a: Var, slope: f64) -> Var {
        self.unary(
            a,
            move |x| if x > 0.0 { x } else { slope * x },
            Op::LeakyRelu(a, slope),
        )
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, sigmoid, Op::Sigmoid(a))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, f64::tanh, Op::Tanh(a))
    }

    /// Elementwise softplus `ln(1+e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        self.unary(a, softplus, Op::Softplus(a))
    }

    /// Gather rows of `a` by `indices` (repetition allowed).
    pub fn gather_rows(&mut self, a: Var, indices: Vec<usize>) -> TensorResult<Var> {
        let (n, d) = self.value(a).shape();
        if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
            return Err(TensorError::IndexOutOfRange {
                op: "gather_rows",
                index: bad,
                bound: n,
            });
        }
        let mut v = self.alloc(indices.len(), d);
        for (r, &i) in indices.iter().enumerate() {
            v.row_mut(r).copy_from_slice(self.nodes[a.0].value.row(i));
        }
        let rg = self.rg(a);
        Ok(self.push(v, Op::GatherRows(a, indices), rg))
    }

    /// Sum rows of `a` into `num_segments` buckets keyed by `segments`.
    pub fn segment_sum(
        &mut self,
        a: Var,
        segments: Vec<usize>,
        num_segments: usize,
    ) -> TensorResult<Var> {
        let (n, d) = self.value(a).shape();
        if segments.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "segment_sum",
                lhs: (n, d),
                rhs: (segments.len(), 1),
            });
        }
        if let Some(&bad) = segments.iter().find(|&&s| s >= num_segments) {
            return Err(TensorError::IndexOutOfRange {
                op: "segment_sum",
                index: bad,
                bound: num_segments,
            });
        }
        let mut v = self.alloc(num_segments, d);
        for (i, &s) in segments.iter().enumerate() {
            let src = self.nodes[a.0].value.row(i);
            for (x, &y) in v.row_mut(s).iter_mut().zip(src) {
                *x += y;
            }
        }
        let rg = self.rg(a);
        Ok(self.push(
            v,
            Op::SegmentSum {
                input: a,
                segments,
                num_segments,
            },
            rg,
        ))
    }

    /// Mean of rows of `a` per bucket (empty buckets are zero rows).
    pub fn segment_mean(
        &mut self,
        a: Var,
        segments: Vec<usize>,
        num_segments: usize,
    ) -> TensorResult<Var> {
        let (n, d) = self.value(a).shape();
        if segments.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "segment_mean",
                lhs: (n, d),
                rhs: (segments.len(), 1),
            });
        }
        if let Some(&bad) = segments.iter().find(|&&s| s >= num_segments) {
            return Err(TensorError::IndexOutOfRange {
                op: "segment_mean",
                index: bad,
                bound: num_segments,
            });
        }
        let mut v = self.alloc(num_segments, d);
        let mut counts = vec![0usize; num_segments];
        for (i, &s) in segments.iter().enumerate() {
            counts[s] += 1;
            let src = self.nodes[a.0].value.row(i);
            for (x, &y) in v.row_mut(s).iter_mut().zip(src) {
                *x += y;
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            if c > 1 {
                let inv = 1.0 / c as f64;
                for x in v.row_mut(s) {
                    *x *= inv;
                }
            }
        }
        let rg = self.rg(a);
        Ok(self.push(
            v,
            Op::SegmentMean {
                input: a,
                segments,
                num_segments,
            },
            rg,
        ))
    }

    /// Columnwise max of rows of `a` per bucket (empty buckets are zero
    /// rows — callers should ensure features are non-negative or treat
    /// empty buckets separately).
    pub fn segment_max(
        &mut self,
        a: Var,
        segments: Vec<usize>,
        num_segments: usize,
    ) -> TensorResult<Var> {
        let (n, d) = self.value(a).shape();
        if segments.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "segment_max",
                lhs: (n, d),
                rhs: (segments.len(), 1),
            });
        }
        if let Some(&bad) = segments.iter().find(|&&s| s >= num_segments) {
            return Err(TensorError::IndexOutOfRange {
                op: "segment_max",
                index: bad,
                bound: num_segments,
            });
        }
        let mut v = self.alloc(num_segments, d);
        let mut seen = vec![false; num_segments];
        for (i, &s) in segments.iter().enumerate() {
            let src = self.nodes[a.0].value.row(i);
            if !seen[s] {
                v.row_mut(s).copy_from_slice(src);
                seen[s] = true;
            } else {
                for (x, &y) in v.row_mut(s).iter_mut().zip(src) {
                    if y > *x {
                        *x = y;
                    }
                }
            }
        }
        let rg = self.rg(a);
        Ok(self.push(
            v,
            Op::SegmentMax {
                input: a,
                segments,
                num_segments,
            },
            rg,
        ))
    }

    /// Concatenate along columns (all inputs must share the row count).
    pub fn concat_cols(&mut self, parts: Vec<Var>) -> TensorResult<Var> {
        assert!(!parts.is_empty(), "concat_cols needs at least one input");
        let rows = self.value(parts[0]).rows();
        let mut total_cols = 0;
        for &p in &parts {
            let (r, c) = self.value(p).shape();
            if r != rows {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_cols",
                    lhs: (rows, 0),
                    rhs: (r, c),
                });
            }
            total_cols += c;
        }
        let mut v = self.alloc(rows, total_cols);
        let mut off = 0;
        for &p in &parts {
            let t = &self.nodes[p.0].value;
            let c = t.cols();
            for i in 0..rows {
                let dst_start = i * total_cols + off;
                v.data_mut()[dst_start..dst_start + c].copy_from_slice(t.row(i));
            }
            off += c;
        }
        let rg = parts.iter().any(|&p| self.rg(p));
        Ok(self.push(v, Op::ConcatCols(parts), rg))
    }

    /// Sum of all elements (scalar).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        let rg = self.rg(a);
        self.push(v, Op::SumAll(a), rg)
    }

    /// Mean of all elements (scalar).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).len().max(1) as f64;
        let v = Tensor::scalar(self.value(a).sum() / n);
        let rg = self.rg(a);
        self.push(v, Op::MeanAll(a), rg)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let (n, d) = self.value(a).shape();
        let mut v = self.alloc(n, d);
        for i in 0..n {
            let row = self.nodes[a.0].value.row(i);
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f64>().ln();
            for (j, &x) in row.iter().enumerate() {
                v.set(i, j, x - lse);
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::LogSoftmax(a), rg)
    }

    /// Elementwise Huber loss `h_δ(pred - target)`.
    pub fn huber(&mut self, pred: Var, target: Var, delta: f64) -> TensorResult<Var> {
        if self.value(pred).shape() != self.value(target).shape() {
            return Err(TensorError::ShapeMismatch {
                op: "huber",
                lhs: self.value(pred).shape(),
                rhs: self.value(target).shape(),
            });
        }
        let Graph { nodes, pool } = &mut *self;
        let v = zip_pool(
            pool,
            &nodes[pred.0].value,
            &nodes[target.0].value,
            |p, t| {
                let e = p - t;
                if e.abs() <= delta {
                    0.5 * e * e
                } else {
                    delta * (e.abs() - 0.5 * delta)
                }
            },
        );
        let rg = self.rg(pred) || self.rg(target);
        Ok(self.push(
            v,
            Op::Huber {
                pred,
                target,
                delta,
            },
            rg,
        ))
    }

    /// Run reverse-mode differentiation from the scalar node `loss`,
    /// populating gradients for every grad-requiring ancestor.
    ///
    /// The sweep borrows each node's gradient and op in place (children
    /// always have smaller indices, so `split_at_mut` separates the node
    /// being differentiated from the ancestors it accumulates into) — no
    /// per-node gradient or op clones.
    pub fn backward(&mut self, loss: Var) -> TensorResult<()> {
        let shape = self.value(loss).shape();
        if shape != (1, 1) {
            return Err(TensorError::NonScalarLoss { shape });
        }
        let Graph { nodes, pool } = &mut *self;
        nodes[loss.0].grad = Some(Tensor::scalar(1.0));
        for idx in (0..=loss.0).rev() {
            let (anc, rest) = nodes.split_at_mut(idx);
            let node = &rest[0];
            if !node.requires_grad {
                continue;
            }
            let Some(g) = node.grad.as_ref() else {
                continue;
            };
            match &node.op {
                Op::Leaf | Op::Constant => {}
                Op::MatMul(a, b) => {
                    if anc[a.0].requires_grad {
                        // dA = g·Bᵀ, fused (no transpose materialized).
                        let mut da = alloc_from(pool, g.rows(), anc[b.0].value.rows());
                        g.matmul_nt_into(&anc[b.0].value, &mut da);
                        accumulate(anc, pool, *a, da);
                    }
                    if anc[b.0].requires_grad {
                        // dB = Aᵀ·g, fused.
                        let mut db = alloc_from(pool, anc[a.0].value.cols(), g.cols());
                        anc[a.0].value.matmul_tn_into(g, &mut db);
                        accumulate(anc, pool, *b, db);
                    }
                }
                Op::LinearAct { x, w, b, act } => {
                    // dZ (gradient at the pre-activation `x·w + b`) uses the
                    // exact per-element formulas of the standalone
                    // Relu/LeakyRelu/Sigmoid/Tanh backward rules, evaluated
                    // from the stored output, so gradients stay bit-identical
                    // to the `MatMul → AddRow → activation` composition.
                    // (For Relu/LeakyRelu with positive slope, `out > 0 ⇔
                    // pre-activation > 0`, so gating on the output is exact.)
                    let dz_owned: Option<Tensor> = match act {
                        ActKind::Identity => None,
                        ActKind::Relu => Some(zip_pool(pool, g, &node.value, |gx, o| {
                            if o > 0.0 {
                                gx
                            } else {
                                0.0
                            }
                        })),
                        ActKind::LeakyRelu(s) => {
                            let s = *s;
                            Some(zip_pool(pool, g, &node.value, move |gx, o| {
                                if o > 0.0 {
                                    gx
                                } else {
                                    s * gx
                                }
                            }))
                        }
                        ActKind::Sigmoid => {
                            Some(zip_pool(pool, g, &node.value, |gx, o| gx * o * (1.0 - o)))
                        }
                        ActKind::Tanh => {
                            Some(zip_pool(pool, g, &node.value, |gx, o| gx * (1.0 - o * o)))
                        }
                    };
                    let dz: &Tensor = dz_owned.as_ref().unwrap_or(g);
                    if anc[x.0].requires_grad {
                        let mut dx = alloc_from(pool, dz.rows(), anc[w.0].value.rows());
                        dz.matmul_nt_into(&anc[w.0].value, &mut dx);
                        accumulate(anc, pool, *x, dx);
                    }
                    if anc[w.0].requires_grad {
                        let mut dw = alloc_from(pool, anc[x.0].value.cols(), dz.cols());
                        anc[x.0].value.matmul_tn_into(dz, &mut dw);
                        accumulate(anc, pool, *w, dw);
                    }
                    if anc[b.0].requires_grad {
                        let (n, d) = dz.shape();
                        let mut col = alloc_from(pool, 1, d);
                        for i in 0..n {
                            for (cx, &gv) in col.data_mut().iter_mut().zip(dz.row(i)) {
                                *cx += gv;
                            }
                        }
                        accumulate(anc, pool, *b, col);
                    }
                    if let Some(t) = dz_owned {
                        recycle(pool, t);
                    }
                }
                Op::Add(a, b) => {
                    accumulate_ref(anc, pool, *a, g);
                    accumulate_ref(anc, pool, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate_ref(anc, pool, *a, g);
                    if anc[b.0].requires_grad {
                        let d = map_pool(pool, g, |x| -x);
                        accumulate(anc, pool, *b, d);
                    }
                }
                Op::Mul(a, b) => {
                    if anc[a.0].requires_grad {
                        let d = zip_pool(pool, g, &anc[b.0].value, |x, y| x * y);
                        accumulate(anc, pool, *a, d);
                    }
                    if anc[b.0].requires_grad {
                        let d = zip_pool(pool, g, &anc[a.0].value, |x, y| x * y);
                        accumulate(anc, pool, *b, d);
                    }
                }
                Op::Scale(a, c) => {
                    if anc[a.0].requires_grad {
                        let d = map_pool(pool, g, |x| x * c);
                        accumulate(anc, pool, *a, d);
                    }
                }
                Op::AddRow(a, b) => {
                    accumulate_ref(anc, pool, *a, g);
                    if anc[b.0].requires_grad {
                        let (n, d) = g.shape();
                        let mut col = alloc_from(pool, 1, d);
                        for i in 0..n {
                            for (x, &gv) in col.data_mut().iter_mut().zip(g.row(i)) {
                                *x += gv;
                            }
                        }
                        accumulate(anc, pool, *b, col);
                    }
                }
                Op::Relu(a) => {
                    let d = zip_pool(
                        pool,
                        g,
                        &anc[a.0].value,
                        |gx, x| {
                            if x > 0.0 {
                                gx
                            } else {
                                0.0
                            }
                        },
                    );
                    accumulate(anc, pool, *a, d);
                }
                Op::LeakyRelu(a, slope) => {
                    let slope = *slope;
                    let d = zip_pool(pool, g, &anc[a.0].value, move |gx, x| {
                        if x > 0.0 {
                            gx
                        } else {
                            slope * gx
                        }
                    });
                    accumulate(anc, pool, *a, d);
                }
                Op::Sigmoid(a) => {
                    let d = zip_pool(pool, g, &node.value, |gx, s| gx * s * (1.0 - s));
                    accumulate(anc, pool, *a, d);
                }
                Op::Tanh(a) => {
                    let d = zip_pool(pool, g, &node.value, |gx, t| gx * (1.0 - t * t));
                    accumulate(anc, pool, *a, d);
                }
                Op::Softplus(a) => {
                    let d = zip_pool(pool, g, &anc[a.0].value, |gx, x| gx * sigmoid(x));
                    accumulate(anc, pool, *a, d);
                }
                Op::GatherRows(a, indices) => {
                    let (n, d) = anc[a.0].value.shape();
                    let mut da = alloc_from(pool, n, d);
                    for (r, &i) in indices.iter().enumerate() {
                        for (x, &y) in da.row_mut(i).iter_mut().zip(g.row(r)) {
                            *x += y;
                        }
                    }
                    accumulate(anc, pool, *a, da);
                }
                Op::SegmentSum {
                    input, segments, ..
                } => {
                    let (n, d) = anc[input.0].value.shape();
                    let mut da = alloc_from(pool, n, d);
                    for (i, &s) in segments.iter().enumerate() {
                        da.row_mut(i).copy_from_slice(g.row(s));
                    }
                    accumulate(anc, pool, *input, da);
                }
                Op::SegmentMean {
                    input,
                    segments,
                    num_segments,
                } => {
                    let (n, d) = anc[input.0].value.shape();
                    let mut counts = vec![0usize; *num_segments];
                    for &s in segments {
                        counts[s] += 1;
                    }
                    let mut da = alloc_from(pool, n, d);
                    for (i, &s) in segments.iter().enumerate() {
                        let inv = 1.0 / counts[s] as f64;
                        for (x, &y) in da.row_mut(i).iter_mut().zip(g.row(s)) {
                            *x = y * inv;
                        }
                    }
                    accumulate(anc, pool, *input, da);
                }
                Op::SegmentMax {
                    input,
                    segments,
                    num_segments,
                } => {
                    let value = &anc[input.0].value;
                    let (n, d) = value.shape();
                    // Recompute the argmax row per (segment, column).
                    let mut arg: Vec<Vec<Option<usize>>> = vec![vec![None; d]; *num_segments];
                    for (i, &s) in segments.iter().enumerate() {
                        for (c, slot) in arg[s].iter_mut().enumerate() {
                            let x = value.get(i, c);
                            match *slot {
                                None => *slot = Some(i),
                                Some(j) if x > value.get(j, c) => *slot = Some(i),
                                _ => {}
                            }
                        }
                    }
                    let mut da = alloc_from(pool, n, d);
                    for (s, cols) in arg.iter().enumerate() {
                        for (c, &winner) in cols.iter().enumerate() {
                            if let Some(i) = winner {
                                da.set(i, c, da.get(i, c) + g.get(s, c));
                            }
                        }
                    }
                    accumulate(anc, pool, *input, da);
                }
                Op::ConcatCols(parts) => {
                    let rows = g.rows();
                    let mut off = 0;
                    for &p in parts {
                        let c = anc[p.0].value.cols();
                        if anc[p.0].requires_grad {
                            let mut dp = alloc_from(pool, rows, c);
                            for i in 0..rows {
                                dp.row_mut(i).copy_from_slice(&g.row(i)[off..off + c]);
                            }
                            accumulate(anc, pool, p, dp);
                        }
                        off += c;
                    }
                }
                Op::SumAll(a) => {
                    let (n, d) = anc[a.0].value.shape();
                    let mut da = alloc_from(pool, n, d);
                    da.data_mut().fill(g.item());
                    accumulate(anc, pool, *a, da);
                }
                Op::MeanAll(a) => {
                    let (n, d) = anc[a.0].value.shape();
                    let scale = g.item() / (n * d).max(1) as f64;
                    let mut da = alloc_from(pool, n, d);
                    da.data_mut().fill(scale);
                    accumulate(anc, pool, *a, da);
                }
                Op::LogSoftmax(a) => {
                    // dL/dx = g - softmax(x) * rowsum(g)
                    let y = &node.value;
                    let (n, d) = y.shape();
                    let mut da = alloc_from(pool, n, d);
                    for i in 0..n {
                        let gsum: f64 = g.row(i).iter().sum();
                        for j in 0..d {
                            da.set(i, j, g.get(i, j) - y.get(i, j).exp() * gsum);
                        }
                    }
                    accumulate(anc, pool, *a, da);
                }
                Op::Huber {
                    pred,
                    target,
                    delta,
                } => {
                    let delta = *delta;
                    let clip = zip_pool(pool, &anc[pred.0].value, &anc[target.0].value, |p, t| {
                        (p - t).clamp(-delta, delta)
                    });
                    if anc[pred.0].requires_grad {
                        let d = zip_pool(pool, g, &clip, |gx, c| gx * c);
                        accumulate(anc, pool, *pred, d);
                    }
                    if anc[target.0].requires_grad {
                        let d = zip_pool(pool, g, &clip, |gx, c| -gx * c);
                        accumulate(anc, pool, *target, d);
                    }
                    recycle(pool, clip);
                }
            }
        }
        Ok(())
    }
}

/// Take a zeroed `rows×cols` tensor from `pool`, or allocate fresh when the
/// pool is empty. Pooled buffers are cleared and zero-refilled by
/// [`Tensor::from_buffer`], so the result is indistinguishable from
/// [`Tensor::zeros`].
fn alloc_from(pool: &mut Vec<Vec<f64>>, rows: usize, cols: usize) -> Tensor {
    match pool.pop() {
        Some(buf) => Tensor::from_buffer(rows, cols, buf),
        None => Tensor::zeros(rows, cols),
    }
}

/// Return a tensor's backing buffer to `pool` for reuse.
fn recycle(pool: &mut Vec<Vec<f64>>, t: Tensor) {
    if pool.len() < POOL_MAX_BUFFERS {
        let buf = t.into_data();
        if buf.capacity() > 0 {
            pool.push(buf);
        }
    }
}

/// Pooled elementwise map: `out[i] = f(a[i])`.
fn map_pool(pool: &mut Vec<Vec<f64>>, a: &Tensor, f: impl Fn(f64) -> f64) -> Tensor {
    let (r, c) = a.shape();
    let mut out = alloc_from(pool, r, c);
    for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
        *o = f(x);
    }
    out
}

/// Pooled elementwise zip: `out[i] = f(a[i], b[i])` (shapes must agree).
fn zip_pool(
    pool: &mut Vec<Vec<f64>>,
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f64, f64) -> f64,
) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "zip_pool shapes must agree");
    let (r, c) = a.shape();
    let mut out = alloc_from(pool, r, c);
    for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = f(x, y);
    }
    out
}

/// Add `delta` into `v`'s gradient slot, taking ownership: the first
/// consumer moves the tensor in; later consumers add in place and recycle
/// the delta's buffer.
fn accumulate(nodes: &mut [Node], pool: &mut Vec<Vec<f64>>, v: Var, delta: Tensor) {
    if !nodes[v.0].requires_grad {
        recycle(pool, delta);
        return;
    }
    match &mut nodes[v.0].grad {
        Some(g) => {
            g.add_assign(&delta);
            recycle(pool, delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Like [`accumulate`], for a borrowed upstream gradient that flows through
/// unchanged (Add/Sub/AddRow): copies into a pooled buffer only when the
/// slot is empty.
fn accumulate_ref(nodes: &mut [Node], pool: &mut Vec<Vec<f64>>, v: Var, delta: &Tensor) {
    if !nodes[v.0].requires_grad {
        return;
    }
    match &mut nodes[v.0].grad {
        Some(g) => g.add_assign(delta),
        slot @ None => {
            let (r, c) = delta.shape();
            let mut d = alloc_from(pool, r, c);
            d.data_mut().copy_from_slice(delta.data());
            *slot = Some(d);
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically-stable `ln(1+e^x)`.
#[inline]
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain_gradient() {
        // loss = mean((x*2)^2) over 1x2; d/dx = 4x (mean of 2 elements → 4x/2·…)
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, -3.0]]));
        let y = g.scale(x, 2.0);
        let sq = g.mul(y, y);
        let loss = g.mean_all(sq);
        g.backward(loss).unwrap();
        // loss = (4x²)/2 summed…  mean over 2 elements: d/dx_i = 8x_i/2 = 4x_i
        let grad = g.grad(x).unwrap();
        assert!((grad.get(0, 0) - 4.0).abs() < 1e-12);
        assert!((grad.get(0, 1) + 12.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_gradients_match_closed_form() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.leaf(Tensor::from_rows(&[&[5.0], &[6.0]]));
        let y = g.matmul(a, b);
        let loss = g.sum_all(y);
        g.backward(loss).unwrap();
        assert_eq!(
            g.grad(a).unwrap(),
            &Tensor::from_rows(&[&[5.0, 6.0], &[5.0, 6.0]])
        );
        assert_eq!(g.grad(b).unwrap(), &Tensor::from_rows(&[&[4.0], &[6.0]]));
    }

    #[test]
    fn constants_get_no_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0));
        let c = g.constant(Tensor::scalar(3.0));
        let y = g.mul(x, c);
        let loss = g.sum_all(y);
        g.backward(loss).unwrap();
        assert!(g.grad(c).is_none());
        assert_eq!(g.grad(x).unwrap().item(), 3.0);
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // loss = sum(x + x) → dx = 2
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(1.5));
        let y = g.add(x, x);
        let loss = g.sum_all(y);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().item(), 2.0);
    }

    #[test]
    fn non_scalar_loss_rejected() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(2, 2));
        assert!(matches!(
            g.backward(x),
            Err(TensorError::NonScalarLoss { .. })
        ));
    }

    #[test]
    fn gather_and_segment_round_trip() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[
            &[1.0, 10.0],
            &[2.0, 20.0],
            &[3.0, 30.0],
        ]));
        let gathered = g.gather_rows(x, vec![2, 0, 2]).unwrap();
        assert_eq!(g.value(gathered).row(0), &[3.0, 30.0]);
        let summed = g.segment_sum(gathered, vec![0, 0, 1], 2).unwrap();
        assert_eq!(g.value(summed).row(0), &[4.0, 40.0]);
        assert_eq!(g.value(summed).row(1), &[3.0, 30.0]);
        let loss = g.sum_all(summed);
        g.backward(loss).unwrap();
        // Row 2 was gathered twice → gradient 2; row 0 once; row 1 never.
        let gx = g.grad(x).unwrap();
        assert_eq!(gx.row(0), &[1.0, 1.0]);
        assert_eq!(gx.row(1), &[0.0, 0.0]);
        assert_eq!(gx.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn segment_mean_handles_empty_segments() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[2.0], &[4.0]]));
        let m = g.segment_mean(x, vec![0, 0], 3).unwrap();
        assert_eq!(g.value(m).row(0), &[3.0]);
        assert_eq!(g.value(m).row(1), &[0.0]);
        assert_eq!(g.value(m).row(2), &[0.0]);
        let loss = g.sum_all(m);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(x).unwrap().row(0), &[0.5]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0], &[2.0]]));
        let b = g.leaf(Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]));
        let c = g.concat_cols(vec![a, b]).unwrap();
        assert_eq!(g.value(c).shape(), (2, 3));
        assert_eq!(g.value(c).row(1), &[2.0, 5.0, 6.0]);
        let w = g.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]]));
        let p = g.mul(c, w);
        let loss = g.sum_all(p);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap(), &Tensor::from_rows(&[&[1.0], &[1.0]]));
        assert_eq!(
            g.grad(b).unwrap(),
            &Tensor::from_rows(&[&[2.0, 3.0], &[2.0, 3.0]])
        );
    }

    #[test]
    fn log_softmax_rows_sum_to_one_in_prob_space() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[1000.0, 0.0, -1000.0],
        ]));
        let y = g.log_softmax(x);
        for i in 0..2 {
            let p: f64 = g.value(y).row(i).iter().map(|&v| v.exp()).sum();
            assert!((p - 1.0).abs() < 1e-9, "row {i} sums to {p}");
        }
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::zeros(2, 3));
        let b = g.leaf(Tensor::zeros(2, 3));
        assert!(g.try_matmul(a, b).is_err());
        assert!(g.gather_rows(a, vec![5]).is_err());
        assert!(g.segment_sum(a, vec![0], 1).is_err());
        assert!(g.segment_sum(a, vec![9, 9], 1).is_err());
        let c = g.leaf(Tensor::zeros(3, 3));
        assert!(g.concat_cols(vec![a, c]).is_err());
        assert!(g.huber(a, c, 1.0).is_err());
        assert!(g.try_add_row(a, c).is_err());
    }

    #[test]
    fn huber_matches_quadratic_then_linear() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_rows(&[&[0.5, 3.0]]));
        let t = g.constant(Tensor::from_rows(&[&[0.0, 0.0]]));
        let h = g.huber(p, t, 1.0).unwrap();
        assert!((g.value(h).get(0, 0) - 0.125).abs() < 1e-12);
        assert!((g.value(h).get(0, 1) - 2.5).abs() < 1e-12);
        let loss = g.sum_all(h);
        g.backward(loss).unwrap();
        let grad = g.grad(p).unwrap();
        assert!((grad.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((grad.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_reuses_buffers_without_changing_results() {
        let x0 = Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let w0 = Tensor::from_rows(&[&[0.3, -0.7, 0.1], &[0.9, 0.2, -0.4]]);
        let run = |g: &mut Graph| {
            let x = g.leaf_copied(&x0);
            let w = g.leaf_copied(&w0);
            let y = g.matmul(x, w);
            let z = g.tanh(y);
            let l = g.mean_all(z);
            g.backward(l).unwrap();
            (
                g.value(l).item(),
                g.grad(x).unwrap().clone(),
                g.grad(w).unwrap().clone(),
            )
        };
        let mut g = Graph::new();
        let first = run(&mut g);
        for _ in 0..3 {
            g.reset();
            assert!(g.is_empty());
            let again = run(&mut g);
            assert_eq!(first.0.to_bits(), again.0.to_bits());
            assert_eq!(first.1, again.1);
            assert_eq!(first.2, again.2);
        }
    }

    #[test]
    fn linear_act_matches_unfused_composition_bitwise() {
        let x0 = Tensor::from_rows(&[&[1.0, -2.0, 0.25], &[0.5, 3.0, -1.5]]);
        let w0 = Tensor::from_rows(&[&[0.3, -0.7], &[0.9, 0.2], &[-0.1, 0.6]]);
        let b0 = Tensor::from_rows(&[&[0.05, -0.4]]);
        for act in [
            ActKind::Identity,
            ActKind::Relu,
            ActKind::LeakyRelu(0.01),
            ActKind::Sigmoid,
            ActKind::Tanh,
        ] {
            let mut gf = Graph::new();
            let (xf, wf, bf) = (
                gf.leaf_copied(&x0),
                gf.leaf_copied(&w0),
                gf.leaf_copied(&b0),
            );
            let yf = gf.linear_act(xf, wf, bf, act);
            let lf = gf.mean_all(yf);
            gf.backward(lf).unwrap();

            let mut gu = Graph::new();
            let (xu, wu, bu) = (
                gu.leaf_copied(&x0),
                gu.leaf_copied(&w0),
                gu.leaf_copied(&b0),
            );
            let mm = gu.matmul(xu, wu);
            let z = gu.add_row(mm, bu);
            let yu = match act {
                ActKind::Identity => z,
                ActKind::Relu => gu.relu(z),
                ActKind::LeakyRelu(s) => gu.leaky_relu(z, s),
                ActKind::Sigmoid => gu.sigmoid(z),
                ActKind::Tanh => gu.tanh(z),
            };
            let lu = gu.mean_all(yu);
            gu.backward(lu).unwrap();

            assert_eq!(gf.value(yf), gu.value(yu), "{act:?} forward");
            assert_eq!(gf.grad(xf).unwrap(), gu.grad(xu).unwrap(), "{act:?} dX");
            assert_eq!(gf.grad(wf).unwrap(), gu.grad(wu).unwrap(), "{act:?} dW");
            assert_eq!(gf.grad(bf).unwrap(), gu.grad(bu).unwrap(), "{act:?} db");
        }
    }

    #[test]
    fn linear_act_shape_errors() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(2, 3));
        let w = g.leaf(Tensor::zeros(3, 4));
        let bad_w = g.leaf(Tensor::zeros(2, 4));
        let b = g.leaf(Tensor::zeros(1, 4));
        let bad_b = g.leaf(Tensor::zeros(1, 3));
        assert!(g.try_linear_act(x, bad_w, b, ActKind::Relu).is_err());
        assert!(g.try_linear_act(x, w, bad_b, ActKind::Relu).is_err());
        assert!(g.try_linear_act(x, w, b, ActKind::Relu).is_ok());
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(sigmoid(-1000.0).abs() < 1e-300);
        assert!((softplus(1000.0) - 1000.0).abs() < 1e-9);
        assert!(softplus(-1000.0) >= 0.0);
    }
}
