//! # relgraph-tensor
//!
//! Dense 2-D `f64` tensors and a small reverse-mode automatic
//! differentiation engine — the numeric substrate under `relgraph-nn` and
//! `relgraph-gnn`.
//!
//! The design is define-by-run: every mini-batch builds a fresh [`Graph`]
//! of operations over [`Tensor`] values, calls [`Graph::backward`] on a
//! scalar loss, and reads gradients back for its parameters. Operations are
//! a closed enum (no boxed closures), which keeps the engine easy to audit
//! and to test: every op has a finite-difference gradient check in
//! [`gradcheck`].
//!
//! Supported ops cover exactly what heterogeneous message passing needs:
//! matmul, broadcasting bias add, elementwise arithmetic, activations,
//! row gather, segment sum/mean (scatter-style neighborhood aggregation),
//! column concat, log-softmax, and scalar reductions.
//!
//! ## Example
//!
//! ```
//! use relgraph_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
//! let w = g.leaf(Tensor::from_rows(&[&[0.5], &[-0.5]]));
//! let y = g.matmul(x, w);
//! let loss = g.mean_all(y);
//! g.backward(loss).unwrap();
//! assert_eq!(g.value(loss).get(0, 0), (1.0 * 0.5 - 2.0 * 0.5 + 3.0 * 0.5 - 4.0 * 0.5) / 2.0);
//! assert_eq!(g.grad(w).unwrap().shape(), (2, 1));
//! ```

pub mod error;
pub mod gradcheck;
pub mod kernels;
pub mod kernels32;
pub mod tape;
pub mod tensor;

pub use error::{TensorError, TensorResult};
pub use kernels::ActKind;
pub use kernels32::{
    apply_act_f32, matmul_bias_act_f32, matmul_naive_f32, mm_packed_f32, pack_b_f32,
    stable_sigmoid_f32,
};
pub use tape::{Graph, Op, Var};
pub use tensor::{set_baseline_matmul, Tensor};
