//! Single-precision (`f32`) inference microkernels: the serving-time twin
//! of [`crate::kernels`].
//!
//! Training stays `f64` end to end — nothing in the tape or the autodiff
//! engine routes through this module. These kernels exist for the serve
//! tier's `--precision f32`/`q8` modes, where fitted weights are
//! down-converted **once** and per-request inference runs at half the
//! memory traffic and double the SIMD width (8 `f32` lanes per ymm
//! register instead of 4 `f64` lanes).
//!
//! The numeric contract mirrors the `f64` kernels exactly: **each output
//! element is a pure function of its input row/column with a fixed
//! fused-multiply-add accumulation order**, so tiling, panel splits and
//! thread count never change a single bit of the `f32` result. On x86-64
//! hosts with AVX2+FMA the packed-B kernel runs hand-tiled intrinsics — 4
//! output rows × 16 columns (two ymm per row) of independent accumulator
//! chains; everywhere else a portable [`f32::mul_add`] body computes the
//! *same* correctly-rounded values.
//!
//! What is **not** promised is bitwise agreement with the `f64` path:
//! `f32` results carry the documented tolerance of DESIGN.md §15
//! (per-element error grows with the shared dimension `k` as roughly
//! `k · ε₃₂ · Σ|aᵢ·bᵢ|`, with ε₃₂ = 2⁻²⁴).

use rayon::prelude::*;

use crate::kernels::ActKind;
use crate::tensor::{NAIVE_FLOPS_THRESHOLD, PAR_FLOPS_THRESHOLD};

/// Output rows per register tile (same as the `f64` kernel).
const MR: usize = 4;
/// Output columns per register tile: 16 `f32` = two ymm lines per row, so
/// `MR × (NR32/8)` = 8 ymm accumulators — the same register budget as the
/// `f64` tile, at double the lane width.
const NR32: usize = 16;
/// Output rows per parallel task, fixed independently of worker count so
/// panel boundaries never move with the thread pool.
const ROW_BLOCK: usize = 32;

/// Apply an [`ActKind`] to an `f32` scalar. Same branch structure as the
/// `f64` [`ActKind::apply`]; the LeakyReLU slope is narrowed once per call
/// site, not per element, by the kernels that take an `ActKind`.
#[inline(always)]
pub fn apply_act_f32(act: ActKind, x: f32) -> f32 {
    match act {
        ActKind::Identity => x,
        ActKind::Relu => x.max(0.0),
        ActKind::LeakyRelu(s) => {
            if x > 0.0 {
                x
            } else {
                s as f32 * x
            }
        }
        ActKind::Tanh => x.tanh(),
        ActKind::Sigmoid => stable_sigmoid_f32(x),
    }
}

/// Branch-stable logistic sigmoid in `f32` (same definition as the `f64`
/// [`crate::kernels::stable_sigmoid`]).
#[inline(always)]
pub fn stable_sigmoid_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Repack `b` (`kd × n`, row-major) into column strips of `NR32`, laid
/// out `k`-major and zero-padded to full width — the `f32` twin of the
/// `f64` `pack_b`. Serving prepacks each fitted weight matrix **once** at
/// model down-conversion time, so the per-request kernel never re-packs.
pub fn pack_b_f32(b: &[f32], kd: usize, n: usize) -> Vec<f32> {
    let strips = n.div_ceil(NR32);
    let mut out = vec![0.0f32; strips * kd * NR32];
    for s in 0..strips {
        let j0 = s * NR32;
        let w = NR32.min(n - j0);
        let dst = &mut out[s * kd * NR32..(s + 1) * kd * NR32];
        for k in 0..kd {
            dst[k * NR32..k * NR32 + w].copy_from_slice(&b[k * n + j0..k * n + j0 + w]);
        }
    }
    out
}

/// Apply the fused epilogue to one accumulated tile row: `out[c] =
/// act(acc[c] + bias[j0+c])` for the `w` real (non-padding) columns.
#[inline(always)]
fn epilogue32(
    acc: &[f32; NR32],
    out: &mut [f32],
    j0: usize,
    w: usize,
    bias: Option<&[f32]>,
    act: ActKind,
) {
    for (c, o) in out[..w].iter_mut().enumerate() {
        let s = bias.map_or(acc[c], |bv| acc[c] + bv[j0 + c]);
        *o = apply_act_f32(act, s);
    }
}

/// Portable packed-B panel body: one accumulator array per output row,
/// `f32::mul_add` per step — the exact values the intrinsics path
/// computes (same chains, same rounding).
#[allow(clippy::too_many_arguments)]
fn mm_panel_f32_generic(
    a: &[f32],
    bp: &[f32],
    out: &mut [f32],
    rows: usize,
    kd: usize,
    n: usize,
    bias: Option<&[f32]>,
    act: ActKind,
) {
    let strips = n.div_ceil(NR32);
    for r in 0..rows {
        let arow = &a[r * kd..(r + 1) * kd];
        for s in 0..strips {
            let j0 = s * NR32;
            let w = NR32.min(n - j0);
            let strip = &bp[s * kd * NR32..(s + 1) * kd * NR32];
            let mut acc = [0.0f32; NR32];
            for (bk, &av) in strip.chunks_exact(NR32).zip(arow) {
                for (s, &bx) in acc.iter_mut().zip(bk) {
                    *s = av.mul_add(bx, *s);
                }
            }
            epilogue32(&acc, &mut out[r * n + j0..(r + 1) * n], j0, w, bias, act);
        }
    }
}

// --- x86-64 AVX2+FMA path -------------------------------------------------
//
// `_mm256_fmadd_ps` computes `fma(a, b, c)` per lane — the exact
// `f32::mul_add` value — and the tile walks the same per-element chains as
// the generic body, so the two paths are bitwise interchangeable.

#[cfg(target_arch = "x86_64")]
mod avx32 {
    use super::{epilogue32, ActKind, MR, NR32};
    use core::arch::x86_64::*;

    /// Packed-B panel matmul with fused epilogue; see
    /// [`super::mm_panel_f32_generic`] for the reference semantics.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mm_panel_f32(
        a: &[f32],
        bp: &[f32],
        out: &mut [f32],
        rows: usize,
        kd: usize,
        n: usize,
        bias: Option<&[f32]>,
        act: ActKind,
    ) {
        let strips = n.div_ceil(NR32);
        let full = rows / MR * MR;
        let mut i = 0;
        while i < full {
            for s in 0..strips {
                let j0 = s * NR32;
                let w = NR32.min(n - j0);
                let sp = bp.as_ptr().add(s * kd * NR32);
                let a0 = a.as_ptr().add(i * kd);
                let a1 = a.as_ptr().add((i + 1) * kd);
                let a2 = a.as_ptr().add((i + 2) * kd);
                let a3 = a.as_ptr().add((i + 3) * kd);
                // 4 rows × 16 columns of accumulators: 8 ymm registers,
                // each holding 8 f32 lanes.
                let mut c00 = _mm256_setzero_ps();
                let mut c01 = _mm256_setzero_ps();
                let mut c10 = _mm256_setzero_ps();
                let mut c11 = _mm256_setzero_ps();
                let mut c20 = _mm256_setzero_ps();
                let mut c21 = _mm256_setzero_ps();
                let mut c30 = _mm256_setzero_ps();
                let mut c31 = _mm256_setzero_ps();
                for k in 0..kd {
                    let b0 = _mm256_loadu_ps(sp.add(k * NR32));
                    let b1 = _mm256_loadu_ps(sp.add(k * NR32 + 8));
                    let v0 = _mm256_set1_ps(*a0.add(k));
                    c00 = _mm256_fmadd_ps(v0, b0, c00);
                    c01 = _mm256_fmadd_ps(v0, b1, c01);
                    let v1 = _mm256_set1_ps(*a1.add(k));
                    c10 = _mm256_fmadd_ps(v1, b0, c10);
                    c11 = _mm256_fmadd_ps(v1, b1, c11);
                    let v2 = _mm256_set1_ps(*a2.add(k));
                    c20 = _mm256_fmadd_ps(v2, b0, c20);
                    c21 = _mm256_fmadd_ps(v2, b1, c21);
                    let v3 = _mm256_set1_ps(*a3.add(k));
                    c30 = _mm256_fmadd_ps(v3, b0, c30);
                    c31 = _mm256_fmadd_ps(v3, b1, c31);
                }
                let pairs = [(c00, c01), (c10, c11), (c20, c21), (c30, c31)];
                for (r, (lo, hi)) in pairs.into_iter().enumerate() {
                    let mut acc = [0.0f32; NR32];
                    _mm256_storeu_ps(acc.as_mut_ptr(), lo);
                    _mm256_storeu_ps(acc.as_mut_ptr().add(8), hi);
                    let row = i + r;
                    epilogue32(
                        &acc,
                        &mut out[row * n + j0..(row + 1) * n],
                        j0,
                        w,
                        bias,
                        act,
                    );
                }
            }
            i += MR;
        }
        // Remainder rows: one row at a time, same per-element chains.
        while i < rows {
            for s in 0..strips {
                let j0 = s * NR32;
                let w = NR32.min(n - j0);
                let sp = bp.as_ptr().add(s * kd * NR32);
                let ar = a.as_ptr().add(i * kd);
                let mut lo = _mm256_setzero_ps();
                let mut hi = _mm256_setzero_ps();
                for k in 0..kd {
                    let v = _mm256_set1_ps(*ar.add(k));
                    lo = _mm256_fmadd_ps(v, _mm256_loadu_ps(sp.add(k * NR32)), lo);
                    hi = _mm256_fmadd_ps(v, _mm256_loadu_ps(sp.add(k * NR32 + 8)), hi);
                }
                let mut acc = [0.0f32; NR32];
                _mm256_storeu_ps(acc.as_mut_ptr(), lo);
                _mm256_storeu_ps(acc.as_mut_ptr().add(8), hi);
                epilogue32(&acc, &mut out[i * n + j0..(i + 1) * n], j0, w, bias, act);
            }
            i += 1;
        }
    }
}

/// Packed-B panel matmul with fused `+bias`/activation epilogue:
/// `out = act(a · unpack(bp) + bias)` for `rows` A-rows. Runtime-dispatched
/// to AVX2+FMA intrinsics or the bit-identical portable body. This is the
/// serial entry the serve tier calls per node with prepacked weights.
#[allow(clippy::too_many_arguments)]
pub fn mm_packed_f32(
    a: &[f32],
    bp: &[f32],
    out: &mut [f32],
    rows: usize,
    kd: usize,
    n: usize,
    bias: Option<&[f32]>,
    act: ActKind,
) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernels::have_fma() {
        // SAFETY: the required CPU features were just detected.
        return unsafe { avx32::mm_panel_f32(a, bp, out, rows, kd, n, bias, act) };
    }
    mm_panel_f32_generic(a, bp, out, rows, kd, n, bias, act)
}

/// Reference `f32` matmul with unfused epilogue: plain serial ikj loop
/// (no FMA), then `+bias`/activation as a second pass. Ground truth for
/// the ulp-bound property tests and the small-size dispatch tier.
#[allow(clippy::too_many_arguments)]
pub fn matmul_naive_f32(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
    bias: Option<&[f32]>,
    act: ActKind,
) {
    out[..m * n].fill(0.0);
    for i in 0..m {
        let a_row = &a[i * kd..(i + 1) * kd];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[k * n..(k + 1) * n];
            for (o, &bx) in out_row.iter_mut().zip(b_row) {
                *o += av * bx;
            }
        }
    }
    match (bias, act) {
        (None, ActKind::Identity) => {}
        _ => {
            for i in 0..m {
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let s = bias.map_or(*o, |bv| *o + bv[j]);
                    *o = apply_act_f32(act, s);
                }
            }
        }
    }
}

/// Full size-dispatched `f32` fused linear: `out = act(a · b + bias)` with
/// the same three tiers as the `f64` [`crate::tensor::Tensor::matmul`]
/// path — naive + unfused epilogue below `NAIVE_FLOPS_THRESHOLD`
/// multiply-adds, serial packed microkernel below
/// `PAR_FLOPS_THRESHOLD`, parallel over fixed `ROW_BLOCK`-row output
/// panels above. Bit-identical across thread counts (panel boundaries are
/// a function of `ROW_BLOCK` alone).
#[allow(clippy::too_many_arguments)]
pub fn matmul_bias_act_f32(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
    bias: Option<&[f32]>,
    act: ActKind,
) {
    mm_f32_tiers(a, b, out, m, kd, n, bias, act, false);
}

/// Shared tier dispatch; `force_serial` pins the packed kernel to the
/// serial panel walk so tests can prove serial ≡ parallel bitwise.
#[allow(clippy::too_many_arguments)]
fn mm_f32_tiers(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kd: usize,
    n: usize,
    bias: Option<&[f32]>,
    act: ActKind,
    force_serial: bool,
) {
    assert_eq!(a.len(), m * kd, "lhs length must be m*kd");
    assert_eq!(b.len(), kd * n, "rhs length must be kd*n");
    assert_eq!(out.len(), m * n, "output length must be m*n");
    if let Some(bv) = bias {
        assert_eq!(bv.len(), n, "bias width must match output width");
    }
    if m * n == 0 {
        return;
    }
    if m * n * kd < NAIVE_FLOPS_THRESHOLD {
        matmul_naive_f32(a, b, out, m, kd, n, bias, act);
        return;
    }
    let packed = pack_b_f32(b, kd, n);
    let body = |(chunk, out_block): (usize, &mut [f32])| {
        let i0 = chunk * ROW_BLOCK;
        let rows_here = out_block.len() / n;
        let a_panel = &a[i0 * kd..(i0 + rows_here) * kd];
        mm_packed_f32(a_panel, &packed, out_block, rows_here, kd, n, bias, act);
    };
    if force_serial || m * n * kd < PAR_FLOPS_THRESHOLD {
        out.chunks_mut(ROW_BLOCK * n).enumerate().for_each(body);
    } else {
        out.par_chunks_mut(ROW_BLOCK * n).enumerate().for_each(body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq32(len: usize, mul: f64) -> Vec<f32> {
        (0..len).map(|i| (i as f64 * mul).sin() as f32).collect()
    }

    #[test]
    fn f32_activation_matches_f64_within_rounding() {
        for act in [
            ActKind::Identity,
            ActKind::Relu,
            ActKind::LeakyRelu(0.1),
            ActKind::Tanh,
            ActKind::Sigmoid,
        ] {
            for x in [-3.0f32, -0.75, -0.0, 0.0, 0.75, 3.0] {
                let y32 = apply_act_f32(act, x);
                let y64 = act.apply(x as f64);
                assert!(
                    (y32 as f64 - y64).abs() <= 1e-6,
                    "{act:?} at {x}: f32 {y32} vs f64 {y64}"
                );
            }
        }
    }

    #[test]
    fn dispatched_mm_panel_f32_is_bit_identical_to_generic() {
        // Odd sizes force both remainder rows and remainder columns, and
        // 33×65×41 exercises a multi-strip panel with a 9-wide tail.
        for (rows, kd, n) in [(1, 1, 1), (5, 9, 11), (13, 17, 23), (33, 65, 41)] {
            let a = seq32(rows * kd, 0.37);
            let b = seq32(kd * n, 0.61);
            let bias = seq32(n, 0.13);
            let bp = pack_b_f32(&b, kd, n);
            for act in [ActKind::Identity, ActKind::Relu, ActKind::Tanh] {
                let mut fast = vec![0.0f32; rows * n];
                mm_packed_f32(&a, &bp, &mut fast, rows, kd, n, Some(&bias), act);
                let mut slow = vec![0.0f32; rows * n];
                mm_panel_f32_generic(&a, &bp, &mut slow, rows, kd, n, Some(&bias), act);
                assert_eq!(fast, slow, "mm32 {rows}x{kd}x{n} {act:?}");
            }
        }
    }

    #[test]
    fn packed_tile_and_remainder_elements_agree() {
        // A 5×11 panel (1-row and 11-col remainders) must equal the plain
        // per-element ascending-k mul_add chain bit for bit.
        let (rows, kd, n) = (5usize, 9usize, 11usize);
        let a = seq32(rows * kd, 0.37);
        let b = seq32(kd * n, 0.61);
        let bp = pack_b_f32(&b, kd, n);
        let mut fast = vec![0.0f32; rows * n];
        mm_packed_f32(&a, &bp, &mut fast, rows, kd, n, None, ActKind::Identity);
        let mut slow = vec![0.0f32; rows * n];
        for i in 0..rows {
            for j in 0..n {
                let mut s = 0.0f32;
                for k in 0..kd {
                    s = a[i * kd + k].mul_add(b[k * n + j], s);
                }
                slow[i * n + j] = s;
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn serial_and_parallel_tiers_are_bit_identical() {
        // 96×96×96 is above PAR_FLOPS_THRESHOLD (64³): the public entry
        // takes the parallel panel walk, the forced-serial path walks the
        // same fixed panels on one thread. They must agree bit for bit —
        // panel boundaries are a function of ROW_BLOCK alone.
        let (m, kd, n) = (96usize, 96usize, 96usize);
        assert!(m * kd * n >= PAR_FLOPS_THRESHOLD);
        let a = seq32(m * kd, 0.31);
        let b = seq32(kd * n, 0.47);
        let bias = seq32(n, 0.19);
        let mut par = vec![0.0f32; m * n];
        matmul_bias_act_f32(&a, &b, &mut par, m, kd, n, Some(&bias), ActKind::Relu);
        let mut ser = vec![0.0f32; m * n];
        mm_f32_tiers(&a, &b, &mut ser, m, kd, n, Some(&bias), ActKind::Relu, true);
        assert_eq!(par, ser);
    }

    #[test]
    fn dispatch_boundaries_stay_within_ulp_bound_of_naive() {
        // Straddle both thresholds: just under/over 32³ (naive vs packed
        // serial) and just under/over 64³ (serial vs parallel). The packed
        // FMA kernel and the naive two-pass loop accumulate in different
        // orders, so agreement is to a documented bound, not bitwise:
        // per-element |fast − naive| ≤ 2·kd·ε₃₂·Σ|a·b| (each path does at
        // most kd roundings of magnitude ≤ ε₃₂·partial-sum each).
        for (m, kd, n) in [(31, 32, 32), (32, 32, 32), (63, 64, 64), (64, 64, 65)] {
            let a = seq32(m * kd, 0.29);
            let b = seq32(kd * n, 0.53);
            let mut fast = vec![0.0f32; m * n];
            matmul_bias_act_f32(&a, &b, &mut fast, m, kd, n, None, ActKind::Identity);
            let mut naive = vec![0.0f32; m * n];
            matmul_naive_f32(&a, &b, &mut naive, m, kd, n, None, ActKind::Identity);
            for i in 0..m {
                for j in 0..n {
                    let mag: f32 = (0..kd).map(|k| (a[i * kd + k] * b[k * n + j]).abs()).sum();
                    let bound = 2.0 * kd as f32 * f32::EPSILON * mag.max(1.0);
                    let diff = (fast[i * n + j] - naive[i * n + j]).abs();
                    assert!(
                        diff <= bound,
                        "({m}x{kd}x{n}) at ({i},{j}): |{} - {}| = {diff} > {bound}",
                        fast[i * n + j],
                        naive[i * n + j]
                    );
                }
            }
        }
    }

    #[test]
    fn training_gradcheck_stays_f64_tight() {
        // Guard: the training tape must still compute in f64. A central
        // finite-difference check at 1e-7 tolerance is unreachable by any
        // f32 compute path (ε₃₂ ≈ 6e-8 per rounding already eats it), so
        // this test fails if inference-precision plumbing ever leaks into
        // the autodiff forward.
        use crate::{Graph, Tensor};
        let x = Tensor::from_rows(&[&[0.3, -0.7, 0.2], &[0.9, 0.1, -0.4]]);
        let w = Tensor::from_rows(&[&[0.5, -0.2], &[0.8, 0.3], &[-0.6, 0.7]]);
        let b = Tensor::from_rows(&[&[0.05, -0.1]]);
        let loss_of = |wt: &Tensor| {
            let mut g = Graph::new();
            let xv = g.leaf(x.clone());
            let wv = g.leaf(wt.clone());
            let bv = g.leaf(b.clone());
            let y = g.linear_act(xv, wv, bv, ActKind::Tanh);
            let l = g.mean_all(y);
            g.value(l).item()
        };
        let mut g = Graph::new();
        let xv = g.leaf(x.clone());
        let wv = g.leaf(w.clone());
        let bv = g.leaf(b.clone());
        let y = g.linear_act(xv, wv, bv, ActKind::Tanh);
        let l = g.mean_all(y);
        g.backward(l).unwrap();
        let grad = g.grad(wv).unwrap().clone();
        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..2 {
                let mut wp = w.clone();
                wp.set(r, c, w.get(r, c) + eps);
                let mut wm = w.clone();
                wm.set(r, c, w.get(r, c) - eps);
                let num = (loss_of(&wp) - loss_of(&wm)) / (2.0 * eps);
                assert!(
                    (num - grad.get(r, c)).abs() < 1e-7,
                    "training grad at ({r},{c}) is not f64-tight: numeric {num} vs tape {}",
                    grad.get(r, c)
                );
            }
        }
    }
}
