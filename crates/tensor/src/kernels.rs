//! Register-tiled FMA matmul microkernels and the fused
//! linear+bias+activation epilogue.
//!
//! Every kernel here obeys one numeric contract: **the value of each output
//! element is a pure function of its input row/column, with a fixed
//! floating-point accumulation order** — so tiling, panel splits and thread
//! count can never change a single bit of the result. All accumulation is
//! fused multiply-add (one rounding per step). On x86-64 hosts with
//! AVX2+FMA (detected at runtime) the kernels run hand-tiled
//! `core::arch` intrinsics — 4 output rows × 8 columns of independent
//! accumulator chains per register tile; everywhere else a portable
//! [`f64::mul_add`] body computes the *same* correctly-rounded values, so
//! which path runs never affects results, only speed.
//!
//! Accumulation orders (all fixed, all thread- and tile-independent):
//!
//! * `mm_panel` (`A·B`, optionally fused with `+bias` / activation) and
//!   `mm_tn_panel` (`Aᵀ·B`): one chain per output element, ascending
//!   shared-dimension index.
//! * `mm_nt_panel` (`A·Bᵀ`): each output element is a dot product split
//!   into [`NT_LANES`] fixed interleaved partial chains (lane `l`
//!   accumulates indices `k ≡ l mod NT_LANES`), combined by a fixed
//!   pairwise tree — this is what lets the contiguous-row dot product
//!   vectorize.
//!
//! The fused epilogue (`+ bias`, then activation) is applied to the fully
//! accumulated element, so a fused linear layer is bit-identical to the
//! unfused `matmul → add-row → activation` composition.

/// Pointwise activation applied by the fused linear kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActKind {
    /// No activation.
    Identity,
    /// `max(x, 0)`.
    Relu,
    /// `x` for `x > 0`, else `slope · x`.
    LeakyRelu(f64),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl ActKind {
    /// Apply the activation to a scalar. Matches the tape's unfused
    /// activation ops bit for bit (same branch structure, same stable
    /// sigmoid).
    #[inline(always)]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            ActKind::Identity => x,
            ActKind::Relu => x.max(0.0),
            ActKind::LeakyRelu(s) => {
                if x > 0.0 {
                    x
                } else {
                    s * x
                }
            }
            ActKind::Tanh => x.tanh(),
            ActKind::Sigmoid => stable_sigmoid(x),
        }
    }

    /// Derivative of the activation expressed through its *output* value
    /// (valid for every member of this enum), used by the fused backward.
    /// Matches the unfused backward rules exactly, including the
    /// subgradient choice at 0 for ReLU/LeakyReLU (`out > 0 ⇔ x > 0` for
    /// positive slopes, and the tape gates on `x > 0`).
    #[inline(always)]
    pub fn dact_from_out(self, out: f64) -> f64 {
        match self {
            ActKind::Identity => 1.0,
            ActKind::Relu => {
                if out > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::LeakyRelu(s) => {
                if out > 0.0 {
                    1.0
                } else {
                    s
                }
            }
            ActKind::Tanh => 1.0 - out * out,
            ActKind::Sigmoid => out * (1.0 - out),
        }
    }
}

/// Branch-stable sigmoid (same definition as the tape's activation).
#[inline(always)]
pub fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Output rows per register tile (independent accumulator chains in
/// flight, amortizing each packed-B load across MR rows).
const MR: usize = 4;
/// Output columns per register tile. `MR × NR` accumulators = 8 AVX2
/// registers, leaving room for the B lines and the broadcast value.
const NR: usize = 8;
/// Interleaved partial-sum lanes in the `A·Bᵀ` dot-product kernel.
pub const NT_LANES: usize = 8;

/// Repack `b` (`kd × n`, row-major) into column strips of [`NR`]: strip
/// `s` holds columns `s·NR .. s·NR+NR` laid out `k`-major and zero-padded
/// to full width, so the microkernel's inner loop reads one contiguous
/// `NR`-wide line per `k` instead of striding `n` doubles across `b`.
/// Packing costs one pass over `b` and is amortized over `m` output rows.
pub(crate) fn pack_b(b: &[f64], kd: usize, n: usize) -> Vec<f64> {
    let strips = n.div_ceil(NR);
    let mut out = vec![0.0; strips * kd * NR];
    for s in 0..strips {
        let j0 = s * NR;
        let w = NR.min(n - j0);
        let dst = &mut out[s * kd * NR..(s + 1) * kd * NR];
        for k in 0..kd {
            dst[k * NR..k * NR + w].copy_from_slice(&b[k * n + j0..k * n + j0 + w]);
        }
    }
    out
}

/// Apply the fused epilogue to one accumulated tile row: `out[c] =
/// act(acc[c] + bias[j0+c])` for the `w` real (non-padding) columns.
#[inline(always)]
fn epilogue(
    acc: &[f64; NR],
    out: &mut [f64],
    j0: usize,
    w: usize,
    bias: Option<&[f64]>,
    act: ActKind,
) {
    for (c, o) in out[..w].iter_mut().enumerate() {
        let s = bias.map_or(acc[c], |bv| acc[c] + bv[j0 + c]);
        *o = act.apply(s);
    }
}

// --- Portable fallback bodies --------------------------------------------
//
// One accumulator array per output row; `f64::mul_add` per step. These
// compute exactly the values the intrinsics path computes (same chains,
// same rounding) — they exist for non-x86 targets and hosts without
// AVX2/FMA.

/// `out = act(A_panel · packed(B) + bias)` for a panel of `rows` A-rows.
#[allow(clippy::too_many_arguments)]
fn mm_panel_generic(
    a: &[f64],
    bp: &[f64],
    out: &mut [f64],
    rows: usize,
    kd: usize,
    n: usize,
    bias: Option<&[f64]>,
    act: ActKind,
) {
    let strips = n.div_ceil(NR);
    for r in 0..rows {
        let arow = &a[r * kd..(r + 1) * kd];
        for s in 0..strips {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            let strip = &bp[s * kd * NR..(s + 1) * kd * NR];
            let mut acc = [0.0f64; NR];
            for (bk, &av) in strip.chunks_exact(NR).zip(arow) {
                for (s, &bx) in acc.iter_mut().zip(bk) {
                    *s = av.mul_add(bx, *s);
                }
            }
            epilogue(&acc, &mut out[r * n + j0..(r + 1) * n], j0, w, bias, act);
        }
    }
}

/// One `A·Bᵀ` dot product: [`NT_LANES`] interleaved `mul_add` chains over
/// the two contiguous rows, merged by [`tree8`].
#[inline(always)]
fn nt_dot_generic(arow: &[f64], brow: &[f64]) -> f64 {
    let mut lanes = [0.0f64; NT_LANES];
    let mut ac = arow.chunks_exact(NT_LANES);
    let mut bc = brow.chunks_exact(NT_LANES);
    for (ax, bx) in (&mut ac).zip(&mut bc) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = ax[l].mul_add(bx[l], *lane);
        }
    }
    for (l, (&ax, &bx)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        lanes[l] = ax.mul_add(bx, lanes[l]);
    }
    tree8(&lanes)
}

/// `out_panel[r][j] = A_panel row r · B row j` — the `A·Bᵀ` panel kernel.
fn mm_nt_panel_generic(a: &[f64], b: &[f64], out: &mut [f64], rows: usize, kd: usize, n: usize) {
    for r in 0..rows {
        let arow = &a[r * kd..(r + 1) * kd];
        for j in 0..n {
            out[r * n + j] = nt_dot_generic(arow, &b[j * kd..(j + 1) * kd]);
        }
    }
}

/// `out_panel += ` the `Aᵀ·B` contribution for output rows `p0..p0+rows`:
/// `out[p][j] = Σ_i a[i][p] · b[i][j]`, ascending `i` per element. `out`
/// must be zeroed on entry; `a` is `m × kd_a` and `p` indexes its columns.
#[allow(clippy::too_many_arguments)]
fn mm_tn_panel_generic(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    p0: usize,
    rows: usize,
    m: usize,
    kd_a: usize,
    n: usize,
) {
    for i in 0..m {
        let brow = &b[i * n..(i + 1) * n];
        for dp in 0..rows {
            let av = a[i * kd_a + p0 + dp];
            let orow = &mut out[dp * n..(dp + 1) * n];
            for (o, &bx) in orow.iter_mut().zip(brow) {
                *o = av.mul_add(bx, *o);
            }
        }
    }
}

/// Fixed pairwise reduction of the 8 dot-product lanes.
#[inline(always)]
fn tree8(l: &[f64; 8]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

// --- x86-64 AVX2+FMA path -------------------------------------------------
//
// Hand-tiled intrinsics: `_mm256_fmadd_pd` computes `fma(a, b, c)` per
// lane — the exact `f64::mul_add` value — and the tiles walk the same
// per-element chains as the generic bodies, so the two paths are bitwise
// interchangeable. Intrinsics (rather than relying on auto-vectorization)
// because the accumulator tile must survive in registers: the
// register-pressure pattern is too fragile to trust to the optimizer.

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{epilogue, nt_dot_generic, tree8, ActKind, MR, NR};
    use core::arch::x86_64::*;

    /// Panel matmul over packed B with fused epilogue; see
    /// [`super::mm_panel_generic`] for the reference semantics.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mm_panel(
        a: &[f64],
        bp: &[f64],
        out: &mut [f64],
        rows: usize,
        kd: usize,
        n: usize,
        bias: Option<&[f64]>,
        act: ActKind,
    ) {
        let strips = n.div_ceil(NR);
        let full = rows / MR * MR;
        let mut i = 0;
        while i < full {
            for s in 0..strips {
                let j0 = s * NR;
                let w = NR.min(n - j0);
                let sp = bp.as_ptr().add(s * kd * NR);
                let a0 = a.as_ptr().add(i * kd);
                let a1 = a.as_ptr().add((i + 1) * kd);
                let a2 = a.as_ptr().add((i + 2) * kd);
                let a3 = a.as_ptr().add((i + 3) * kd);
                // 4 rows × 8 columns of accumulators: 8 ymm registers.
                let mut c00 = _mm256_setzero_pd();
                let mut c01 = _mm256_setzero_pd();
                let mut c10 = _mm256_setzero_pd();
                let mut c11 = _mm256_setzero_pd();
                let mut c20 = _mm256_setzero_pd();
                let mut c21 = _mm256_setzero_pd();
                let mut c30 = _mm256_setzero_pd();
                let mut c31 = _mm256_setzero_pd();
                for k in 0..kd {
                    let b0 = _mm256_loadu_pd(sp.add(k * NR));
                    let b1 = _mm256_loadu_pd(sp.add(k * NR + 4));
                    let v0 = _mm256_set1_pd(*a0.add(k));
                    c00 = _mm256_fmadd_pd(v0, b0, c00);
                    c01 = _mm256_fmadd_pd(v0, b1, c01);
                    let v1 = _mm256_set1_pd(*a1.add(k));
                    c10 = _mm256_fmadd_pd(v1, b0, c10);
                    c11 = _mm256_fmadd_pd(v1, b1, c11);
                    let v2 = _mm256_set1_pd(*a2.add(k));
                    c20 = _mm256_fmadd_pd(v2, b0, c20);
                    c21 = _mm256_fmadd_pd(v2, b1, c21);
                    let v3 = _mm256_set1_pd(*a3.add(k));
                    c30 = _mm256_fmadd_pd(v3, b0, c30);
                    c31 = _mm256_fmadd_pd(v3, b1, c31);
                }
                let pairs = [(c00, c01), (c10, c11), (c20, c21), (c30, c31)];
                for (r, (lo, hi)) in pairs.into_iter().enumerate() {
                    let mut acc = [0.0f64; NR];
                    _mm256_storeu_pd(acc.as_mut_ptr(), lo);
                    _mm256_storeu_pd(acc.as_mut_ptr().add(4), hi);
                    let row = i + r;
                    epilogue(
                        &acc,
                        &mut out[row * n + j0..(row + 1) * n],
                        j0,
                        w,
                        bias,
                        act,
                    );
                }
            }
            i += MR;
        }
        // Remainder rows: one row at a time, same per-element chains.
        while i < rows {
            for s in 0..strips {
                let j0 = s * NR;
                let w = NR.min(n - j0);
                let sp = bp.as_ptr().add(s * kd * NR);
                let ar = a.as_ptr().add(i * kd);
                let mut lo = _mm256_setzero_pd();
                let mut hi = _mm256_setzero_pd();
                for k in 0..kd {
                    let v = _mm256_set1_pd(*ar.add(k));
                    lo = _mm256_fmadd_pd(v, _mm256_loadu_pd(sp.add(k * NR)), lo);
                    hi = _mm256_fmadd_pd(v, _mm256_loadu_pd(sp.add(k * NR + 4)), hi);
                }
                let mut acc = [0.0f64; NR];
                _mm256_storeu_pd(acc.as_mut_ptr(), lo);
                _mm256_storeu_pd(acc.as_mut_ptr().add(4), hi);
                epilogue(&acc, &mut out[i * n + j0..(i + 1) * n], j0, w, bias, act);
            }
            i += 1;
        }
    }

    /// `A·Bᵀ` panel kernel; see [`super::mm_nt_panel_generic`].
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn mm_nt_panel(
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
        rows: usize,
        kd: usize,
        n: usize,
    ) {
        let kc = kd / 8 * 8;
        let full = rows / MR * MR;
        let mut i = 0;
        while i < full {
            let a0 = a.as_ptr().add(i * kd);
            let a1 = a.as_ptr().add((i + 1) * kd);
            let a2 = a.as_ptr().add((i + 2) * kd);
            let a3 = a.as_ptr().add((i + 3) * kd);
            for j in 0..n {
                let bj = b.as_ptr().add(j * kd);
                // 4 rows × 8 interleaved lanes: 8 ymm accumulators. Lane l
                // accumulates k ≡ l (mod 8), exactly like the generic body.
                let mut c00 = _mm256_setzero_pd();
                let mut c01 = _mm256_setzero_pd();
                let mut c10 = _mm256_setzero_pd();
                let mut c11 = _mm256_setzero_pd();
                let mut c20 = _mm256_setzero_pd();
                let mut c21 = _mm256_setzero_pd();
                let mut c30 = _mm256_setzero_pd();
                let mut c31 = _mm256_setzero_pd();
                let mut k = 0;
                while k < kc {
                    let b0 = _mm256_loadu_pd(bj.add(k));
                    let b1 = _mm256_loadu_pd(bj.add(k + 4));
                    c00 = _mm256_fmadd_pd(_mm256_loadu_pd(a0.add(k)), b0, c00);
                    c01 = _mm256_fmadd_pd(_mm256_loadu_pd(a0.add(k + 4)), b1, c01);
                    c10 = _mm256_fmadd_pd(_mm256_loadu_pd(a1.add(k)), b0, c10);
                    c11 = _mm256_fmadd_pd(_mm256_loadu_pd(a1.add(k + 4)), b1, c11);
                    c20 = _mm256_fmadd_pd(_mm256_loadu_pd(a2.add(k)), b0, c20);
                    c21 = _mm256_fmadd_pd(_mm256_loadu_pd(a2.add(k + 4)), b1, c21);
                    c30 = _mm256_fmadd_pd(_mm256_loadu_pd(a3.add(k)), b0, c30);
                    c31 = _mm256_fmadd_pd(_mm256_loadu_pd(a3.add(k + 4)), b1, c31);
                    k += 8;
                }
                let pairs = [(c00, c01), (c10, c11), (c20, c21), (c30, c31)];
                for (r, (lo, hi)) in pairs.into_iter().enumerate() {
                    let mut lanes = [0.0f64; 8];
                    _mm256_storeu_pd(lanes.as_mut_ptr(), lo);
                    _mm256_storeu_pd(lanes.as_mut_ptr().add(4), hi);
                    // Tail: continue lane chains scalar (k ≡ l mod 8).
                    let ar = a.as_ptr().add((i + r) * kd);
                    for (l, k) in (kc..kd).enumerate() {
                        lanes[l] = (*ar.add(k)).mul_add(*bj.add(k), lanes[l]);
                    }
                    out[(i + r) * n + j] = tree8(&lanes);
                }
            }
            i += MR;
        }
        while i < rows {
            let arow = &a[i * kd..(i + 1) * kd];
            for j in 0..n {
                // mul_add compiles to hardware FMA inside this function.
                out[i * n + j] = nt_dot_generic(arow, &b[j * kd..(j + 1) * kd]);
            }
            i += 1;
        }
    }

    /// `Aᵀ·B` panel kernel; see [`super::mm_tn_panel_generic`].
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn mm_tn_panel(
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
        p0: usize,
        rows: usize,
        m: usize,
        kd_a: usize,
        n: usize,
    ) {
        let pfull = rows / MR * MR;
        let mut dp = 0;
        while dp < pfull {
            let mut j0 = 0;
            while j0 < n {
                let jw = NR.min(n - j0);
                if jw == NR {
                    // Full 4×8 tile held in registers across the whole
                    // ascending-i accumulation.
                    let mut c00 = _mm256_setzero_pd();
                    let mut c01 = _mm256_setzero_pd();
                    let mut c10 = _mm256_setzero_pd();
                    let mut c11 = _mm256_setzero_pd();
                    let mut c20 = _mm256_setzero_pd();
                    let mut c21 = _mm256_setzero_pd();
                    let mut c30 = _mm256_setzero_pd();
                    let mut c31 = _mm256_setzero_pd();
                    for i in 0..m {
                        let bi = b.as_ptr().add(i * n + j0);
                        let b0 = _mm256_loadu_pd(bi);
                        let b1 = _mm256_loadu_pd(bi.add(4));
                        let ai = a.as_ptr().add(i * kd_a + p0 + dp);
                        let v0 = _mm256_set1_pd(*ai);
                        c00 = _mm256_fmadd_pd(v0, b0, c00);
                        c01 = _mm256_fmadd_pd(v0, b1, c01);
                        let v1 = _mm256_set1_pd(*ai.add(1));
                        c10 = _mm256_fmadd_pd(v1, b0, c10);
                        c11 = _mm256_fmadd_pd(v1, b1, c11);
                        let v2 = _mm256_set1_pd(*ai.add(2));
                        c20 = _mm256_fmadd_pd(v2, b0, c20);
                        c21 = _mm256_fmadd_pd(v2, b1, c21);
                        let v3 = _mm256_set1_pd(*ai.add(3));
                        c30 = _mm256_fmadd_pd(v3, b0, c30);
                        c31 = _mm256_fmadd_pd(v3, b1, c31);
                    }
                    let pairs = [(c00, c01), (c10, c11), (c20, c21), (c30, c31)];
                    for (r, (lo, hi)) in pairs.into_iter().enumerate() {
                        let op = out.as_mut_ptr().add((dp + r) * n + j0);
                        _mm256_storeu_pd(op, lo);
                        _mm256_storeu_pd(op.add(4), hi);
                    }
                } else {
                    // Column remainder: memory accumulation, same
                    // ascending-i chain per element (fma inlines here).
                    for i in 0..m {
                        for r in 0..MR {
                            let av = a[i * kd_a + p0 + dp + r];
                            for c in 0..jw {
                                let o = &mut out[(dp + r) * n + j0 + c];
                                *o = av.mul_add(b[i * n + j0 + c], *o);
                            }
                        }
                    }
                }
                j0 += NR;
            }
            dp += MR;
        }
        // Row remainder: generic shape, ascending-i chains.
        for i in 0..m {
            let brow = &b[i * n..(i + 1) * n];
            for dp in pfull..rows {
                let av = a[i * kd_a + p0 + dp];
                let orow = &mut out[dp * n..(dp + 1) * n];
                for (o, &bx) in orow.iter_mut().zip(brow) {
                    *o = av.mul_add(bx, *o);
                }
            }
        }
    }
}

// --- Runtime dispatch -----------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn have_fma() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

macro_rules! dispatch {
    ($name:ident, $generic:ident, ($($arg:ident : $ty:ty),*)) => {
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            if have_fma() {
                // SAFETY: the required CPU features were just detected.
                return unsafe { avx::$name($($arg),*) };
            }
            $generic($($arg),*)
        }
    };
}

dispatch!(
    mm_panel,
    mm_panel_generic,
    (
        a: &[f64],
        bp: &[f64],
        out: &mut [f64],
        rows: usize,
        kd: usize,
        n: usize,
        bias: Option<&[f64]>,
        act: ActKind
    )
);

dispatch!(
    mm_nt_panel,
    mm_nt_panel_generic,
    (a: &[f64], b: &[f64], out: &mut [f64], rows: usize, kd: usize, n: usize)
);

dispatch!(
    mm_tn_panel,
    mm_tn_panel_generic,
    (
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
        p0: usize,
        rows: usize,
        m: usize,
        kd_a: usize,
        n: usize
    )
);

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, mul: f64) -> Vec<f64> {
        (0..len).map(|i| (i as f64 * mul).sin()).collect()
    }

    #[test]
    fn act_kind_applies_and_differentiates() {
        for act in [
            ActKind::Identity,
            ActKind::Relu,
            ActKind::LeakyRelu(0.1),
            ActKind::Tanh,
            ActKind::Sigmoid,
        ] {
            for x in [-2.0, -0.5, 0.0, 0.5, 2.0] {
                let y = act.apply(x);
                assert!(y.is_finite());
                // Central finite difference on the activation itself,
                // skipping the ReLU kink where the subgradient is a
                // convention.
                if x.abs() > 1e-3 {
                    let eps = 1e-6;
                    let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                    let ana = act.dact_from_out(y);
                    assert!(
                        (num - ana).abs() < 1e-4,
                        "{act:?} at {x}: numeric {num} vs analytic {ana}"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatched_mm_panel_is_bit_identical_to_generic() {
        // Odd sizes force both remainder rows and remainder columns.
        for (rows, kd, n) in [(1, 1, 1), (5, 9, 11), (13, 17, 23), (32, 64, 40)] {
            let a = seq(rows * kd, 0.37);
            let b = seq(kd * n, 0.61);
            let bias = seq(n, 0.13);
            let bp = pack_b(&b, kd, n);
            for act in [ActKind::Identity, ActKind::Relu, ActKind::Tanh] {
                let mut fast = vec![0.0; rows * n];
                mm_panel(&a, &bp, &mut fast, rows, kd, n, Some(&bias), act);
                let mut slow = vec![0.0; rows * n];
                mm_panel_generic(&a, &bp, &mut slow, rows, kd, n, Some(&bias), act);
                assert_eq!(fast, slow, "mm {rows}x{kd}x{n} {act:?}");
            }
        }
    }

    #[test]
    fn dispatched_nt_and_tn_are_bit_identical_to_generic() {
        for (rows, kd, n) in [(1, 1, 1), (5, 9, 11), (13, 17, 23), (32, 30, 40)] {
            let a = seq(rows * kd, 0.29);
            let b = seq(n * kd, 0.41);
            let mut fast = vec![0.0; rows * n];
            mm_nt_panel(&a, &b, &mut fast, rows, kd, n);
            let mut slow = vec![0.0; rows * n];
            mm_nt_panel_generic(&a, &b, &mut slow, rows, kd, n);
            assert_eq!(fast, slow, "nt {rows}x{kd}x{n}");

            // tn: a is m×kd_a, out rows index a's columns.
            let (m, kd_a, nn) = (kd, rows, n);
            let a2 = seq(m * kd_a, 0.23);
            let b2 = seq(m * nn, 0.53);
            let mut fast = vec![0.0; kd_a * nn];
            mm_tn_panel(&a2, &b2, &mut fast, 0, kd_a, m, kd_a, nn);
            let mut slow = vec![0.0; kd_a * nn];
            mm_tn_panel_generic(&a2, &b2, &mut slow, 0, kd_a, m, kd_a, nn);
            assert_eq!(fast, slow, "tn {m}x{kd_a}x{nn}");
        }
    }

    #[test]
    fn tile_and_remainder_elements_agree() {
        // A 5×11 panel (1-row and 3-col remainders) must equal the plain
        // per-element ascending-k chain bit for bit.
        let (rows, kd, n) = (5usize, 9usize, 11usize);
        let a = seq(rows * kd, 0.37);
        let b = seq(kd * n, 0.61);
        let bp = pack_b(&b, kd, n);
        let mut fast = vec![0.0; rows * n];
        mm_panel(&a, &bp, &mut fast, rows, kd, n, None, ActKind::Identity);
        let mut slow = vec![0.0; rows * n];
        for i in 0..rows {
            for j in 0..n {
                let mut s = 0.0f64;
                for k in 0..kd {
                    s = a[i * kd + k].mul_add(b[k * n + j], s);
                }
                slow[i * n + j] = s;
            }
        }
        assert_eq!(fast, slow);
    }
}
