//! Finite-difference gradient checking.
//!
//! Every autodiff backward rule in [`crate::tape`] is verified against a
//! centered finite difference. The checker rebuilds the graph per
//! perturbation via a user-supplied closure, so it works for any op
//! combination, including index-carrying ops like gather and segment
//! aggregation.

use crate::tape::{Graph, Var};
use crate::tensor::Tensor;

/// Result of a gradient check: max absolute and relative deviations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f64,
    /// Largest relative difference (scaled by magnitude).
    pub max_rel_err: f64,
}

impl GradCheck {
    /// True when both deviations are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Check the gradient of a scalar function of one input tensor.
///
/// `f` receives a fresh [`Graph`] and the input leaf, and must return the
/// scalar loss node. The analytic gradient from `backward` is compared to a
/// centered finite difference with step `eps`.
///
/// # Panics
/// Panics if `f` returns a non-scalar node.
pub fn check_gradient(input: &Tensor, eps: f64, f: impl Fn(&mut Graph, Var) -> Var) -> GradCheck {
    // Analytic gradient.
    let mut g = Graph::new();
    let x = g.leaf(input.clone());
    let loss = f(&mut g, x);
    g.backward(loss).expect("loss must be scalar");
    let analytic = g
        .grad(x)
        .cloned()
        .unwrap_or_else(|| Tensor::zeros(input.rows(), input.cols()));

    let eval = |t: &Tensor| -> f64 {
        let mut g = Graph::new();
        let x = g.leaf(t.clone());
        let loss = f(&mut g, x);
        g.value(loss).item()
    };

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1e-8);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheck {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-5;
    const TOL: f64 = 1e-6;

    fn input() -> Tensor {
        Tensor::from_rows(&[&[0.3, -1.2, 0.7], &[2.1, 0.05, -0.4]])
    }

    #[test]
    fn relu_gradient() {
        let r = check_gradient(&input(), EPS, |g, x| {
            let y = g.relu(x);
            g.sum_all(y)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn leaky_relu_gradient() {
        let r = check_gradient(&input(), EPS, |g, x| {
            let y = g.leaky_relu(x, 0.1);
            g.mean_all(y)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn sigmoid_tanh_softplus_gradients() {
        for op in [0, 1, 2] {
            let r = check_gradient(&input(), EPS, move |g, x| {
                let y = match op {
                    0 => g.sigmoid(x),
                    1 => g.tanh(x),
                    _ => g.softplus(x),
                };
                g.sum_all(y)
            });
            assert!(r.passes(TOL), "op {op}: {r:?}");
        }
    }

    #[test]
    fn matmul_gradient_both_sides() {
        let w = Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.3], &[-0.7, 1.1]]);
        let r = check_gradient(&input(), EPS, move |g, x| {
            let wv = g.constant(w.clone());
            let y = g.matmul(x, wv);
            let s = g.sigmoid(y);
            g.mean_all(s)
        });
        assert!(r.passes(TOL), "{r:?}");
        // And as the right operand.
        let a = Tensor::from_rows(&[&[1.0, -0.5], &[0.2, 0.9]]);
        let rhs = Tensor::from_rows(&[&[0.1, 0.4, -0.2], &[0.6, -0.3, 0.8]]);
        let r = check_gradient(&rhs, EPS, move |g, x| {
            let av = g.constant(a.clone());
            let y = g.matmul(av, x);
            let t = g.tanh(y);
            g.sum_all(t)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn add_row_gradient_for_bias() {
        let bias = Tensor::from_rows(&[&[0.3, -0.6, 0.9]]);
        let r = check_gradient(&bias, EPS, |g, b| {
            let a = g.constant(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
            let y = g.add_row(a, b);
            let s = g.sigmoid(y);
            g.sum_all(s)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn gather_segment_concat_pipeline_gradient() {
        let r = check_gradient(&input(), EPS, |g, x| {
            let gathered = g.gather_rows(x, vec![0, 1, 1, 0]).unwrap();
            let agg = g.segment_mean(gathered, vec![0, 0, 1, 1], 2).unwrap();
            let cat = g.concat_cols(vec![agg, agg]).unwrap();
            let act = g.tanh(cat);
            g.mean_all(act)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn segment_max_gradient() {
        // Avoid exact ties so the argmax subgradient is well-defined at
        // the finite-difference scale.
        let t = Tensor::from_rows(&[&[0.31, -1.2], &[2.1, 0.07], &[-0.4, 0.9]]);
        let r = check_gradient(&t, 1e-6, |g, x| {
            let m = g.segment_max(x, vec![0, 0, 1], 2).unwrap();
            let s = g.sigmoid(m);
            g.sum_all(s)
        });
        assert!(r.passes(1e-5), "{r:?}");
    }

    #[test]
    fn segment_sum_gradient() {
        let r = check_gradient(&input(), EPS, |g, x| {
            let agg = g.segment_sum(x, vec![1, 0], 3).unwrap();
            let s = g.sigmoid(agg);
            g.sum_all(s)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn log_softmax_gradient() {
        let r = check_gradient(&input(), EPS, |g, x| {
            let ls = g.log_softmax(x);
            // Weighted NLL-style objective.
            let w = g.constant(Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0]]));
            let p = g.mul(ls, w);
            let s = g.sum_all(p);
            g.scale(s, -1.0)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn huber_gradient_smooth_region_and_linear_region() {
        let preds = Tensor::from_rows(&[&[0.2, -0.4, 3.0, -5.0]]);
        let r = check_gradient(&preds, EPS, |g, x| {
            let t = g.constant(Tensor::from_rows(&[&[0.0, 0.1, 0.0, 0.0]]));
            let h = g.huber(x, t, 1.0).unwrap();
            g.mean_all(h)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn composite_mlp_like_gradient() {
        let r = check_gradient(&input(), EPS, |g, x| {
            let w1 = g.constant(Tensor::from_rows(&[
                &[0.2, -0.1],
                &[0.5, 0.7],
                &[-0.3, 0.4],
            ]));
            let b1 = g.constant(Tensor::from_rows(&[&[0.05, -0.05]]));
            let h = g.matmul(x, w1);
            let h = g.add_row(h, b1);
            let h = g.relu(h);
            let w2 = g.constant(Tensor::from_rows(&[&[1.0], &[-1.0]]));
            let o = g.matmul(h, w2);
            let sp = g.softplus(o);
            g.mean_all(sp)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn fused_linear_act_gradients_all_sides() {
        use crate::kernels::ActKind;
        let w0 = Tensor::from_rows(&[&[0.2, -0.1], &[0.5, 0.7], &[-0.3, 0.4]]);
        let b0 = Tensor::from_rows(&[&[0.15, -0.25]]);
        for act in [
            ActKind::Identity,
            ActKind::Relu,
            ActKind::LeakyRelu(0.1),
            ActKind::Sigmoid,
            ActKind::Tanh,
        ] {
            // d/dx through the fused op.
            let (w, b) = (w0.clone(), b0.clone());
            let r = check_gradient(&input(), EPS, move |g, x| {
                let wv = g.constant_copied(&w);
                let bv = g.constant_copied(&b);
                let y = g.linear_act(x, wv, bv, act);
                g.mean_all(y)
            });
            assert!(r.passes(TOL), "{act:?} dX: {r:?}");
            // d/dw.
            let xi = input();
            let b = b0.clone();
            let r = check_gradient(&w0, EPS, move |g, wv| {
                let x = g.constant_copied(&xi);
                let bv = g.constant_copied(&b);
                let y = g.linear_act(x, wv, bv, act);
                g.mean_all(y)
            });
            assert!(r.passes(TOL), "{act:?} dW: {r:?}");
            // d/db.
            let xi = input();
            let w = w0.clone();
            let r = check_gradient(&b0, EPS, move |g, bv| {
                let x = g.constant_copied(&xi);
                let wv = g.constant_copied(&w);
                let y = g.linear_act(x, wv, bv, act);
                g.mean_all(y)
            });
            assert!(r.passes(TOL), "{act:?} db: {r:?}");
        }
    }

    #[test]
    fn fused_linear_act_matches_unfused_gradient() {
        use crate::kernels::ActKind;
        // The analytic gradients of the fused op and the unfused chain must
        // both pass the same finite-difference check on the same function.
        let w0 = Tensor::from_rows(&[&[0.4, -0.6], &[0.1, 0.9], &[-0.8, 0.3]]);
        let b0 = Tensor::from_rows(&[&[0.05, -0.1]]);
        let (w, b) = (w0.clone(), b0.clone());
        let fused = check_gradient(&input(), EPS, move |g, x| {
            let wv = g.constant_copied(&w);
            let bv = g.constant_copied(&b);
            let y = g.linear_act(x, wv, bv, ActKind::Tanh);
            g.sum_all(y)
        });
        let unfused = check_gradient(&input(), EPS, move |g, x| {
            let wv = g.constant_copied(&w0);
            let bv = g.constant_copied(&b0);
            let mm = g.matmul(x, wv);
            let z = g.add_row(mm, bv);
            let y = g.tanh(z);
            g.sum_all(y)
        });
        assert!(fused.passes(TOL), "fused: {fused:?}");
        assert!(unfused.passes(TOL), "unfused: {unfused:?}");
    }

    #[test]
    fn pooled_segment_ops_gradcheck_after_reset() {
        // Gradients of gather/segment ops must be identical whether the
        // tape runs on fresh allocations or on buffers recycled by reset().
        let run = |g: &mut Graph| -> (Tensor, Tensor) {
            let x = g.leaf_copied(&input());
            let gathered = g.gather_rows(x, vec![0, 1, 1, 0]).unwrap();
            let sum = g.segment_sum(gathered, vec![0, 0, 1, 1], 2).unwrap();
            let mean = g.segment_mean(gathered, vec![1, 0, 1, 0], 2).unwrap();
            let mx = g.segment_max(gathered, vec![0, 1, 0, 1], 2).unwrap();
            let cat = g.concat_cols(vec![sum, mean, mx]).unwrap();
            let act = g.tanh(cat);
            let l = g.mean_all(act);
            g.backward(l).unwrap();
            (g.value(l).clone(), g.grad(x).unwrap().clone())
        };
        let mut g = Graph::new();
        let (l0, d0) = run(&mut g);
        for round in 0..3 {
            g.reset();
            let (l1, d1) = run(&mut g);
            assert_eq!(l0.data(), l1.data(), "loss drifted on reuse round {round}");
            assert_eq!(d0, d1, "gradient drifted on reuse round {round}");
        }
        // And the analytic gradient itself is right.
        let r = check_gradient(&input(), EPS, |g, x| {
            let gathered = g.gather_rows(x, vec![0, 1, 1, 0]).unwrap();
            let sum = g.segment_sum(gathered, vec![0, 0, 1, 1], 2).unwrap();
            let mean = g.segment_mean(gathered, vec![1, 0, 1, 0], 2).unwrap();
            let cat = g.concat_cols(vec![sum, mean]).unwrap();
            let act = g.tanh(cat);
            g.mean_all(act)
        });
        assert!(r.passes(TOL), "{r:?}");
    }

    #[test]
    fn scale_sub_mul_gradients() {
        let r = check_gradient(&input(), EPS, |g, x| {
            let y = g.scale(x, -2.5);
            let z = g.sub(x, y);
            let w = g.mul(z, x);
            g.mean_all(w)
        });
        assert!(r.passes(TOL), "{r:?}");
    }
}
