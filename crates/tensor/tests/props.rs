//! Property-based tests for the tensor/autodiff substrate.

use proptest::prelude::*;
use relgraph_tensor::gradcheck::check_gradient;
use relgraph_tensor::{set_baseline_matmul, Graph, Tensor};

fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..5, 1usize..5).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f64..3.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data))
    })
}

/// A compatible `(A: m×k, B: k×n)` pair with dims large enough to cross the
/// blocked/parallel kernel's flop threshold on some cases.
fn matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..80, 1usize..80, 1usize..80).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-2.0f64..2.0, m * k)
                .prop_map(move |d| Tensor::from_vec(m, k, d)),
            proptest::collection::vec(-2.0f64..2.0, k * n)
                .prop_map(move |d| Tensor::from_vec(k, n, d)),
        )
    })
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape());
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_shapes_compose((a, b, c) in (1usize..6, 1usize..6, 1usize..6)) {
        let x = Tensor::full(a, b, 1.0);
        let y = Tensor::full(b, c, 2.0);
        let z = x.matmul(&y);
        prop_assert_eq!(z.shape(), (a, c));
        // Every entry is b * 1 * 2.
        prop_assert!(z.data().iter().all(|&v| (v - 2.0 * b as f64).abs() < 1e-12));
    }

    #[test]
    fn transpose_is_involutive(t in small_tensor()) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_transpose_identity(t in small_tensor()) {
        // (AᵀA) is symmetric.
        let ata = t.transpose().matmul(&t);
        let (n, m) = ata.shape();
        prop_assert_eq!(n, m);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((ata.get(i, j) - ata.get(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn activation_chain_gradients_check(t in small_tensor()) {
        let r = check_gradient(&t, 1e-5, |g, x| {
            let a = g.tanh(x);
            let b = g.sigmoid(a);
            let c = g.softplus(b);
            g.mean_all(c)
        });
        prop_assert!(r.passes(1e-5), "{r:?}");
    }

    #[test]
    fn linear_layer_gradients_check(t in small_tensor()) {
        let cols = t.cols();
        let w = Tensor::full(cols, 3, 0.37);
        let r = check_gradient(&t, 1e-5, move |g, x| {
            let wv = g.leaf(w.clone());
            let y = g.matmul(x, wv);
            let z = g.relu(y);
            g.sum_all(z)
        });
        prop_assert!(r.passes(1e-5), "{r:?}");
    }

    #[test]
    fn segment_mean_preserves_total_when_uniform(rows in 1usize..8, segs in 1usize..4) {
        // All rows to one segment: mean of all rows.
        let t = Tensor::full(rows, 2, 3.5);
        let mut g = Graph::new();
        let x = g.constant(t);
        let m = g.segment_mean(x, vec![0; rows], segs).unwrap();
        prop_assert!((g.value(m).get(0, 0) - 3.5).abs() < 1e-12);
        for s in 1..segs {
            prop_assert_eq!(g.value(m).get(s, 0), 0.0);
        }
    }

    #[test]
    fn sum_all_equals_manual_sum(t in small_tensor()) {
        let mut g = Graph::new();
        let x = g.constant(t.clone());
        let s = g.sum_all(x);
        prop_assert!((g.value(s).item() - t.sum()).abs() < 1e-9);
    }

    #[test]
    fn backward_gradients_are_finite(t in small_tensor()) {
        let mut g = Graph::new();
        let x = g.leaf(t);
        let a = g.leaky_relu(x, 0.01);
        let b = g.mul(a, a);
        let l = g.mean_all(b);
        g.backward(l).unwrap();
        prop_assert!(g.grad(x).unwrap().all_finite());
    }

    #[test]
    fn microkernel_matmul_matches_naive_to_rounding((a, b) in matmul_pair()) {
        // The FMA microkernel fuses each multiply-add into a single
        // rounding, so it is *more* accurate than the naive two-rounding
        // loop — the two agree to accumulated rounding error, not bitwise.
        // (Bit-identity across thread counts and vs the fused epilogue is
        // asserted in tests/parallel_determinism.rs, where the thread
        // count can be controlled without racing other tests.)
        prop_assert!(max_abs_diff(&a.matmul(&b), &a.matmul_naive(&b)) <= 1e-9);
    }

    #[test]
    fn fused_transpose_kernels_match_materialized((a, b) in matmul_pair()) {
        // A·Bᵀ via the fused kernel vs transposing B and multiplying.
        let bt = b.transpose();
        prop_assert!(max_abs_diff(&a.matmul_nt(&bt), &a.matmul(&b)) <= 1e-10);
        // Aᵀ·C via the fused kernel vs transposing A and multiplying
        // (C = A·B shares A's row count, as matmul_tn requires).
        let c = a.matmul(&b);
        prop_assert!(
            max_abs_diff(&a.matmul_tn(&c), &a.transpose().matmul(&c)) <= 1e-10
        );
    }

    #[test]
    fn fused_backward_matches_baseline_backward((a, b) in matmul_pair()) {
        // Gradients through the fused backward (matmul_nt / matmul_tn, no
        // materialized transposes) vs the pre-optimization path.
        let run = |baseline: bool| {
            set_baseline_matmul(baseline);
            let mut g = Graph::new();
            let x = g.leaf(a.clone());
            let w = g.leaf(b.clone());
            let y = g.matmul(x, w);
            let l = g.sum_all(y);
            g.backward(l).unwrap();
            let out = (g.grad(x).unwrap().clone(), g.grad(w).unwrap().clone());
            set_baseline_matmul(false);
            out
        };
        let (dx_new, dw_new) = run(false);
        let (dx_old, dw_old) = run(true);
        prop_assert!(max_abs_diff(&dx_new, &dx_old) <= 1e-10);
        prop_assert!(max_abs_diff(&dw_new, &dw_old) <= 1e-10);
    }

    #[test]
    fn gather_rows_matches_manual(t in small_tensor(), seed in 0usize..100) {
        let n = t.rows();
        let idx: Vec<usize> = (0..4).map(|k| (seed + k) % n).collect();
        let mut g = Graph::new();
        let x = g.constant(t.clone());
        let got = g.gather_rows(x, idx.clone()).unwrap();
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.value(got).row(r), t.row(i));
        }
    }
}
