//! Property-based tests for graph construction and temporal sampling.

use proptest::prelude::*;
use relgraph_graph::{
    EdgeTypeId, HeteroGraph, HeteroGraphBuilder, NodeTypeId, SamplerConfig, Seed, TemporalSampler,
};

/// A random two-type graph: `a` (entities) and `b` (events), with edges
/// a→b and b→a carrying random times.
fn random_graph(n_a: usize, n_b: usize, edges: &[(usize, usize, i64)]) -> HeteroGraph {
    let mut builder = HeteroGraphBuilder::new();
    let a = builder.add_node_type("a", n_a);
    let b = builder.add_node_type("b", n_b);
    let fwd = builder.add_edge_type("fwd", a, b);
    let rev = builder.add_edge_type("rev", b, a);
    builder.set_node_times(b, (0..n_b).map(|i| i as i64 * 10).collect());
    for &(s, d, t) in edges {
        builder.add_edge(fwd, s % n_a, d % n_b, t);
        builder.add_edge(rev, d % n_b, s % n_a, t);
    }
    builder.finish().unwrap()
}

fn edges_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, i64)>)> {
    (1usize..8, 1usize..12).prop_flat_map(|(n_a, n_b)| {
        proptest::collection::vec((0..n_a, 0..n_b, 0i64..1000), 0..60)
            .prop_map(move |e| (n_a, n_b, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_conservation((n_a, n_b, edges) in edges_strategy()) {
        let g = random_graph(n_a, n_b, &edges);
        // Both directions materialize every edge exactly once.
        prop_assert_eq!(g.total_edges(), edges.len() * 2);
        let fwd = g.edge_type_by_name("fwd").unwrap();
        let sum_deg: usize = (0..n_a).map(|i| g.out_degree(fwd, i)).sum();
        prop_assert_eq!(sum_deg, edges.len());
    }

    #[test]
    fn neighbor_lists_sorted_by_time((n_a, n_b, edges) in edges_strategy()) {
        let g = random_graph(n_a, n_b, &edges);
        for et in 0..g.num_edge_types() {
            let e = EdgeTypeId(et);
            let n_src = g.num_nodes(g.edge_type(e).src);
            for i in 0..n_src {
                let times: Vec<i64> = g.neighbors(e, i).map(|(_, t)| t).collect();
                prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn visible_prefix_matches_filter(
        (n_a, n_b, edges) in edges_strategy(),
        cutoff in 0i64..1000,
    ) {
        let g = random_graph(n_a, n_b, &edges);
        let fwd = g.edge_type_by_name("fwd").unwrap();
        for i in 0..n_a {
            let visible: Vec<(usize, i64)> = g.neighbors_before(fwd, i, cutoff).collect();
            let manual: Vec<(usize, i64)> =
                g.neighbors(fwd, i).filter(|&(_, t)| t <= cutoff).collect();
            prop_assert_eq!(visible, manual);
            // Windowed degree helper agrees with the prefix count.
            prop_assert_eq!(
                g.degree_between(fwd, i, i64::MIN, cutoff),
                g.neighbors_before(fwd, i, cutoff).count()
            );
        }
    }

    #[test]
    fn sampler_temporal_invariant(
        (n_a, n_b, edges) in edges_strategy(),
        anchor in 0i64..1200,
        fanout in 1usize..6,
    ) {
        let g = random_graph(n_a, n_b, &edges);
        let sampler = TemporalSampler::new(&g, SamplerConfig::new(vec![fanout, fanout]));
        let seeds: Vec<Seed> = (0..n_a)
            .map(|i| Seed { node_type: NodeTypeId(0), node: i, time: anchor })
            .collect();
        let sub = sampler.sample(&seeds);
        // Invariant 1: no non-seed node postdates its anchor.
        let b_ty = 1;
        for (l, &node) in sub.nodes[b_ty].iter().enumerate() {
            prop_assert!(g.node_time(NodeTypeId(b_ty), node) <= sub.anchors[b_ty][l]);
        }
        // Invariant 2: edge endpoints are valid locals.
        for (et, pairs) in sub.edges.iter().enumerate() {
            let meta = g.edge_type(EdgeTypeId(et));
            for &(s, d) in pairs {
                prop_assert!((s as usize) < sub.nodes[meta.src.0].len());
                prop_assert!((d as usize) < sub.nodes[meta.dst.0].len());
            }
        }
        // Invariant 3: per-(node, edge-type) fanout is respected per hop.
        // (Total over hops may repeat edge types, so check each seed's
        // direct fanout only: the seed's out-edges per edge type.)
        for &sl in &sub.seed_locals {
            for (et, pairs) in sub.edges.iter().enumerate() {
                let meta = g.edge_type(EdgeTypeId(et));
                if meta.src.0 != 0 {
                    continue;
                }
                let direct = pairs.iter().filter(|&&(s, _)| s as usize == sl).count();
                prop_assert!(direct <= fanout, "seed fanout exceeded: {direct} > {fanout}");
            }
        }
        // Invariant 4: every seed is present.
        prop_assert_eq!(sub.seed_locals.len(), n_a);
    }

    #[test]
    fn leaky_sampler_supersets_temporal(
        (n_a, n_b, edges) in edges_strategy(),
        anchor in 0i64..1000,
    ) {
        let g = random_graph(n_a, n_b, &edges);
        let seeds = vec![Seed { node_type: NodeTypeId(0), node: 0, time: anchor }];
        let temporal = TemporalSampler::new(&g, SamplerConfig::new(vec![100]));
        let leaky = TemporalSampler::new(&g, SamplerConfig::new(vec![100]).leaky());
        let t_nodes = temporal.sample(&seeds).total_nodes();
        let l_nodes = leaky.sample(&seeds).total_nodes();
        prop_assert!(l_nodes >= t_nodes);
    }

    #[test]
    fn degree_features_are_monotone_in_window(
        (n_a, n_b, edges) in edges_strategy(),
        anchor in 0i64..1000,
    ) {
        let g = random_graph(n_a, n_b, &edges);
        let sampler = TemporalSampler::new(&g, SamplerConfig::new(vec![3]));
        let sub = sampler.sample(&[Seed { node_type: NodeTypeId(0), node: 0, time: anchor }]);
        // DEGREE_WINDOWS_DAYS = [7, 30, 90, all]: counts must be
        // non-decreasing across widening windows, per edge type.
        let nw = relgraph_graph::sampler::DEGREE_WINDOWS_DAYS.len();
        for per_node in &sub.degrees {
            for degs in per_node {
                for et in 0..degs.len() / nw {
                    for w in 1..nw {
                        prop_assert!(degs[et * nw + w] >= degs[et * nw + w - 1]);
                    }
                }
            }
        }
    }
}
