//! # relgraph-graph
//!
//! Heterogeneous **temporal** graphs: the representation the
//! databases-as-graphs pipeline compiles a relational database into.
//!
//! * node types and edge types are first-class ([`NodeTypeId`],
//!   [`EdgeTypeId`]); each edge type connects one source node type to one
//!   destination node type (an FK direction or its reverse);
//! * adjacency is stored per edge type in CSR form, with a timestamp per
//!   edge recording *when the edge came into existence* ([`HeteroGraph`]);
//! * nodes carry a creation timestamp and a dense feature vector
//!   ([`features::FeatureMatrix`]);
//! * [`sampler::TemporalSampler`] extracts k-hop subgraphs around seed nodes
//!   such that **no sampled node or edge postdates the seed's anchor time**
//!   — the leakage-safety property the paper's training protocol relies on.
//!
//! ## Example
//!
//! ```
//! use relgraph_graph::{HeteroGraphBuilder, ALWAYS_VISIBLE};
//!
//! let mut b = HeteroGraphBuilder::new();
//! let user = b.add_node_type("user", 2);
//! let order = b.add_node_type("order", 3);
//! let placed = b.add_edge_type("placed", user, order);
//! b.set_node_times(user, vec![0, 0]);
//! b.set_node_times(order, vec![10, 20, 30]);
//! b.add_edge(placed, 0, 0, 10);
//! b.add_edge(placed, 0, 1, 20);
//! b.add_edge(placed, 1, 2, 30);
//! let g = b.finish().unwrap();
//! assert_eq!(g.num_nodes(user), 2);
//! assert_eq!(g.out_degree(placed, 0), 2);
//! let _ = ALWAYS_VISIBLE;
//! ```

mod csr;
pub mod error;
pub mod features;
pub mod hetero;
pub mod sampler;

pub use error::{GraphError, GraphResult};
pub use features::FeatureMatrix;
pub use hetero::{
    EdgeTypeId, EdgeTypeMeta, HeteroGraph, HeteroGraphBuilder, NodeTypeId, ALWAYS_VISIBLE,
};
pub use sampler::{SampledSubgraph, SamplerConfig, Seed, TemporalSampler};
