//! Heterogeneous temporal graph storage (typed CSR adjacency).

use std::collections::HashMap;

use rayon::prelude::*;

use crate::csr::Csr;
use crate::error::{GraphError, GraphResult};
use crate::features::FeatureMatrix;

/// Identifier of a node type (index into the graph's type registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeTypeId(pub usize);

/// Identifier of an edge type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeTypeId(pub usize);

/// Timestamp assigned to edges/nodes that exist "from the beginning"
/// (static dimension tables without a time column).
pub const ALWAYS_VISIBLE: i64 = i64::MIN;

/// Metadata of one edge type: a named relation from one node type to one
/// node type (one FK direction or its reverse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTypeMeta {
    /// Relation name, e.g. `orders.customer_id->customers` or its reverse.
    pub name: String,
    /// Source node type.
    pub src: NodeTypeId,
    /// Destination node type.
    pub dst: NodeTypeId,
}

/// A heterogeneous temporal graph. Build with [`HeteroGraphBuilder`];
/// after construction the adjacency indexes are immutable except through
/// [`HeteroGraph::extend_edges`], which rebuilds only the touched edge
/// type's CSR.
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    node_type_names: Vec<String>,
    node_counts: Vec<usize>,
    /// Creation timestamp per node, per type ([`ALWAYS_VISIBLE`] if static).
    node_times: Vec<Vec<i64>>,
    /// Feature matrix per node type.
    features: Vec<FeatureMatrix>,
    edge_types: Vec<EdgeTypeMeta>,
    /// Timestamp-sorted CSR per edge type, built once in
    /// [`HeteroGraphBuilder::finish`] and cached for the graph's lifetime.
    adjacency: Vec<Csr>,
    /// Per node type: the edge types whose source is that type. Lets the
    /// sampler visit only relevant relations instead of scanning every
    /// edge type per frontier node.
    by_src: Vec<Vec<EdgeTypeId>>,
}

fn index_by_src(num_node_types: usize, edge_types: &[EdgeTypeMeta]) -> Vec<Vec<EdgeTypeId>> {
    let mut by_src = vec![Vec::new(); num_node_types];
    for (i, et) in edge_types.iter().enumerate() {
        by_src[et.src.0].push(EdgeTypeId(i));
    }
    by_src
}

impl HeteroGraph {
    /// Number of node types.
    pub fn num_node_types(&self) -> usize {
        self.node_type_names.len()
    }

    /// Number of edge types.
    pub fn num_edge_types(&self) -> usize {
        self.edge_types.len()
    }

    /// Name of a node type.
    pub fn node_type_name(&self, t: NodeTypeId) -> &str {
        &self.node_type_names[t.0]
    }

    /// Find a node type by name.
    pub fn node_type_by_name(&self, name: &str) -> Option<NodeTypeId> {
        self.node_type_names
            .iter()
            .position(|n| n == name)
            .map(NodeTypeId)
    }

    /// Find an edge type by name.
    pub fn edge_type_by_name(&self, name: &str) -> Option<EdgeTypeId> {
        self.edge_types
            .iter()
            .position(|e| e.name == name)
            .map(EdgeTypeId)
    }

    /// Metadata of an edge type.
    pub fn edge_type(&self, e: EdgeTypeId) -> &EdgeTypeMeta {
        &self.edge_types[e.0]
    }

    /// All edge types.
    pub fn edge_types(&self) -> &[EdgeTypeMeta] {
        &self.edge_types
    }

    /// Number of nodes of a type.
    pub fn num_nodes(&self, t: NodeTypeId) -> usize {
        self.node_counts[t.0]
    }

    /// Total nodes across all types.
    pub fn total_nodes(&self) -> usize {
        self.node_counts.iter().sum()
    }

    /// Total edges across all edge types.
    pub fn total_edges(&self) -> usize {
        self.adjacency.iter().map(Csr::len).sum()
    }

    /// Number of edges of one type.
    pub fn num_edges(&self, e: EdgeTypeId) -> usize {
        self.adjacency[e.0].len()
    }

    /// Edge types whose source node type is `t` (precomputed index).
    pub fn edge_types_from(&self, t: NodeTypeId) -> &[EdgeTypeId] {
        &self.by_src[t.0]
    }

    /// Creation timestamp of a node.
    pub fn node_time(&self, t: NodeTypeId, i: usize) -> i64 {
        self.node_times[t.0][i]
    }

    /// Features for a node type.
    pub fn features(&self, t: NodeTypeId) -> &FeatureMatrix {
        &self.features[t.0]
    }

    /// Out-degree of node `i` under edge type `e` (ignoring time).
    pub fn out_degree(&self, e: EdgeTypeId, i: usize) -> usize {
        self.adjacency[e.0].all(i).0.len()
    }

    /// All `(neighbor, edge_time)` pairs of node `i` under edge type `e`,
    /// sorted by time ascending.
    pub fn neighbors(&self, e: EdgeTypeId, i: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        let (ns, ts) = self.adjacency[e.0].all(i);
        ns.iter().zip(ts).map(|(&n, &t)| (n as usize, t))
    }

    /// Neighbors of node `i` whose edge time is `≤ t` (the temporally
    /// visible prefix), sorted by time ascending.
    pub fn neighbors_before(
        &self,
        e: EdgeTypeId,
        i: usize,
        t: i64,
    ) -> impl Iterator<Item = (usize, i64)> + '_ {
        let (ns, ts) = self.adjacency[e.0].visible(i, t);
        ns.iter().zip(ts).map(|(&n, &t)| (n as usize, t))
    }

    /// Node `i`'s full neighbor list under edge type `e`, as borrowed
    /// `(neighbors, times)` slices sorted by time ascending (no allocation).
    pub fn neighbor_slices(&self, e: EdgeTypeId, i: usize) -> (&[u32], &[i64]) {
        self.adjacency[e.0].all(i)
    }

    /// Node `i`'s temporally visible neighbor prefix (edge time `≤ t`)
    /// under edge type `e`, as borrowed slices (no allocation). This is the
    /// sampler's hot-path accessor: one binary search, zero copies.
    pub fn visible_slices(&self, e: EdgeTypeId, i: usize, t: i64) -> (&[u32], &[i64]) {
        self.adjacency[e.0].visible(i, t)
    }

    /// Number of edges of type `e` out of node `i` with time in `(lo, hi]`.
    pub fn degree_between(&self, e: EdgeTypeId, i: usize, lo: i64, hi: i64) -> usize {
        self.adjacency[e.0].degree_between(i, lo, hi)
    }

    /// Iterate every `(src, dst, time)` edge of type `e`. This is a full
    /// scan — kept for whole-graph passes and as the un-indexed baseline in
    /// benchmarks; point queries should use [`Self::visible_slices`].
    pub fn edges_of(&self, e: EdgeTypeId) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        self.adjacency[e.0].iter()
    }

    /// Append edges to an existing edge type, rebuilding that edge type's
    /// cached CSR (and only that one — other edge types' indexes are
    /// untouched). Endpoints are validated like in the builder.
    pub fn extend_edges(
        &mut self,
        e: EdgeTypeId,
        edges: &[(usize, usize, i64)],
    ) -> GraphResult<()> {
        if edges.is_empty() {
            return Ok(());
        }
        let meta = self.edge_types[e.0].clone();
        let n_src = self.node_counts[meta.src.0];
        let n_dst = self.node_counts[meta.dst.0];
        let mut extra = Vec::with_capacity(edges.len());
        for &(s, d, t) in edges {
            if s >= n_src {
                return Err(GraphError::NodeOutOfRange {
                    node_type: self.node_type_names[meta.src.0].clone(),
                    index: s,
                    count: n_src,
                });
            }
            if d >= n_dst {
                return Err(GraphError::NodeOutOfRange {
                    node_type: self.node_type_names[meta.dst.0].clone(),
                    index: d,
                    count: n_dst,
                });
            }
            extra.push((s as u32, d as u32, t));
        }
        self.adjacency[e.0] = self.adjacency[e.0].rebuild_with(n_src, &extra);
        relgraph_obs::add("graph.csr.rebuilds", 1);
        relgraph_obs::add("graph.csr.rebuilt_edges", extra.len() as u64);
        Ok(())
    }

    /// Append nodes to an existing node type: `times` carries one creation
    /// timestamp per new node, and `features` *replaces* the type's feature
    /// matrix (it must cover old and new rows — appending rows generally
    /// shifts normalization statistics for the whole table, so incremental
    /// maintenance re-featurizes the touched type). Every edge type whose
    /// source is `t` gets its CSR grown in place (an O(new nodes) offsets
    /// extension — no rebuild); edges to the new nodes are added separately
    /// via [`Self::extend_edges`].
    pub fn extend_nodes(
        &mut self,
        t: NodeTypeId,
        times: &[i64],
        features: FeatureMatrix,
    ) -> GraphResult<()> {
        let new_count = self.node_counts[t.0] + times.len();
        if features.rows() != new_count {
            return Err(GraphError::FeatureShapeMismatch {
                node_type: self.node_type_names[t.0].clone(),
                expected_rows: new_count,
                got_rows: features.rows(),
            });
        }
        self.node_counts[t.0] = new_count;
        self.node_times[t.0].extend_from_slice(times);
        self.features[t.0] = features;
        // Grow the source dimension of every edge type rooted at `t`.
        // (Clone the id list: growing borrows `self.adjacency` mutably.)
        let out_types = self.by_src[t.0].clone();
        for e in out_types {
            self.adjacency[e.0].grow_src(new_count);
        }
        Ok(())
    }

    /// Structural equality with another graph: identical type registries,
    /// node counts, node times, feature matrices and per-type edge lists
    /// (CSR arrays compared verbatim). This is the invariant the streaming
    /// ingest path maintains against a from-scratch rebuild, and it is
    /// exact — no tolerance.
    pub fn structural_eq(&self, other: &HeteroGraph) -> bool {
        self.node_type_names == other.node_type_names
            && self.node_counts == other.node_counts
            && self.node_times == other.node_times
            && self.features == other.features
            && self.edge_types == other.edge_types
            && self.adjacency == other.adjacency
    }

    /// A one-line per-type summary (used by EXPLAIN output).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (i, name) in self.node_type_names.iter().enumerate() {
            s.push_str(&format!(
                "node type `{name}`: {} nodes, feat dim {}\n",
                self.node_counts[i],
                self.features[i].dim()
            ));
        }
        for (i, et) in self.edge_types.iter().enumerate() {
            s.push_str(&format!(
                "edge type `{}`: {} -> {}, {} edges\n",
                et.name,
                self.node_type_names[et.src.0],
                self.node_type_names[et.dst.0],
                self.adjacency[i].len()
            ));
        }
        s
    }
}

/// Mutable builder for [`HeteroGraph`].
#[derive(Debug, Default)]
pub struct HeteroGraphBuilder {
    node_type_names: Vec<String>,
    node_counts: Vec<usize>,
    node_times: Vec<Vec<i64>>,
    features: Vec<Option<FeatureMatrix>>,
    edge_types: Vec<EdgeTypeMeta>,
    /// Per edge type: (src, dst, time) triples, un-ordered.
    edges: Vec<Vec<(u32, u32, i64)>>,
}

impl HeteroGraphBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a node type with a fixed node count. Node times default to
    /// [`ALWAYS_VISIBLE`]; features default to a zero-width matrix.
    pub fn add_node_type(&mut self, name: impl Into<String>, count: usize) -> NodeTypeId {
        let name = name.into();
        let id = NodeTypeId(self.node_type_names.len());
        self.node_type_names.push(name);
        self.node_counts.push(count);
        self.node_times.push(vec![ALWAYS_VISIBLE; count]);
        self.features.push(None);
        id
    }

    /// Register an edge type from `src` to `dst`.
    pub fn add_edge_type(
        &mut self,
        name: impl Into<String>,
        src: NodeTypeId,
        dst: NodeTypeId,
    ) -> EdgeTypeId {
        let id = EdgeTypeId(self.edge_types.len());
        self.edge_types.push(EdgeTypeMeta {
            name: name.into(),
            src,
            dst,
        });
        self.edges.push(Vec::new());
        id
    }

    /// Set creation timestamps for every node of a type.
    pub fn set_node_times(&mut self, t: NodeTypeId, times: Vec<i64>) {
        self.node_times[t.0] = times;
    }

    /// Set the feature matrix for a node type.
    pub fn set_features(&mut self, t: NodeTypeId, features: FeatureMatrix) {
        self.features[t.0] = Some(features);
    }

    /// Add one directed edge with a visibility timestamp.
    pub fn add_edge(&mut self, e: EdgeTypeId, src: usize, dst: usize, time: i64) {
        self.edges[e.0].push((src as u32, dst as u32, time));
    }

    /// Reserve capacity for edges of one type.
    pub fn reserve_edges(&mut self, e: EdgeTypeId, additional: usize) {
        self.edges[e.0].reserve(additional);
    }

    /// Validate and freeze into an immutable [`HeteroGraph`].
    pub fn finish(self) -> GraphResult<HeteroGraph> {
        // Unique type names.
        let mut seen = HashMap::new();
        for n in &self.node_type_names {
            if seen.insert(n.clone(), ()).is_some() {
                return Err(GraphError::DuplicateTypeName(n.clone()));
            }
        }
        let mut seen = HashMap::new();
        for e in &self.edge_types {
            if seen.insert(e.name.clone(), ()).is_some() {
                return Err(GraphError::DuplicateTypeName(e.name.clone()));
            }
        }
        // Validate node times / features shapes.
        for (i, times) in self.node_times.iter().enumerate() {
            if times.len() != self.node_counts[i] {
                return Err(GraphError::TimesLengthMismatch {
                    node_type: self.node_type_names[i].clone(),
                    expected: self.node_counts[i],
                    got: times.len(),
                });
            }
        }
        let mut features = Vec::with_capacity(self.features.len());
        for (i, f) in self.features.into_iter().enumerate() {
            let f = f.unwrap_or_else(|| FeatureMatrix::zeros(self.node_counts[i], 0));
            if f.rows() != self.node_counts[i] {
                return Err(GraphError::FeatureShapeMismatch {
                    node_type: self.node_type_names[i].clone(),
                    expected_rows: self.node_counts[i],
                    got_rows: f.rows(),
                });
            }
            features.push(f);
        }
        // Build the timestamp-sorted CSR per edge type (validate, then sort
        // and index each edge type independently in parallel).
        type EdgeBatch = (usize, Vec<(u32, u32, i64)>);
        let edge_batches: Vec<EdgeBatch> = self.edges.into_iter().enumerate().collect();
        for (ei, triples) in &edge_batches {
            let meta = &self.edge_types[*ei];
            let n_src = self.node_counts[meta.src.0];
            let n_dst = self.node_counts[meta.dst.0];
            for &(s, d, _) in triples {
                if s as usize >= n_src {
                    return Err(GraphError::NodeOutOfRange {
                        node_type: self.node_type_names[meta.src.0].clone(),
                        index: s as usize,
                        count: n_src,
                    });
                }
                if d as usize >= n_dst {
                    return Err(GraphError::NodeOutOfRange {
                        node_type: self.node_type_names[meta.dst.0].clone(),
                        index: d as usize,
                        count: n_dst,
                    });
                }
            }
        }
        let edge_types = &self.edge_types;
        let node_counts = &self.node_counts;
        let adjacency: Vec<Csr> = edge_batches
            .into_par_iter()
            .map(|(ei, triples)| {
                let n_src = node_counts[edge_types[ei].src.0];
                Csr::from_triples(n_src, triples)
            })
            .collect();
        let by_src = index_by_src(self.node_type_names.len(), &self.edge_types);
        Ok(HeteroGraph {
            node_type_names: self.node_type_names,
            node_counts: self.node_counts,
            node_times: self.node_times,
            features,
            edge_types: self.edge_types,
            adjacency,
            by_src,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("user", 3);
        let o = b.add_node_type("order", 4);
        let e = b.add_edge_type("placed", u, o);
        let r = b.add_edge_type("rev_placed", o, u);
        b.set_node_times(o, vec![10, 20, 30, 40]);
        b.add_edge(e, 0, 1, 20);
        b.add_edge(e, 0, 0, 10);
        b.add_edge(e, 0, 3, 40);
        b.add_edge(e, 2, 2, 30);
        b.add_edge(r, 1, 0, 20);
        b.finish().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let g = demo();
        assert_eq!(g.num_node_types(), 2);
        assert_eq!(g.num_edge_types(), 2);
        assert_eq!(g.total_nodes(), 7);
        assert_eq!(g.total_edges(), 5);
        let u = g.node_type_by_name("user").unwrap();
        assert_eq!(g.num_nodes(u), 3);
        assert!(g.node_type_by_name("nope").is_none());
        assert!(g.edge_type_by_name("placed").is_some());
    }

    #[test]
    fn neighbors_sorted_by_time() {
        let g = demo();
        let e = g.edge_type_by_name("placed").unwrap();
        let ns: Vec<(usize, i64)> = g.neighbors(e, 0).collect();
        assert_eq!(ns, vec![(0, 10), (1, 20), (3, 40)]);
        assert_eq!(g.out_degree(e, 0), 3);
        assert_eq!(g.out_degree(e, 1), 0);
        assert_eq!(g.out_degree(e, 2), 1);
    }

    #[test]
    fn temporal_prefix_is_inclusive() {
        let g = demo();
        let e = g.edge_type_by_name("placed").unwrap();
        let ns: Vec<usize> = g.neighbors_before(e, 0, 20).map(|(n, _)| n).collect();
        assert_eq!(ns, vec![0, 1]);
        let ns: Vec<usize> = g.neighbors_before(e, 0, 19).map(|(n, _)| n).collect();
        assert_eq!(ns, vec![0]);
        let ns: Vec<usize> = g.neighbors_before(e, 0, 5).map(|(n, _)| n).collect();
        assert!(ns.is_empty());
        // ALWAYS_VISIBLE edges survive any cutoff.
        let r = g.edge_type_by_name("rev_placed").unwrap();
        assert_eq!(g.neighbors_before(r, 1, i64::MIN).count(), 0);
        assert_eq!(g.neighbors_before(r, 1, 20).count(), 1);
    }

    #[test]
    fn node_times_default_and_set() {
        let g = demo();
        let u = g.node_type_by_name("user").unwrap();
        let o = g.node_type_by_name("order").unwrap();
        assert_eq!(g.node_time(u, 0), ALWAYS_VISIBLE);
        assert_eq!(g.node_time(o, 2), 30);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("u", 1);
        let e = b.add_edge_type("e", u, u);
        b.add_edge(e, 0, 5, 0);
        assert!(matches!(b.finish(), Err(GraphError::NodeOutOfRange { .. })));
    }

    #[test]
    fn bad_times_length_rejected() {
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("u", 2);
        b.set_node_times(u, vec![0]);
        assert!(matches!(
            b.finish(),
            Err(GraphError::TimesLengthMismatch { .. })
        ));
    }

    #[test]
    fn bad_feature_shape_rejected() {
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("u", 2);
        b.set_features(u, FeatureMatrix::zeros(3, 4));
        assert!(matches!(
            b.finish(),
            Err(GraphError::FeatureShapeMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type("u", 1);
        b.add_node_type("u", 1);
        assert!(matches!(b.finish(), Err(GraphError::DuplicateTypeName(_))));
    }

    #[test]
    fn extend_nodes_grows_counts_and_adjacency() {
        let mut g = demo();
        let o = g.node_type_by_name("order").unwrap();
        let u = g.node_type_by_name("user").unwrap();
        // Orders is the source of "rev_placed"; grow it by two nodes.
        g.extend_nodes(o, &[50, 60], FeatureMatrix::zeros(6, 0))
            .unwrap();
        assert_eq!(g.num_nodes(o), 6);
        assert_eq!(g.node_time(o, 5), 60);
        let r = g.edge_type_by_name("rev_placed").unwrap();
        // New sources exist with empty neighbor lists.
        assert_eq!(g.out_degree(r, 4), 0);
        assert_eq!(g.out_degree(r, 5), 0);
        // Old lists untouched.
        assert_eq!(g.neighbors(r, 1).count(), 1);
        // Edges touching the new nodes can now be appended.
        g.extend_edges(r, &[(5, 2, 60)]).unwrap();
        assert_eq!(g.neighbors(r, 5).collect::<Vec<_>>(), vec![(2, 60)]);
        let e = g.edge_type_by_name("placed").unwrap();
        g.extend_edges(e, &[(2, 5, 60)]).unwrap();
        assert_eq!(g.out_degree(e, 2), 2);
        let _ = u;
    }

    #[test]
    fn extend_nodes_validates_feature_rows() {
        let mut g = demo();
        let o = g.node_type_by_name("order").unwrap();
        assert!(matches!(
            g.extend_nodes(o, &[50], FeatureMatrix::zeros(4, 0)),
            Err(GraphError::FeatureShapeMismatch { .. })
        ));
    }

    #[test]
    fn structural_eq_detects_differences() {
        let g = demo();
        let mut h = g.clone();
        assert!(g.structural_eq(&h));
        let o = h.node_type_by_name("order").unwrap();
        h.extend_nodes(o, &[99], FeatureMatrix::zeros(5, 0))
            .unwrap();
        assert!(!g.structural_eq(&h));
    }

    #[test]
    fn incremental_build_matches_scratch_build() {
        // Build the demo graph, then extend it to a larger graph, and
        // compare against building the larger graph from scratch.
        let mut g = demo();
        let u = g.node_type_by_name("user").unwrap();
        let o = g.node_type_by_name("order").unwrap();
        let e = g.edge_type_by_name("placed").unwrap();
        g.extend_nodes(o, &[50], FeatureMatrix::zeros(5, 0))
            .unwrap();
        g.extend_edges(e, &[(1, 4, 50)]).unwrap();

        let mut b = HeteroGraphBuilder::new();
        let u2 = b.add_node_type("user", 3);
        let o2 = b.add_node_type("order", 5);
        let e2 = b.add_edge_type("placed", u2, o2);
        let r2 = b.add_edge_type("rev_placed", o2, u2);
        b.set_node_times(o2, vec![10, 20, 30, 40, 50]);
        b.add_edge(e2, 0, 1, 20);
        b.add_edge(e2, 0, 0, 10);
        b.add_edge(e2, 0, 3, 40);
        b.add_edge(e2, 2, 2, 30);
        b.add_edge(e2, 1, 4, 50);
        b.add_edge(r2, 1, 0, 20);
        let scratch = b.finish().unwrap();
        assert!(g.structural_eq(&scratch));
        let _ = u;
    }

    #[test]
    fn summary_mentions_types() {
        let g = demo();
        let s = g.summary();
        assert!(s.contains("user") && s.contains("placed"));
    }
}
