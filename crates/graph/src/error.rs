//! Error types for the graph crate.

use std::fmt;

/// Result alias for graph operations.
pub type GraphResult<T> = Result<T, GraphError>;

/// Errors produced while building or querying heterogeneous graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Node type id out of range.
    UnknownNodeType(usize),
    /// Edge type id out of range.
    UnknownEdgeType(usize),
    /// A node index exceeded its type's node count.
    NodeOutOfRange {
        node_type: String,
        index: usize,
        count: usize,
    },
    /// Node timestamps vector length did not match the node count.
    TimesLengthMismatch {
        node_type: String,
        expected: usize,
        got: usize,
    },
    /// Feature matrix shape did not match the node count.
    FeatureShapeMismatch {
        node_type: String,
        expected_rows: usize,
        got_rows: usize,
    },
    /// Duplicate type name.
    DuplicateTypeName(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNodeType(i) => write!(f, "unknown node type #{i}"),
            GraphError::UnknownEdgeType(i) => write!(f, "unknown edge type #{i}"),
            GraphError::NodeOutOfRange {
                node_type,
                index,
                count,
            } => write!(
                f,
                "node index {index} out of range for type `{node_type}` ({count} nodes)"
            ),
            GraphError::TimesLengthMismatch {
                node_type,
                expected,
                got,
            } => write!(
                f,
                "timestamps for `{node_type}`: expected {expected} entries, got {got}"
            ),
            GraphError::FeatureShapeMismatch {
                node_type,
                expected_rows,
                got_rows,
            } => write!(
                f,
                "features for `{node_type}`: expected {expected_rows} rows, got {got_rows}"
            ),
            GraphError::DuplicateTypeName(n) => write!(f, "duplicate type name `{n}`"),
        }
    }
}

impl std::error::Error for GraphError {}
