//! Dense per-node feature storage.

/// A row-major dense matrix of `f32` node features: one row per node of a
/// node type.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// All-zero features for `rows` nodes of dimensionality `dim`.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        FeatureMatrix {
            rows,
            dim,
            data: vec![0.0; rows * dim],
        }
    }

    /// Build from raw row-major data. Panics if `data.len() != rows * dim`.
    pub fn from_rows(rows: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * dim,
            "feature data length must equal rows*dim"
        );
        FeatureMatrix { rows, dim, data }
    }

    /// Number of node rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the feature row for node `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrow the feature row for node `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Raw row-major data, mutable — rows are disjoint `dim`-wide chunks,
    /// so callers can fill them in parallel with `par_chunks_mut(dim)`.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Gather rows by index into a fresh matrix (used when assembling
    /// mini-batches from sampled subgraphs).
    pub fn gather(&self, indices: &[usize]) -> FeatureMatrix {
        let mut out = FeatureMatrix::zeros(indices.len(), self.dim);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_rows() {
        let mut m = FeatureMatrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 2);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn gather_selects_and_reorders() {
        let m = FeatureMatrix::from_rows(3, 2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        let g = m.gather(&[2, 0, 2]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn bad_shape_panics() {
        let _ = FeatureMatrix::from_rows(2, 2, vec![0.0; 3]);
    }
}
