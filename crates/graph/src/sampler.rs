//! Temporal neighbor sampling.
//!
//! [`TemporalSampler`] extracts a k-hop subgraph around each seed node such
//! that every included edge (and node) was already visible at the seed's
//! *anchor time*. This is the leakage-safety property of the paper's
//! training protocol: features for a prediction anchored at time `t` may
//! only come from the past of `t`.
//!
//! Per hop, at most `fanout[h]` neighbors are kept per (node, edge type);
//! when more are visible, the **most recent** ones are kept (recency
//! sampling — deterministic and the common choice for temporal GNNs).
//!
//! Each seed gets its own disjoint subgraph; a batch of seeds is returned as
//! one block-diagonal [`SampledSubgraph`] so that every sampled node has a
//! well-defined anchor time (used for relative-age features downstream).
//!
//! Because seeds are disjoint, a batch fans out across threads: each seed's
//! subgraph is extracted independently and the results are merged in seed
//! order. The merged output is **bit-identical** to a serial run (sampling
//! is recency-based with no randomness, and the merge preserves the
//! traversal order a serial implementation would produce), so thread count
//! never affects results — see `DESIGN.md`'s parallelism section.

use std::collections::HashMap;

use rayon::prelude::*;
use relgraph_obs as obs;

use crate::hetero::{EdgeTypeId, HeteroGraph, NodeTypeId};

/// Look-back windows (days) for the per-node visible-degree features; the
/// last entry (`0`) means all history. Multi-scale counts are what mean
/// aggregation cannot recover on its own.
pub const DEGREE_WINDOWS_DAYS: [i64; 4] = [7, 30, 90, 0];

const SECONDS_PER_DAY: i64 = 86_400;

/// One prediction seed: a node and the anchor time of the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed {
    /// Node type of the seed entity.
    pub node_type: NodeTypeId,
    /// Node index within its type.
    pub node: usize,
    /// Anchor time: only strictly-past-or-equal data may be used.
    pub time: i64,
}

/// Sampler configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Maximum kept neighbors per (node, edge type), one entry per hop.
    /// `fanouts.len()` is the number of hops.
    pub fanouts: Vec<usize>,
    /// When `false`, the time constraint is ignored (deliberately *leaky* —
    /// used only by the leakage-ablation experiment).
    pub temporal: bool,
    /// Emit per-node windowed visible-degree counts (default). Disabled
    /// only by the depth ablation to isolate what raw entity features can
    /// do without any structural signal.
    pub degree_features: bool,
}

impl SamplerConfig {
    /// Temporal sampling with the given per-hop fanouts.
    pub fn new(fanouts: Vec<usize>) -> Self {
        SamplerConfig {
            fanouts,
            temporal: true,
            degree_features: true,
        }
    }

    /// Variant without degree features (for ablations).
    pub fn without_degree_features(mut self) -> Self {
        self.degree_features = false;
        self
    }

    /// Leaky variant of this configuration (for ablations).
    pub fn leaky(mut self) -> Self {
        self.temporal = false;
        self
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.fanouts.len()
    }
}

/// A sampled block-diagonal subgraph over the same type registries as the
/// originating [`HeteroGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledSubgraph {
    /// Per node type: global node index of each local node.
    pub nodes: Vec<Vec<usize>>,
    /// Per node type: anchor time (of the owning seed) per local node.
    pub anchors: Vec<Vec<i64>>,
    /// Per edge type: `(src_local, dst_local)` pairs. Aggregation flows
    /// dst → src (a node gathers messages from its sampled out-neighbors).
    pub edges: Vec<Vec<(u32, u32)>>,
    /// Per node type, per local node: the node's *temporally visible*
    /// out-degree under every edge type and every [`DEGREE_WINDOWS_DAYS`]
    /// window (not capped by fanout), laid out as
    /// `edge_type * NUM_WINDOWS + window`. Mean aggregation is
    /// degree-invariant, so event counts must be explicit features.
    pub degrees: Vec<Vec<Vec<u32>>>,
    /// Node type shared by all seeds.
    pub seed_type: NodeTypeId,
    /// Local index (within `nodes[seed_type]`) of each seed, in input order.
    pub seed_locals: Vec<usize>,
}

impl SampledSubgraph {
    /// Total number of sampled nodes across all types.
    pub fn total_nodes(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }

    /// Total number of sampled edges across all edge types.
    pub fn total_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Samples temporally-consistent k-hop neighborhoods from a [`HeteroGraph`].
#[derive(Debug, Clone)]
pub struct TemporalSampler<'g> {
    graph: &'g HeteroGraph,
    config: SamplerConfig,
}

impl<'g> TemporalSampler<'g> {
    /// Create a sampler over `graph` with `config`.
    pub fn new(graph: &'g HeteroGraph, config: SamplerConfig) -> Self {
        TemporalSampler { graph, config }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Sample a batch of seeds (all of the same node type) into one
    /// block-diagonal subgraph.
    ///
    /// Seeds are expanded in parallel (each seed's subgraph is independent)
    /// and merged in seed order; the result is bit-identical regardless of
    /// thread count.
    ///
    /// # Panics
    /// Panics if seeds have differing node types (a programming error in the
    /// batching layer).
    pub fn sample(&self, seeds: &[Seed]) -> SampledSubgraph {
        let seed_type = seeds.first().map_or(NodeTypeId(0), |s| s.node_type);
        assert!(
            seeds.iter().all(|s| s.node_type == seed_type),
            "all seeds in a batch must share one node type"
        );
        // Observe-only accounting: workers tally locally (no shared atomics
        // on the per-node path); one counter flush per batch below.
        let t0 = obs::enabled().then(std::time::Instant::now);
        let locals: Vec<LocalSample> = seeds.par_iter().map(|seed| self.sample_one(seed)).collect();
        if let Some(t0) = t0 {
            let lookups: u64 = locals.iter().map(|l| l.csr_lookups).sum();
            let hops = self.config.hops();
            let mut hop_nodes = vec![0u64; hops];
            for l in &locals {
                for (h, &n) in l.hop_nodes.iter().enumerate() {
                    hop_nodes[h] += n;
                }
            }
            let sub = self.merge(seeds, seed_type, locals);
            obs::add("graph.sample.batches", 1);
            obs::add("graph.sample.seeds", seeds.len() as u64);
            obs::add("graph.sample.nodes", sub.total_nodes() as u64);
            obs::add("graph.sample.edges", sub.total_edges() as u64);
            obs::add("graph.csr.lookups", lookups);
            for (h, &n) in hop_nodes.iter().enumerate() {
                obs::add(&format!("graph.sample.hop{h}.nodes"), n);
            }
            obs::add("graph.sample_ns", t0.elapsed().as_nanos() as u64);
            sub
        } else {
            self.merge(seeds, seed_type, locals)
        }
    }

    /// Expand one seed into its private subgraph (local indices are 0-based
    /// within this seed's block).
    fn sample_one(&self, seed: &Seed) -> LocalSample {
        let g = self.graph;
        let anchor = seed.time;
        let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); g.num_node_types()];
        let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.num_edge_types()];
        let mut local: HashMap<(usize, usize), u32> = HashMap::new();
        let intern = |ty: NodeTypeId,
                      global: usize,
                      nodes: &mut Vec<Vec<usize>>,
                      local: &mut HashMap<(usize, usize), u32>|
         -> u32 {
            *local.entry((ty.0, global)).or_insert_with(|| {
                let l = nodes[ty.0].len() as u32;
                nodes[ty.0].push(global);
                l
            })
        };
        let seed_local = intern(seed.node_type, seed.node, &mut nodes, &mut local);
        let mut hop_nodes = Vec::with_capacity(self.config.hops());
        let mut csr_lookups = 0u64;

        let mut frontier: Vec<(NodeTypeId, usize, u32)> =
            vec![(seed.node_type, seed.node, seed_local)];
        for &fanout in &self.config.fanouts {
            let mut next = Vec::new();
            for &(ty, global, src_local) in &frontier {
                for &et in g.edge_types_from(ty) {
                    let meta = g.edge_type(et);
                    csr_lookups += 1;
                    // Visible neighbors as a borrowed time-ascending slice
                    // (one binary search, no allocation); keep the most
                    // recent `fanout` — the tail.
                    let (visible, _) = if self.config.temporal {
                        g.visible_slices(et, global, anchor)
                    } else {
                        g.neighbor_slices(et, global)
                    };
                    let start = visible.len().saturating_sub(fanout);
                    for &nbr in &visible[start..] {
                        let nbr = nbr as usize;
                        if self.config.temporal && g.node_time(meta.dst, nbr) > anchor {
                            continue;
                        }
                        let known = local.contains_key(&(meta.dst.0, nbr));
                        let dst_local = intern(meta.dst, nbr, &mut nodes, &mut local);
                        edges[et.0].push((src_local, dst_local));
                        if !known {
                            next.push((meta.dst, nbr, dst_local));
                        }
                    }
                }
            }
            frontier = next;
            hop_nodes.push(frontier.len() as u64);
            if frontier.is_empty() {
                break;
            }
        }
        LocalSample {
            nodes,
            edges,
            hop_nodes,
            csr_lookups,
        }
    }

    /// Concatenate per-seed blocks in seed order, shifting local indices,
    /// then attach the windowed-degree features.
    fn merge(
        &self,
        seeds: &[Seed],
        seed_type: NodeTypeId,
        locals: Vec<LocalSample>,
    ) -> SampledSubgraph {
        let g = self.graph;
        let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); g.num_node_types()];
        let mut anchors: Vec<Vec<i64>> = vec![Vec::new(); g.num_node_types()];
        let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.num_edge_types()];
        let mut seed_locals = Vec::with_capacity(seeds.len());
        for (seed, block) in seeds.iter().zip(locals) {
            let base: Vec<u32> = nodes.iter().map(|v| v.len() as u32).collect();
            // The seed is always the first node interned in its block.
            seed_locals.push(base[seed_type.0] as usize);
            for (t, globals) in block.nodes.into_iter().enumerate() {
                anchors[t].extend(std::iter::repeat_n(seed.time, globals.len()));
                nodes[t].extend(globals);
            }
            for (et, pairs) in block.edges.into_iter().enumerate() {
                let (sb, db) = (
                    base[g.edge_type(EdgeTypeId(et)).src.0],
                    base[g.edge_type(EdgeTypeId(et)).dst.0],
                );
                edges[et].extend(pairs.into_iter().map(|(s, d)| (s + sb, d + db)));
            }
        }
        let degrees = self.windowed_degrees(&nodes, &anchors);
        SampledSubgraph {
            nodes,
            anchors,
            edges,
            degrees,
            seed_type,
            seed_locals,
        }
    }

    /// Windowed visible degrees per sampled node & edge type, computed in
    /// parallel over the nodes of each type.
    fn windowed_degrees(&self, nodes: &[Vec<usize>], anchors: &[Vec<i64>]) -> Vec<Vec<Vec<u32>>> {
        let g = self.graph;
        let nw = DEGREE_WINDOWS_DAYS.len();
        (0..g.num_node_types())
            .map(|t| {
                let pairs: Vec<(usize, i64)> = nodes[t]
                    .iter()
                    .zip(&anchors[t])
                    .map(|(&global, &anchor)| (global, anchor))
                    .collect();
                pairs
                    .par_iter()
                    .with_min_len(64)
                    .map(|&(global, anchor)| {
                        let mut degs = vec![0u32; g.num_edge_types() * nw];
                        if !self.config.degree_features {
                            return degs;
                        }
                        for &et in g.edge_types_from(NodeTypeId(t)) {
                            for (w, &days) in DEGREE_WINDOWS_DAYS.iter().enumerate() {
                                let hi = if self.config.temporal {
                                    anchor
                                } else {
                                    i64::MAX
                                };
                                let lo = if days == 0 {
                                    i64::MIN
                                } else {
                                    hi.saturating_sub(days * SECONDS_PER_DAY)
                                };
                                degs[et.0 * nw + w] = g.degree_between(et, global, lo, hi) as u32;
                            }
                        }
                        degs
                    })
                    .collect()
            })
            .collect()
    }

    /// Reference implementation without the CSR index: visible neighbors
    /// are found by a **linear scan over every edge of the edge type**, and
    /// windowed degrees by linear counting. Semantically identical to
    /// [`Self::sample`] (used by tests to cross-check and by benches as the
    /// pre-index baseline); orders of magnitude slower on large graphs.
    pub fn sample_scan_baseline(&self, seeds: &[Seed]) -> SampledSubgraph {
        let g = self.graph;
        let seed_type = seeds.first().map_or(NodeTypeId(0), |s| s.node_type);
        assert!(
            seeds.iter().all(|s| s.node_type == seed_type),
            "all seeds in a batch must share one node type"
        );
        let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); g.num_node_types()];
        let mut anchors: Vec<Vec<i64>> = vec![Vec::new(); g.num_node_types()];
        let mut edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.num_edge_types()];
        let mut seed_locals = Vec::with_capacity(seeds.len());
        let mut local: HashMap<(usize, usize), u32> = HashMap::new();
        for seed in seeds {
            local.clear();
            let anchor = seed.time;
            let intern = |ty: NodeTypeId,
                          global: usize,
                          nodes: &mut Vec<Vec<usize>>,
                          anchors: &mut Vec<Vec<i64>>,
                          local: &mut HashMap<(usize, usize), u32>|
             -> u32 {
                *local.entry((ty.0, global)).or_insert_with(|| {
                    let l = nodes[ty.0].len() as u32;
                    nodes[ty.0].push(global);
                    anchors[ty.0].push(anchor);
                    l
                })
            };
            let seed_local = intern(seed_type, seed.node, &mut nodes, &mut anchors, &mut local);
            seed_locals.push(seed_local as usize);
            let mut frontier: Vec<(NodeTypeId, usize, u32)> =
                vec![(seed_type, seed.node, seed_local)];
            for &fanout in &self.config.fanouts {
                let mut next = Vec::new();
                for &(ty, global, src_local) in &frontier {
                    for (et, edge_list) in edges.iter_mut().enumerate() {
                        let meta = g.edge_type(EdgeTypeId(et));
                        if meta.src != ty {
                            continue;
                        }
                        // Pre-index behavior: scan the whole edge list.
                        let visible: Vec<usize> = g
                            .edges_of(EdgeTypeId(et))
                            .filter(|&(s, _, t)| {
                                s == global && (!self.config.temporal || t <= anchor)
                            })
                            .map(|(_, d, _)| d)
                            .collect();
                        let start = visible.len().saturating_sub(fanout);
                        for &nbr in &visible[start..] {
                            if self.config.temporal && g.node_time(meta.dst, nbr) > anchor {
                                continue;
                            }
                            let known = local.contains_key(&(meta.dst.0, nbr));
                            let dst_local =
                                intern(meta.dst, nbr, &mut nodes, &mut anchors, &mut local);
                            edge_list.push((src_local, dst_local));
                            if !known {
                                next.push((meta.dst, nbr, dst_local));
                            }
                        }
                    }
                }
                frontier = next;
                if frontier.is_empty() {
                    break;
                }
            }
        }
        // Windowed degrees by linear counting over the full neighbor list.
        let nw = DEGREE_WINDOWS_DAYS.len();
        let mut degrees: Vec<Vec<Vec<u32>>> = Vec::with_capacity(g.num_node_types());
        for t in 0..g.num_node_types() {
            let mut per_node = Vec::with_capacity(nodes[t].len());
            for (l, &global) in nodes[t].iter().enumerate() {
                let anchor = anchors[t][l];
                let mut degs = vec![0u32; g.num_edge_types() * nw];
                if self.config.degree_features {
                    for et in 0..g.num_edge_types() {
                        if g.edge_type(EdgeTypeId(et)).src.0 != t {
                            continue;
                        }
                        let (_, times) = g.neighbor_slices(EdgeTypeId(et), global);
                        for (w, &days) in DEGREE_WINDOWS_DAYS.iter().enumerate() {
                            let hi = if self.config.temporal {
                                anchor
                            } else {
                                i64::MAX
                            };
                            let lo = if days == 0 {
                                i64::MIN
                            } else {
                                hi.saturating_sub(days * SECONDS_PER_DAY)
                            };
                            degs[et * nw + w] =
                                times.iter().filter(|&&x| x > lo && x <= hi).count() as u32;
                        }
                    }
                }
                per_node.push(degs);
            }
            degrees.push(per_node);
        }
        SampledSubgraph {
            nodes,
            anchors,
            edges,
            degrees,
            seed_type,
            seed_locals,
        }
    }
}

/// One seed's private block before merging.
struct LocalSample {
    /// Per node type: global index of each local node.
    nodes: Vec<Vec<usize>>,
    /// Per edge type: `(src_local, dst_local)` within this block.
    edges: Vec<Vec<(u32, u32)>>,
    /// Nodes newly discovered at each hop (observability tally; summed
    /// per batch so the hot path touches no shared atomics).
    hop_nodes: Vec<u64>,
    /// Adjacency-index lookups performed (one per (frontier node, edge
    /// type) pair).
    csr_lookups: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::HeteroGraphBuilder;

    /// user(2) -placed-> order(4) -of-> product(2), plus reverses.
    fn demo() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new();
        let u = b.add_node_type("user", 2);
        let o = b.add_node_type("order", 4);
        let p = b.add_node_type("product", 2);
        let placed = b.add_edge_type("placed", u, o);
        let placed_by = b.add_edge_type("placed_by", o, u);
        let of = b.add_edge_type("of", o, p);
        b.set_node_times(o, vec![10, 20, 30, 40]);
        // user 0 placed orders 0,1,2; user 1 placed order 3.
        for (user, order, t) in [(0, 0, 10), (0, 1, 20), (0, 2, 30), (1, 3, 40)] {
            b.add_edge(placed, user, order, t);
            b.add_edge(placed_by, order, user, t);
        }
        // orders reference products.
        for (order, product, t) in [(0, 0, 10), (1, 1, 20), (2, 0, 30), (3, 1, 40)] {
            b.add_edge(of, order, product, t);
        }
        b.finish().unwrap()
    }

    fn seed(node: usize, time: i64) -> Seed {
        Seed {
            node_type: NodeTypeId(0),
            node,
            time,
        }
    }

    #[test]
    fn respects_anchor_time() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![10, 10]));
        // Anchor 25: user 0 sees orders 0,1 (t=10,20) but not 2 (t=30).
        let sub = s.sample(&[seed(0, 25)]);
        let order_ty = g.node_type_by_name("order").unwrap();
        let mut orders = sub.nodes[order_ty.0].clone();
        orders.sort_unstable();
        assert_eq!(orders, vec![0, 1]);
        // Hop 2 reaches products 0 and 1 via those orders.
        let prod_ty = g.node_type_by_name("product").unwrap();
        assert_eq!(sub.nodes[prod_ty.0].len(), 2);
    }

    #[test]
    fn no_future_nodes_ever_leak() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![10, 10, 10]));
        for t in [5, 15, 25, 35, 45] {
            let sub = s.sample(&[seed(0, t), seed(1, t)]);
            let order_ty = g.node_type_by_name("order").unwrap();
            for &o in &sub.nodes[order_ty.0] {
                assert!(
                    g.node_time(order_ty, o) <= t,
                    "order {o} leaked at anchor {t}"
                );
            }
        }
    }

    #[test]
    fn leaky_mode_sees_the_future() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![10]).leaky());
        let sub = s.sample(&[seed(0, 5)]);
        let order_ty = g.node_type_by_name("order").unwrap();
        // Anchor 5 predates every order, yet leaky sampling returns them.
        assert_eq!(sub.nodes[order_ty.0].len(), 3);
        let temporal = TemporalSampler::new(&g, SamplerConfig::new(vec![10]));
        assert_eq!(temporal.sample(&[seed(0, 5)]).nodes[order_ty.0].len(), 0);
    }

    #[test]
    fn fanout_keeps_most_recent() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![2]));
        let sub = s.sample(&[seed(0, 100)]);
        let order_ty = g.node_type_by_name("order").unwrap();
        let mut orders = sub.nodes[order_ty.0].clone();
        orders.sort_unstable();
        // Orders 1 (t=20) and 2 (t=30) are the two most recent of user 0.
        assert_eq!(orders, vec![1, 2]);
    }

    #[test]
    fn batch_is_block_diagonal_with_per_seed_anchor() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![10]));
        let sub = s.sample(&[seed(0, 15), seed(0, 45)]);
        // Same seed node twice → two separate local copies.
        assert_eq!(sub.seed_locals.len(), 2);
        assert_ne!(sub.seed_locals[0], sub.seed_locals[1]);
        let user_ty = g.node_type_by_name("user").unwrap();
        assert_eq!(sub.anchors[user_ty.0].len(), sub.nodes[user_ty.0].len());
        // First copy anchored at 15, second at 45.
        assert_eq!(sub.anchors[user_ty.0][sub.seed_locals[0]], 15);
        assert_eq!(sub.anchors[user_ty.0][sub.seed_locals[1]], 45);
        let order_ty = g.node_type_by_name("order").unwrap();
        // Anchor 15 sees 1 order; anchor 45 sees 3.
        assert_eq!(sub.nodes[order_ty.0].len(), 4);
    }

    #[test]
    fn edge_endpoints_are_in_range() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![10, 10]));
        let sub = s.sample(&[seed(0, 100), seed(1, 100)]);
        for (et, pairs) in sub.edges.iter().enumerate() {
            let meta = g.edge_type(EdgeTypeId(et));
            for &(a, b) in pairs {
                assert!((a as usize) < sub.nodes[meta.src.0].len());
                assert!((b as usize) < sub.nodes[meta.dst.0].len());
            }
        }
        assert!(sub.total_edges() > 0);
        assert!(sub.total_nodes() > 0);
    }

    #[test]
    fn zero_hops_returns_only_seeds() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![]));
        let sub = s.sample(&[seed(0, 100)]);
        assert_eq!(sub.total_nodes(), 1);
        assert_eq!(sub.total_edges(), 0);
    }

    #[test]
    fn scan_baseline_matches_indexed_sampler() {
        let g = demo();
        for config in [
            SamplerConfig::new(vec![10, 10]),
            SamplerConfig::new(vec![2]),
            SamplerConfig::new(vec![1, 3, 2]),
            SamplerConfig::new(vec![10]).leaky(),
            SamplerConfig::new(vec![10, 10]).without_degree_features(),
        ] {
            let s = TemporalSampler::new(&g, config);
            for anchors in [vec![25i64], vec![15, 45], vec![5, 25, 100, 100]] {
                let seeds: Vec<Seed> = anchors
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| seed(i % 2, t))
                    .collect();
                assert_eq!(s.sample(&seeds), s.sample_scan_baseline(&seeds));
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![10, 10]));
        let seeds: Vec<Seed> = (0..16).map(|i| seed(i % 2, 10 + 7 * i as i64)).collect();
        let old = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let serial = s.sample(&seeds);
        for threads in ["2", "4", "7"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            assert_eq!(s.sample(&seeds), serial, "differs at {threads} threads");
        }
        match old {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }

    #[test]
    fn empty_seed_batch() {
        let g = demo();
        let s = TemporalSampler::new(&g, SamplerConfig::new(vec![5]));
        let sub = s.sample(&[]);
        assert_eq!(sub.total_nodes(), 0);
        assert!(sub.seed_locals.is_empty());
    }
}
