//! Timestamp-sorted CSR adjacency for one edge type.
//!
//! Neighbor lists are sorted by edge timestamp ascending, so the
//! "visible at time `t`" prefix of any node's list is a contiguous range
//! found by binary search — the sampler's hot path borrows these ranges
//! as slices without allocating. The structure is immutable once built;
//! [`Csr::rebuild_with`] produces a fresh index for an edge type whose
//! edge set changed, leaving every other edge type's index untouched.

/// CSR adjacency for one edge type, neighbor lists time-sorted.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Csr {
    /// `offsets[i]..offsets[i + 1]` is node `i`'s slice of `neighbors`.
    offsets: Vec<usize>,
    /// Destination node index (within the destination type).
    neighbors: Vec<u32>,
    /// Edge visibility timestamp, parallel to `neighbors`.
    times: Vec<i64>,
}

impl Csr {
    /// Build from unordered `(src, dst, time)` triples. Sorts by
    /// `(src, time, dst)` so each neighbor list is time-ascending and ties
    /// break deterministically.
    pub(crate) fn from_triples(n_src: usize, mut triples: Vec<(u32, u32, i64)>) -> Self {
        triples.sort_unstable_by_key(|&(s, d, t)| (s, t, d));
        let mut offsets = vec![0usize; n_src + 1];
        for &(s, _, _) in &triples {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n_src {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<u32> = triples.iter().map(|&(_, d, _)| d).collect();
        let times: Vec<i64> = triples.iter().map(|&(_, _, t)| t).collect();
        Csr {
            offsets,
            neighbors,
            times,
        }
    }

    /// Total number of edges.
    pub(crate) fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Node `i`'s full `(neighbors, times)` slices, time-ascending.
    pub(crate) fn all(&self, i: usize) -> (&[u32], &[i64]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.neighbors[lo..hi], &self.times[lo..hi])
    }

    /// Node `i`'s temporally visible prefix: neighbors whose edge time is
    /// `≤ t`, as borrowed slices (no allocation).
    pub(crate) fn visible(&self, i: usize, t: i64) -> (&[u32], &[i64]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        let cut = self.times[lo..hi].partition_point(|&et| et <= t);
        (&self.neighbors[lo..lo + cut], &self.times[lo..lo + cut])
    }

    /// Number of node `i`'s edges with time in `(lo, hi]`.
    pub(crate) fn degree_between(&self, i: usize, lo: i64, hi: i64) -> usize {
        let slice = &self.times[self.offsets[i]..self.offsets[i + 1]];
        slice.partition_point(|&t| t <= hi) - slice.partition_point(|&t| t <= lo)
    }

    /// Iterate every `(src, dst, time)` triple in CSR order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |i| {
            (self.offsets[i]..self.offsets[i + 1])
                .map(move |k| (i, self.neighbors[k] as usize, self.times[k]))
        })
    }

    /// Recover the `(src, dst, time)` triples (in CSR order).
    pub(crate) fn triples(&self) -> Vec<(u32, u32, i64)> {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.offsets.len() - 1 {
            for k in self.offsets[i]..self.offsets[i + 1] {
                out.push((i as u32, self.neighbors[k], self.times[k]));
            }
        }
        out
    }

    /// Rebuild this edge type's index with `extra` edges appended — the
    /// invalidation path when a graph is mutated after construction.
    pub(crate) fn rebuild_with(&self, n_src: usize, extra: &[(u32, u32, i64)]) -> Self {
        let mut triples = self.triples();
        triples.extend_from_slice(extra);
        Csr::from_triples(n_src, triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Csr {
        Csr::from_triples(3, vec![(0, 5, 30), (0, 1, 10), (2, 2, 20), (0, 3, 20)])
    }

    #[test]
    fn lists_are_time_sorted() {
        let c = demo();
        assert_eq!(c.len(), 4);
        let (ns, ts) = c.all(0);
        assert_eq!(ns, &[1, 3, 5]);
        assert_eq!(ts, &[10, 20, 30]);
        assert_eq!(c.all(1).0, &[] as &[u32]);
        assert_eq!(c.all(2).0, &[2]);
    }

    #[test]
    fn visible_prefix_is_inclusive() {
        let c = demo();
        assert_eq!(c.visible(0, 20).0, &[1, 3]);
        assert_eq!(c.visible(0, 19).0, &[1]);
        assert_eq!(c.visible(0, 9).0, &[] as &[u32]);
        assert_eq!(c.visible(0, i64::MAX).0, &[1, 3, 5]);
    }

    #[test]
    fn degree_between_half_open() {
        let c = demo();
        assert_eq!(c.degree_between(0, 10, 30), 2); // (10, 30] → times 20, 30
        assert_eq!(c.degree_between(0, i64::MIN, i64::MAX), 3);
        assert_eq!(c.degree_between(1, i64::MIN, i64::MAX), 0);
    }

    #[test]
    fn rebuild_merges_new_edges() {
        let c = demo();
        let c2 = c.rebuild_with(3, &[(0, 9, 15), (1, 0, 5)]);
        assert_eq!(c2.len(), 6);
        let (ns, ts) = c2.all(0);
        assert_eq!(ns, &[1, 9, 3, 5]);
        assert_eq!(ts, &[10, 15, 20, 30]);
        assert_eq!(c2.all(1).0, &[0]);
        // Round trip: rebuilding with nothing is the identity.
        assert_eq!(c2.rebuild_with(3, &[]), c2);
    }
}
