//! Timestamp-sorted CSR adjacency for one edge type.
//!
//! Neighbor lists are sorted by edge timestamp ascending, so the
//! "visible at time `t`" prefix of any node's list is a contiguous range
//! found by binary search — the sampler's hot path borrows these ranges
//! as slices without allocating. The structure is immutable once built;
//! [`Csr::rebuild_with`] produces a fresh index for an edge type whose
//! edge set changed, leaving every other edge type's index untouched.

/// CSR adjacency for one edge type, neighbor lists time-sorted.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Csr {
    /// `offsets[i]..offsets[i + 1]` is node `i`'s slice of `neighbors`.
    offsets: Vec<usize>,
    /// Destination node index (within the destination type).
    neighbors: Vec<u32>,
    /// Edge visibility timestamp, parallel to `neighbors`.
    times: Vec<i64>,
}

impl Csr {
    /// Build from unordered `(src, dst, time)` triples. Sorts by
    /// `(src, time, dst)` so each neighbor list is time-ascending and ties
    /// break deterministically.
    pub(crate) fn from_triples(n_src: usize, mut triples: Vec<(u32, u32, i64)>) -> Self {
        triples.sort_unstable_by_key(|&(s, d, t)| (s, t, d));
        let mut offsets = vec![0usize; n_src + 1];
        for &(s, _, _) in &triples {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n_src {
            offsets[i + 1] += offsets[i];
        }
        let neighbors: Vec<u32> = triples.iter().map(|&(_, d, _)| d).collect();
        let times: Vec<i64> = triples.iter().map(|&(_, _, t)| t).collect();
        Csr {
            offsets,
            neighbors,
            times,
        }
    }

    /// Total number of edges.
    pub(crate) fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Node `i`'s full `(neighbors, times)` slices, time-ascending.
    pub(crate) fn all(&self, i: usize) -> (&[u32], &[i64]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        (&self.neighbors[lo..hi], &self.times[lo..hi])
    }

    /// Node `i`'s temporally visible prefix: neighbors whose edge time is
    /// `≤ t`, as borrowed slices (no allocation).
    pub(crate) fn visible(&self, i: usize, t: i64) -> (&[u32], &[i64]) {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        let cut = self.times[lo..hi].partition_point(|&et| et <= t);
        (&self.neighbors[lo..lo + cut], &self.times[lo..lo + cut])
    }

    /// Number of node `i`'s edges with time in `(lo, hi]`.
    pub(crate) fn degree_between(&self, i: usize, lo: i64, hi: i64) -> usize {
        let slice = &self.times[self.offsets[i]..self.offsets[i + 1]];
        slice.partition_point(|&t| t <= hi) - slice.partition_point(|&t| t <= lo)
    }

    /// Iterate every `(src, dst, time)` triple in CSR order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |i| {
            (self.offsets[i]..self.offsets[i + 1])
                .map(move |k| (i, self.neighbors[k] as usize, self.times[k]))
        })
    }

    /// Rebuild this edge type's index with `extra` edges appended — the
    /// invalidation path when a graph is mutated after construction.
    ///
    /// The existing arrays are already `(src, time, dst)`-sorted, so only
    /// the delta is sorted and the two runs merged: O(E + B log B) instead
    /// of re-sorting everything. The sort key is total over the whole
    /// triple, which makes the sorted order unique — the merge is therefore
    /// bit-identical to [`Csr::from_triples`] on the combined edge set.
    pub(crate) fn rebuild_with(&self, n_src: usize, extra: &[(u32, u32, i64)]) -> Self {
        let mut extra: Vec<(u32, u32, i64)> = extra.to_vec();
        extra.sort_unstable_by_key(|&(s, d, t)| (s, t, d));

        let old_n_src = self.offsets.len() - 1;
        let mut offsets = Vec::with_capacity(n_src + 1);
        let mut neighbors = Vec::with_capacity(self.len() + extra.len());
        let mut times = Vec::with_capacity(self.len() + extra.len());
        offsets.push(0);
        let mut e = 0; // cursor into the sorted delta
        for s in 0..n_src {
            let (lo, hi) = if s < old_n_src {
                (self.offsets[s], self.offsets[s + 1])
            } else {
                (0, 0)
            };
            let mut k = lo;
            // Two-pointer merge of this source's old run and its delta run,
            // both (time, dst)-ascending.
            while e < extra.len() && extra[e].0 as usize == s {
                let (_, d, t) = extra[e];
                while k < hi && (self.times[k], self.neighbors[k]) <= (t, d) {
                    neighbors.push(self.neighbors[k]);
                    times.push(self.times[k]);
                    k += 1;
                }
                neighbors.push(d);
                times.push(t);
                e += 1;
            }
            neighbors.extend_from_slice(&self.neighbors[k..hi]);
            times.extend_from_slice(&self.times[k..hi]);
            offsets.push(neighbors.len());
        }
        Csr {
            offsets,
            neighbors,
            times,
        }
    }

    /// Grow the source-node dimension to `n_src` without touching any
    /// existing edge: the new trailing nodes start with empty neighbor
    /// lists. Used by streaming ingest when nodes are appended to a type
    /// that is the source of this edge type. No-op if the index already
    /// covers `n_src` sources.
    pub(crate) fn grow_src(&mut self, n_src: usize) {
        let last = *self.offsets.last().expect("offsets is never empty");
        while self.offsets.len() < n_src + 1 {
            self.offsets.push(last);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Csr {
        Csr::from_triples(3, vec![(0, 5, 30), (0, 1, 10), (2, 2, 20), (0, 3, 20)])
    }

    #[test]
    fn lists_are_time_sorted() {
        let c = demo();
        assert_eq!(c.len(), 4);
        let (ns, ts) = c.all(0);
        assert_eq!(ns, &[1, 3, 5]);
        assert_eq!(ts, &[10, 20, 30]);
        assert_eq!(c.all(1).0, &[] as &[u32]);
        assert_eq!(c.all(2).0, &[2]);
    }

    #[test]
    fn visible_prefix_is_inclusive() {
        let c = demo();
        assert_eq!(c.visible(0, 20).0, &[1, 3]);
        assert_eq!(c.visible(0, 19).0, &[1]);
        assert_eq!(c.visible(0, 9).0, &[] as &[u32]);
        assert_eq!(c.visible(0, i64::MAX).0, &[1, 3, 5]);
    }

    #[test]
    fn degree_between_half_open() {
        let c = demo();
        assert_eq!(c.degree_between(0, 10, 30), 2); // (10, 30] → times 20, 30
        assert_eq!(c.degree_between(0, i64::MIN, i64::MAX), 3);
        assert_eq!(c.degree_between(1, i64::MIN, i64::MAX), 0);
    }

    #[test]
    fn rebuild_merges_new_edges() {
        let c = demo();
        let c2 = c.rebuild_with(3, &[(0, 9, 15), (1, 0, 5)]);
        assert_eq!(c2.len(), 6);
        let (ns, ts) = c2.all(0);
        assert_eq!(ns, &[1, 9, 3, 5]);
        assert_eq!(ts, &[10, 15, 20, 30]);
        assert_eq!(c2.all(1).0, &[0]);
        // Round trip: rebuilding with nothing is the identity.
        assert_eq!(c2.rebuild_with(3, &[]), c2);
    }

    /// The merge-based `rebuild_with` must be indistinguishable from
    /// re-sorting the combined edge set, including ties (equal times,
    /// duplicate triples) and a grown source dimension.
    #[test]
    fn rebuild_with_matches_from_triples() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as u32) % m
        };
        for round in 0..200 {
            let old_src = next(5) as usize + 1;
            let n_src = old_src + next(3) as usize;
            let gen = |n: usize, next: &mut dyn FnMut(u32) -> u32, src_cap: usize| {
                (0..n)
                    .map(|_| {
                        (
                            next(src_cap as u32),
                            next(4),
                            // Small time range forces plenty of ties.
                            i64::from(next(5)),
                        )
                    })
                    .collect::<Vec<_>>()
            };
            let n_old = next(12) as usize;
            let n_extra = next(8) as usize;
            let old = gen(n_old, &mut next, old_src);
            let extra = gen(n_extra, &mut next, n_src);
            let base = Csr::from_triples(old_src, old.clone());
            let merged = base.rebuild_with(n_src, &extra);
            let mut all = old;
            all.extend_from_slice(&extra);
            let scratch = Csr::from_triples(n_src, all);
            assert_eq!(merged, scratch, "divergence in round {round}");
        }
    }
}
