//! # relgraph-obs — pipeline observability for relgraph
//!
//! A zero-dependency, thread-safe instrumentation layer used by every stage
//! of the query → train → eval pipeline:
//!
//! * **hierarchical span timers** — [`span`] returns an RAII guard backed by
//!   a monotonic clock; nested spans form a tree that is delivered to the
//!   active sink when the outermost (root) span closes;
//! * **named metrics** — monotonic [`add`] counters, last-value [`gauge`]s,
//!   [`observe`] histograms and ordered [`series_push`] series (e.g.
//!   per-epoch training loss);
//! * **pluggable sinks** — a stderr pretty-printer ([`StderrSink`]), a
//!   JSON-lines writer ([`JsonLinesSink`]) and an in-memory collector for
//!   tests ([`MemorySink`]), selected at runtime via the `RELGRAPH_OBS`
//!   environment variable (see [`init_from_env`]);
//! * **run reports** — [`emit_run_report`] snapshots every metric plus the
//!   recorded stage tree into a machine-readable [`RunReport`] JSON document.
//!
//! Instrumentation is **observe-only**: enabling or disabling it never
//! changes what the pipeline computes, and when disabled every call is a
//! single relaxed atomic load (no allocation, no clock read).
//!
//! ## Example
//!
//! ```
//! use relgraph_obs as obs;
//!
//! let sink = obs::MemorySink::install();
//! {
//!     let _run = obs::span("demo.run");
//!     {
//!         let _load = obs::span("demo.load");
//!         obs::add("demo.rows", 128);
//!     }
//!     obs::gauge("demo.accuracy", 0.93);
//! }
//! let roots = sink.roots();
//! assert_eq!(roots.len(), 1);
//! assert_eq!(roots[0].name, "demo.run");
//! assert_eq!(roots[0].children[0].name, "demo.load");
//! let report = obs::emit_run_report("demo", &[("dataset", "toy")]).unwrap();
//! assert!(report.to_json().contains("\"demo.rows\": 128"));
//! obs::disable();
//! ```

#![warn(missing_docs)]

pub mod json;
mod registry;
mod report;
mod sink;
mod span;

pub use registry::{
    add, counter_to, counter_value, disable, enabled, gauge, init_from_env,
    init_from_env_or_stderr, install, observe, reset, series_push, HistSummary,
};
pub use report::{emit_run_report, RunReport};
pub use sink::{JsonLinesSink, MemorySink, Sink, StderrSink};
pub use span::{record_ns, span, SpanGuard, SpanNode};
