//! Pluggable observability sinks.
//!
//! A [`Sink`] receives completed root span trees as they close and the
//! final [`RunReport`] when a run finishes. Three implementations ship
//! in-tree: [`StderrSink`] (human-readable trees for interactive runs),
//! [`JsonLinesSink`] (machine-readable events appended to a file) and
//! [`MemorySink`] (an in-process collector tests assert against).

use std::fs::File;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::report::RunReport;
use crate::span::SpanNode;

/// Receiver of observability events. Implementations must be thread-safe:
/// spans may close on any thread.
pub trait Sink: Send + Sync {
    /// A root span (and its whole subtree) finished.
    fn on_root(&self, root: &SpanNode);
    /// A run finished and produced its report.
    fn on_report(&self, report: &RunReport);
}

/// Pretty-prints span trees and report summaries to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl StderrSink {
    /// New stderr sink.
    pub fn new() -> Self {
        StderrSink
    }
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.1} µs", ms * 1000.0)
    }
}

fn render_tree(node: &SpanNode, prefix: &str, last: bool, top: bool, out: &mut String) {
    let (branch, cont) = if top {
        ("", "")
    } else if last {
        ("└─ ", "   ")
    } else {
        ("├─ ", "│  ")
    };
    let label = format!("{prefix}{branch}{}", node.name);
    let counters = if node.counters.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = node
            .counters
            .iter()
            .map(|(k, v)| format!("{k}=+{v}"))
            .collect();
        format!("  [{}]", parts.join(" "))
    };
    out.push_str(&format!(
        "{label:<44} {:>10}{counters}\n",
        fmt_ms(node.duration_ms)
    ));
    let n = node.children.len();
    for (i, c) in node.children.iter().enumerate() {
        render_tree(c, &format!("{prefix}{cont}"), i + 1 == n, false, out);
    }
}

impl Sink for StderrSink {
    fn on_root(&self, root: &SpanNode) {
        let mut out = String::from("");
        render_tree(root, "", true, true, &mut out);
        eprint!("{out}");
    }

    fn on_report(&self, report: &RunReport) {
        eprintln!("{}", report.summary());
    }
}

/// Appends one JSON object per line to a file: `{"event":"span",…}` for
/// each completed root tree, then `{"event":"run_report",…}` — the full
/// [`RunReport`] — when the run finishes. Every line parses standalone;
/// the *last* `run_report` line is the document consumers want.
pub struct JsonLinesSink {
    file: Mutex<File>,
}

impl JsonLinesSink {
    /// Create (truncate) `path` and return a sink writing to it.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(JsonLinesSink {
            file: Mutex::new(File::create(path)?),
        })
    }
}

impl Sink for JsonLinesSink {
    fn on_root(&self, root: &SpanNode) {
        let line = format!(
            "{{\"event\": \"span\", \"span\": {}}}\n",
            span_to_json(root)
        );
        let mut f = self.file.lock().unwrap();
        let _ = f.write_all(line.as_bytes());
        let _ = f.flush();
    }

    fn on_report(&self, report: &RunReport) {
        // Reports pretty-print for humans; JSONL needs one physical line.
        // Escaped strings never contain raw newlines, so this is safe.
        let line = format!(
            "{{\"event\": \"run_report\", \"report\": {}}}\n",
            report.to_json().replace('\n', "")
        );
        let mut f = self.file.lock().unwrap();
        let _ = f.write_all(line.as_bytes());
        let _ = f.flush();
    }
}

/// Serialize a span tree as a JSON object.
pub(crate) fn span_to_json(node: &SpanNode) -> String {
    use crate::json::{escape, num};
    let counters: Vec<String> = node
        .counters
        .iter()
        .map(|(k, v)| format!("{}: {v}", escape(k)))
        .collect();
    let children: Vec<String> = node.children.iter().map(span_to_json).collect();
    format!(
        "{{\"name\": {}, \"start_ms\": {}, \"duration_ms\": {}, \
         \"counters\": {{{}}}, \"children\": [{}]}}",
        escape(&node.name),
        num(node.start_ms),
        num(node.duration_ms),
        counters.join(", "),
        children.join(", ")
    )
}

/// In-memory collector for tests: records every root tree and report.
/// Keep the `Arc` returned by [`MemorySink::install`] to inspect events
/// after the instrumented code ran.
#[derive(Debug, Default)]
pub struct MemorySink {
    roots: Mutex<Vec<SpanNode>>,
    reports: Mutex<Vec<RunReport>>,
}

impl MemorySink {
    /// Create a sink, install it globally, and return a handle to it.
    pub fn install() -> Arc<MemorySink> {
        let sink = Arc::new(MemorySink::default());
        crate::registry::install(sink.clone());
        sink
    }

    /// All root span trees seen so far, in completion order.
    pub fn roots(&self) -> Vec<SpanNode> {
        self.roots.lock().unwrap().clone()
    }

    /// All run reports seen so far.
    pub fn reports(&self) -> Vec<RunReport> {
        self.reports.lock().unwrap().clone()
    }

    /// Pre-order span names across all recorded roots — the "stage
    /// sequence" integration tests assert on.
    pub fn span_names(&self) -> Vec<String> {
        self.roots().iter().flat_map(|r| r.names()).collect()
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.roots.lock().unwrap().clear();
        self.reports.lock().unwrap().clear();
    }
}

impl Sink for MemorySink {
    fn on_root(&self, root: &SpanNode) {
        self.roots.lock().unwrap().push(root.clone());
    }

    fn on_report(&self, report: &RunReport) {
        self.reports.lock().unwrap().push(report.clone());
    }
}
