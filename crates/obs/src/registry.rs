//! Global instrumentation state: the enabled flag, the active sink, and the
//! metric registries (counters, gauges, histograms, series).
//!
//! All state lives in one process-wide [`Registry`] reachable through
//! [`registry()`]. The fast path when observability is disabled is a single
//! relaxed atomic load; when enabled, counters are lock-free atomic adds
//! after a read-locked name lookup (names are interned once, then leaked so
//! the hot path can hold a `&'static AtomicU64`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::sink::{JsonLinesSink, MemorySink, Sink, StderrSink};
use crate::span::SpanNode;

/// Summary statistics of a histogram (no bucket boundaries: the pipeline
/// only needs count / sum / extremes / mean).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistSummary {
    fn new() -> Self {
        HistSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

pub(crate) struct Registry {
    enabled: AtomicBool,
    pub(crate) sink: RwLock<Option<Arc<dyn Sink>>>,
    counters: RwLock<HashMap<String, &'static AtomicU64>>,
    /// Gauges store `f64::to_bits`.
    gauges: RwLock<HashMap<String, &'static AtomicU64>>,
    histograms: Mutex<HashMap<String, HistSummary>>,
    series: Mutex<HashMap<String, Vec<f64>>>,
    /// Completed root span trees, oldest first (bounded).
    pub(crate) roots: Mutex<Vec<SpanNode>>,
    /// Monotonic origin for span start offsets.
    pub(crate) epoch: OnceLock<Instant>,
}

/// Cap on retained root trees; pipeline runs produce a handful, and the cap
/// keeps a pathological caller from growing memory without bound.
const MAX_ROOTS: usize = 256;

impl Registry {
    fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(false),
            sink: RwLock::new(None),
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
            series: Mutex::new(HashMap::new()),
            roots: Mutex::new(Vec::new()),
            epoch: OnceLock::new(),
        }
    }

    pub(crate) fn push_root(&self, root: SpanNode) {
        let mut roots = self.roots.lock().unwrap();
        if roots.len() >= MAX_ROOTS {
            roots.remove(0);
        }
        roots.push(root);
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// True when a sink is installed and instrumentation is recording.
#[inline]
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Install a sink and enable instrumentation. Replaces any previous sink.
pub fn install(sink: Arc<dyn Sink>) {
    let r = registry();
    r.epoch.get_or_init(Instant::now);
    *r.sink.write().unwrap() = Some(sink);
    r.enabled.store(true, Ordering::Relaxed);
}

/// Disable instrumentation and drop the active sink. Recorded metrics are
/// kept until [`reset`].
pub fn disable() {
    let r = registry();
    r.enabled.store(false, Ordering::Relaxed);
    *r.sink.write().unwrap() = None;
}

/// Clear every recorded metric, series and root span tree (counters reset
/// to zero). The sink and enabled flag are untouched. Intended for tests
/// and for separating consecutive runs within one process.
pub fn reset() {
    let r = registry();
    for c in r.counters.read().unwrap().values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in r.gauges.read().unwrap().values() {
        g.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
    r.histograms.lock().unwrap().clear();
    r.series.lock().unwrap().clear();
    r.roots.lock().unwrap().clear();
}

/// Configure from the `RELGRAPH_OBS` environment variable:
///
/// * `stderr` — pretty-printed span trees and report summaries on stderr;
/// * `json:<path>` — JSON-lines events appended to `<path>` (the final
///   line of a run is the full [`RunReport`](crate::RunReport));
/// * unset / empty / `off` / `0` — disabled.
///
/// Returns `true` when a sink was installed.
pub fn init_from_env() -> bool {
    match std::env::var("RELGRAPH_OBS") {
        Ok(spec) => init_from_spec(&spec),
        Err(_) => false,
    }
}

/// Like [`init_from_env`], but falls back to the stderr sink when
/// `RELGRAPH_OBS` is unset — used by the examples so a plain
/// `cargo run --example quickstart` shows the per-stage breakdown.
pub fn init_from_env_or_stderr() -> bool {
    match std::env::var("RELGRAPH_OBS") {
        Ok(spec) => init_from_spec(&spec),
        Err(_) => init_from_spec("stderr"),
    }
}

fn init_from_spec(spec: &str) -> bool {
    let spec = spec.trim();
    match spec {
        "" | "off" | "0" | "none" => false,
        "stderr" => {
            install(Arc::new(StderrSink::new()));
            true
        }
        "memory" => {
            MemorySink::install();
            true
        }
        _ => {
            if let Some(path) = spec.strip_prefix("json:") {
                match JsonLinesSink::create(path) {
                    Ok(sink) => {
                        install(Arc::new(sink));
                        true
                    }
                    Err(e) => {
                        eprintln!("relgraph-obs: cannot open `{path}`: {e}; obs disabled");
                        false
                    }
                }
            } else {
                eprintln!(
                    "relgraph-obs: unknown RELGRAPH_OBS value `{spec}` \
                     (expected stderr, json:<path> or off); obs disabled"
                );
                false
            }
        }
    }
}

/// Look up (or intern) a counter cell by name.
fn counter_cell(name: &str) -> &'static AtomicU64 {
    cell_in(&registry().counters, name)
}

fn cell_in(map: &RwLock<HashMap<String, &'static AtomicU64>>, name: &str) -> &'static AtomicU64 {
    if let Some(c) = map.read().unwrap().get(name) {
        return c;
    }
    let mut w = map.write().unwrap();
    w.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
}

/// Add `delta` to the named monotonic counter. No-op when disabled.
#[inline]
pub fn add(name: &str, delta: u64) {
    if enabled() {
        counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }
}

/// Current value of a counter (0 if never written or disabled).
pub fn counter_value(name: &str) -> u64 {
    if !enabled() {
        return 0;
    }
    counter_cell(name).load(Ordering::Relaxed)
}

/// Raise the named monotonic counter to `absolute` (no-op if the counter
/// is already at or above it, or when disabled).
///
/// This is the publish primitive for components that keep their own
/// cumulative statistics (e.g. per-shard serving caches) and periodically
/// mirror an *aggregated total* into the registry: publishing the delta
/// against the counter's current value makes the call idempotent at any
/// cadence, and keeps N shards' stats from double-counting as long as one
/// aggregator owns the counter name.
pub fn counter_to(name: &str, absolute: u64) {
    if !enabled() {
        return;
    }
    let cell = counter_cell(name);
    let current = cell.load(Ordering::Relaxed);
    if absolute > current {
        cell.fetch_add(absolute - current, Ordering::Relaxed);
    }
}

/// Set the named gauge to `value` (last write wins). No-op when disabled.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        cell_in(&registry().gauges, name).store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Record one observation into the named histogram. No-op when disabled.
#[inline]
pub fn observe(name: &str, value: f64) {
    if enabled() {
        let mut h = registry().histograms.lock().unwrap();
        h.entry(name.to_string())
            .or_insert_with(HistSummary::new)
            .observe(value);
    }
}

/// Append `value` to the named ordered series (e.g. per-epoch loss).
/// No-op when disabled.
#[inline]
pub fn series_push(name: &str, value: f64) {
    if enabled() {
        let mut s = registry().series.lock().unwrap();
        s.entry(name.to_string()).or_default().push(value);
    }
}

/// Snapshot of every counter, sorted by name. Zero-valued counters that
/// were never touched are included (they were interned by an earlier read).
pub(crate) fn counters_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = registry()
        .counters
        .read()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

pub(crate) fn gauges_snapshot() -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = registry()
        .gauges
        .read()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

pub(crate) fn histograms_snapshot() -> Vec<(String, HistSummary)> {
    let mut out: Vec<(String, HistSummary)> = registry()
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

pub(crate) fn series_snapshot() -> Vec<(String, Vec<f64>)> {
    let mut out: Vec<(String, Vec<f64>)> = registry()
        .series
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}
