//! Minimal JSON support: string escaping, number formatting, and a small
//! recursive-descent parser used by tests to validate emitted documents.
//!
//! The workspace is offline and dependency-free, so this module hand-rolls
//! the subset of JSON the observability layer needs (objects, arrays,
//! strings, finite numbers, booleans, null). Non-finite numbers are
//! serialized as `null`, matching what strict parsers accept.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted (BTreeMap) for deterministic traversal.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member access for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array view; `None` otherwise.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String view; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape `s` into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a number as JSON (`null` for non-finite values).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip formatting keeps files small and precise.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Parse a JSON document. Returns a human-readable error on malformed
/// input. Trailing garbage after the top-level value is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let doc = r#"{"a": 1.5, "b": [true, null, "x\ny"], "c": {"d": -2}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2.0));
    }

    #[test]
    fn escape_round_trips() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let parsed = parse(&escape(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.0), "1.0");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(f64::NAN), "null");
        assert!(parse(&num(1e300)).unwrap().as_f64().unwrap() > 1e299);
    }
}
