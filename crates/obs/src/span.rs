//! Hierarchical span timers.
//!
//! [`span`] pushes onto a **thread-local** stack and returns an RAII
//! [`SpanGuard`]; dropping the guard pops the stack, computes the elapsed
//! monotonic time and the per-counter deltas observed while the span was
//! open, and buffers the finished span. When the outermost span of the
//! stack closes, the buffered spans are assembled into a [`SpanNode`] tree
//! and handed to the active sink.
//!
//! Rayon worker threads have empty stacks, so spans are opened at stage
//! granularity on the coordinating thread; work fanned out to the pool is
//! attributed to the enclosing stage through the global counters (see
//! `DESIGN.md`, "Observability").

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::{enabled, registry};

/// One completed span, as a tree: the unit sinks receive when a root span
/// closes, and the `stages` entry of a [`RunReport`](crate::RunReport).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Stage name, e.g. `pq.traintable`.
    pub name: String,
    /// Start offset from the first instrumentation event, in milliseconds.
    pub start_ms: f64,
    /// Wall-clock duration in milliseconds (monotonic clock).
    pub duration_ms: f64,
    /// Counter increments observed while this span was open (nonzero only),
    /// sorted by name. Concurrent spans on other threads contribute to the
    /// same global counters, so deltas are attributions, not exact scopes.
    pub counters: Vec<(String, u64)>,
    /// Child spans in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Pre-order traversal of the names in this tree (self first).
    pub fn names(&self) -> Vec<String> {
        let mut out = vec![self.name.clone()];
        for c in &self.children {
            out.extend(c.names());
        }
        out
    }

    /// Find the first node with `name` in pre-order (self included).
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// A finished span pending root-close assembly.
struct Finished {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ms: f64,
    duration_ms: f64,
    counters: Vec<(String, u64)>,
}

/// Finished spans buffered per root id until the root itself closes.
static PENDING: Mutex<Vec<(u64, Vec<Finished>)>> = Mutex::new(Vec::new());

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

struct Active {
    id: u64,
    root: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    counters_at_open: Vec<(String, u64)>,
}

thread_local! {
    static STACK: RefCell<Vec<Active>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span; created by [`span`]. Dropping it closes the
/// span. Guards are meant to be dropped in reverse creation order (bind
/// them to scopes); out-of-order drops close the intervening spans too.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard {
    /// 0 marks an inert guard (observability disabled at creation).
    id: u64,
}

/// Open a span named `name` nested under the current thread's innermost
/// open span. Returns an inert guard when observability is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { id: 0 };
    }
    let r = registry();
    r.epoch.get_or_init(Instant::now); // anchor offsets at first event
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (root, parent) = match stack.last() {
            Some(top) => (top.root, Some(top.id)),
            None => (id, None),
        };
        stack.push(Active {
            id,
            root,
            parent,
            name,
            start: Instant::now(),
            counters_at_open: crate::registry::counters_snapshot(),
        });
    });
    SpanGuard { id }
}

/// Record an already-measured duration as a completed span named `name`
/// under the current innermost span — used for stages whose time is
/// accumulated across many small calls (e.g. neighbor sampling inside the
/// training loop). No-op when disabled or when `ns == 0`.
pub fn record_ns(name: &str, ns: u64) {
    if !enabled() || ns == 0 {
        return;
    }
    let r = registry();
    let epoch = *r.epoch.get_or_init(Instant::now);
    let now_ms = epoch.elapsed().as_secs_f64() * 1e3;
    let duration_ms = ns as f64 / 1e6;
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (root, parent) = STACK.with(|stack| {
        let stack = stack.borrow();
        match stack.last() {
            Some(top) => (Some(top.root), Some(top.id)),
            None => (None, None),
        }
    });
    let finished = Finished {
        id,
        parent,
        name: name.to_string(),
        start_ms: (now_ms - duration_ms).max(0.0),
        duration_ms,
        counters: Vec::new(),
    };
    match root {
        Some(root) => buffer(root, finished),
        None => {
            // No enclosing span: emit as a single-node tree immediately.
            let node = SpanNode {
                name: finished.name,
                start_ms: finished.start_ms,
                duration_ms: finished.duration_ms,
                counters: Vec::new(),
                children: Vec::new(),
            };
            deliver_root(node);
        }
    }
}

fn buffer(root: u64, finished: Finished) {
    let mut pending = PENDING.lock().unwrap();
    match pending.iter_mut().find(|(r, _)| *r == root) {
        Some((_, v)) => v.push(finished),
        None => pending.push((root, vec![finished])),
    }
}

fn deliver_root(node: SpanNode) {
    let r = registry();
    r.push_root(node.clone());
    let sink = r.sink.read().unwrap().clone();
    if let Some(sink) = sink {
        sink.on_root(&node);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let closed: Vec<(Active, Instant)> = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(pos) = stack.iter().position(|a| a.id == self.id) else {
                return Vec::new();
            };
            // Close this span and (defensively) anything opened above it
            // whose guard leaked; innermost first.
            let now = Instant::now();
            stack.drain(pos..).rev().map(|a| (a, now)).collect()
        });
        if closed.is_empty() {
            return;
        }
        let epoch = *registry().epoch.get_or_init(Instant::now);
        for (active, now) in closed {
            let duration_ms = now.duration_since(active.start).as_secs_f64() * 1e3;
            let start_ms = active.start.duration_since(epoch).as_secs_f64() * 1e3;
            let after = crate::registry::counters_snapshot();
            let deltas = counter_deltas(&active.counters_at_open, &after);
            let is_root = active.parent.is_none();
            let finished = Finished {
                id: active.id,
                parent: active.parent,
                name: active.name.to_string(),
                start_ms,
                duration_ms,
                counters: deltas,
            };
            if is_root {
                let spans = {
                    let mut pending = PENDING.lock().unwrap();
                    match pending.iter().position(|(r, _)| *r == active.root) {
                        Some(i) => pending.remove(i).1,
                        None => Vec::new(),
                    }
                };
                deliver_root(assemble(finished, spans));
            } else {
                buffer(active.root, finished);
            }
        }
    }
}

fn counter_deltas(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    let prior: HashMap<&str, u64> = before.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut out: Vec<(String, u64)> = after
        .iter()
        .filter_map(|(k, v)| {
            // Saturating: a mid-span `reset()` may move counters backwards.
            let d = v.saturating_sub(prior.get(k.as_str()).copied().unwrap_or(0));
            (d > 0).then(|| (k.clone(), d))
        })
        .collect();
    out.sort();
    out
}

/// Build the tree: children attach to their parent; orphans (parent closed
/// by the defensive drain before them) attach to the root.
fn assemble(root: Finished, mut spans: Vec<Finished>) -> SpanNode {
    spans.sort_by_key(|f| f.id);
    let mut nodes: Vec<(u64, Option<u64>, SpanNode)> = Vec::with_capacity(spans.len() + 1);
    let to_node = |f: &Finished| SpanNode {
        name: f.name.clone(),
        start_ms: f.start_ms,
        duration_ms: f.duration_ms,
        counters: f.counters.clone(),
        children: Vec::new(),
    };
    for f in &spans {
        nodes.push((f.id, f.parent, to_node(f)));
    }
    // Attach deepest-first: children have larger ids than their parents, so
    // reverse id order folds each subtree before its parent is consumed.
    let mut root_node = to_node(&root);
    while let Some((_, parent, node)) = nodes.pop() {
        let parent = parent.unwrap_or(root.id);
        if parent == root.id {
            root_node.children.push(node);
        } else if let Some((_, _, p)) = nodes.iter_mut().find(|(id, _, _)| *id == parent) {
            p.children.push(node);
        } else {
            root_node.children.push(node);
        }
    }
    // `pop` consumed in reverse id order; restore chronological order.
    sort_children(&mut root_node);
    root_node
}

fn sort_children(node: &mut SpanNode) {
    node.children
        .sort_by(|a, b| a.start_ms.partial_cmp(&b.start_ms).unwrap());
    for c in &mut node.children {
        sort_children(c);
    }
}
