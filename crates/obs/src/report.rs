//! Machine-readable run reports.
//!
//! A [`RunReport`] is the end-of-run snapshot of everything the
//! instrumentation layer recorded: the stage (span) trees, every counter,
//! gauge, histogram and series, plus a caller-supplied fingerprint
//! (dataset, task, model, seed, …) that makes benchmark trajectories
//! diagnosable per-stage rather than end-to-end.
//!
//! Schema (`schema_version` 2):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "name": "relgraph-cli",
//!   "fingerprint": {"dataset": "demo:ecommerce", "task": "classification"},
//!   "threads": 8,
//!   "total_ms": 1234.5,
//!   "stages": [{"name": "pq.execute", "start_ms": 0.1, "duration_ms": 9.0,
//!               "counters": {"pq.anchors": 8}, "children": [...]}],
//!   "counters": {"graph.sample.seeds": 960},
//!   "gauges": {"metric.auroc": 0.81},
//!   "histograms": {"gnn.epoch_ms": {"count": 8, "sum": 80.0,
//!                   "min": 9.0, "max": 12.0, "mean": 10.0}},
//!   "series": {"gnn.train_loss": [0.69, 0.52]},
//!   "cache": {"serve.cache.prediction.hits": 420,
//!             "serve.cache.prediction.misses": 80}
//! }
//! ```
//!
//! Version history: **2** added the top-level `cache` object — a focused
//! view of every counter whose name contains `.cache.` (hits, misses,
//! evictions, invalidations, flushes from the serving engine's two cache
//! tiers; derived hit rates are published as `*.hit_rate` gauges).
//! Version-1 documents are identical minus that key, so readers must treat
//! `cache` as optional — the parser in [`crate::json`] is schema-agnostic
//! and reads both.

use crate::json::{escape, num};
use crate::registry::{
    counters_snapshot, enabled, gauges_snapshot, histograms_snapshot, registry, series_snapshot,
    HistSummary,
};
use crate::sink::span_to_json;
use crate::span::SpanNode;

/// End-of-run snapshot of all recorded instrumentation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Run name (e.g. `relgraph-cli`, `quickstart`).
    pub name: String,
    /// Caller-supplied identity of the run: dataset, task, model, seed, ….
    pub fingerprint: Vec<(String, String)>,
    /// Worker threads available to the process.
    pub threads: usize,
    /// Wall time from the first instrumentation event to this snapshot, ms.
    pub total_ms: f64,
    /// Completed root span trees, oldest first.
    pub stages: Vec<SpanNode>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-value gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistSummary)>,
    /// Ordered series (e.g. per-epoch losses), sorted by name.
    pub series: Vec<(String, Vec<f64>)>,
    /// Cache counters (every counter whose name contains `.cache.`),
    /// sorted by name. Zero-valued entries are kept so hit rates stay
    /// computable. Added in schema version 2.
    pub cache: Vec<(String, u64)>,
}

impl RunReport {
    /// Serialize as a single JSON document (schema above).
    pub fn to_json(&self) -> String {
        let fingerprint: Vec<String> = self
            .fingerprint
            .iter()
            .map(|(k, v)| format!("{}: {}", escape(k), escape(v)))
            .collect();
        let stages: Vec<String> = self.stages.iter().map(span_to_json).collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}: {v}", escape(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{}: {}", escape(k), num(*v)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
                    escape(k),
                    h.count,
                    num(h.sum),
                    num(h.min),
                    num(h.max),
                    num(h.mean())
                )
            })
            .collect();
        let series: Vec<String> = self
            .series
            .iter()
            .map(|(k, vs)| {
                let vals: Vec<String> = vs.iter().map(|&v| num(v)).collect();
                format!("{}: [{}]", escape(k), vals.join(", "))
            })
            .collect();
        let cache: Vec<String> = self
            .cache
            .iter()
            .map(|(k, v)| format!("{}: {v}", escape(k)))
            .collect();
        format!(
            "{{\n  \"schema_version\": 2,\n  \"name\": {},\n  \"fingerprint\": {{{}}},\n  \
             \"threads\": {},\n  \"total_ms\": {},\n  \"stages\": [{}],\n  \
             \"counters\": {{{}}},\n  \"gauges\": {{{}}},\n  \"histograms\": {{{}}},\n  \
             \"series\": {{{}}},\n  \"cache\": {{{}}}\n}}",
            escape(&self.name),
            fingerprint.join(", "),
            self.threads,
            num(self.total_ms),
            stages.join(", "),
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", "),
            series.join(", "),
            cache.join(", ")
        )
    }

    /// Short human-readable summary (what [`StderrSink`](crate::StderrSink)
    /// prints when a report is emitted).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "── run report: {} ({} threads, {:.1} ms total) ──",
            self.name, self.threads, self.total_ms
        );
        for (k, v) in &self.fingerprint {
            out.push_str(&format!("\n  {k}: {v}"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("\n  {k} = {v:.6}"));
        }
        let nonzero = self.counters.iter().filter(|(_, v)| *v > 0).count();
        out.push_str(&format!(
            "\n  {} stage tree(s), {} counter(s), {} series",
            self.stages.len(),
            nonzero,
            self.series.len()
        ));
        out
    }
}

/// Build a [`RunReport`] from everything recorded so far and hand it to
/// the active sink. Returns `None` when observability is disabled.
///
/// `fingerprint` identifies the run (dataset, task, model, seed, …); pass
/// whatever makes the run reproducible.
pub fn emit_run_report(name: &str, fingerprint: &[(&str, &str)]) -> Option<RunReport> {
    if !enabled() {
        return None;
    }
    let r = registry();
    let total_ms = r
        .epoch
        .get()
        .map(|e| e.elapsed().as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    let report = RunReport {
        name: name.to_string(),
        fingerprint: fingerprint
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        total_ms,
        stages: r.roots.lock().unwrap().clone(),
        counters: counters_snapshot()
            .into_iter()
            .filter(|(_, v)| *v > 0)
            .collect(),
        gauges: gauges_snapshot(),
        histograms: histograms_snapshot(),
        series: series_snapshot(),
        cache: counters_snapshot()
            .into_iter()
            .filter(|(k, _)| k.contains(".cache."))
            .collect(),
    };
    let sink = r.sink.read().unwrap().clone();
    if let Some(sink) = sink {
        sink.on_report(&report);
    }
    Some(report)
}
