//! Unit tests for the observability core: span nesting and timing
//! monotonicity, counter merge under concurrent writers, sink routing and
//! report serialization.
//!
//! The registry is process-global, so every test takes `LOCK` and starts
//! from a clean slate.

use std::sync::Mutex;

use relgraph_obs as obs;
use relgraph_obs::json;

static LOCK: Mutex<()> = Mutex::new(());

fn fresh() -> (
    std::sync::Arc<obs::MemorySink>,
    std::sync::MutexGuard<'static, ()>,
) {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sink = obs::MemorySink::install();
    obs::reset();
    (sink, guard)
}

#[test]
fn spans_nest_and_time_monotonically() {
    let (sink, _guard) = fresh();
    {
        let _outer = obs::span("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _mid = obs::span("mid");
            let _inner = obs::span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _second = obs::span("second");
        }
    }
    let roots = sink.roots();
    assert_eq!(roots.len(), 1, "one root tree");
    let outer = &roots[0];
    assert_eq!(outer.name, "outer");
    assert_eq!(outer.children.len(), 2);
    assert_eq!(outer.children[0].name, "mid");
    assert_eq!(outer.children[0].children[0].name, "inner");
    assert_eq!(outer.children[1].name, "second");

    // Timing monotonicity: children start no earlier than their parent,
    // fit inside it, and siblings are ordered by start time.
    let mid = &outer.children[0];
    let inner = &mid.children[0];
    let second = &outer.children[1];
    assert!(outer.duration_ms >= mid.duration_ms);
    assert!(mid.duration_ms >= inner.duration_ms);
    assert!(mid.start_ms >= outer.start_ms);
    assert!(inner.start_ms >= mid.start_ms);
    assert!(second.start_ms >= mid.start_ms + mid.duration_ms - 1e-3);
    assert!(outer.duration_ms >= 4.0, "two 2 ms sleeps inside");
    assert!(
        mid.start_ms + mid.duration_ms <= outer.start_ms + outer.duration_ms + 1e-3,
        "child must end within its parent"
    );
}

#[test]
fn span_counter_deltas_attach_to_the_open_span() {
    let (sink, _guard) = fresh();
    obs::add("pre", 5); // before any span: belongs to no span
    {
        let _outer = obs::span("outer");
        obs::add("outer.work", 2);
        {
            let _inner = obs::span("inner");
            obs::add("inner.work", 3);
        }
    }
    let roots = sink.roots();
    let outer = &roots[0];
    // The outer span saw both increments; the inner only its own.
    assert!(outer.counters.contains(&("outer.work".to_string(), 2)));
    assert!(outer.counters.contains(&("inner.work".to_string(), 3)));
    assert!(!outer.counters.iter().any(|(k, _)| k == "pre"));
    let inner = &outer.children[0];
    assert_eq!(inner.counters, vec![("inner.work".to_string(), 3)]);
}

#[test]
fn counters_merge_under_concurrent_writers() {
    let (_sink, _guard) = fresh();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    obs::add("contended", 1);
                    if i % 97 == 0 {
                        obs::add(&format!("thread.{t}"), 1);
                    }
                }
            });
        }
    });
    assert_eq!(obs::counter_value("contended"), THREADS as u64 * PER_THREAD);
    for t in 0..THREADS {
        assert_eq!(obs::counter_value(&format!("thread.{t}")), 104);
    }
}

#[test]
fn disabled_is_inert() {
    let (_sink, _guard) = fresh();
    obs::disable();
    assert!(!obs::enabled());
    {
        let _s = obs::span("ignored");
        obs::add("ignored", 1);
        obs::gauge("ignored.g", 1.0);
        obs::observe("ignored.h", 1.0);
        obs::series_push("ignored.s", 1.0);
        obs::record_ns("ignored.r", 500);
    }
    assert_eq!(obs::counter_value("ignored"), 0);
    assert!(obs::emit_run_report("off", &[]).is_none());
    // Re-enable: the sink sees nothing from the disabled period.
    let sink = obs::MemorySink::install();
    obs::reset();
    assert!(sink.roots().is_empty());
}

#[test]
fn record_ns_creates_synthetic_children() {
    let (sink, _guard) = fresh();
    {
        let _outer = obs::span("outer");
        obs::record_ns("accumulated", 3_000_000); // 3 ms
    }
    let outer = &sink.roots()[0];
    let acc = outer.find("accumulated").expect("synthetic child present");
    assert!((acc.duration_ms - 3.0).abs() < 1e-9);
    // Standalone (no open span): becomes its own single-node root.
    obs::record_ns("lone", 1_000_000);
    assert!(sink.roots().iter().any(|r| r.name == "lone"));
}

#[test]
fn run_report_serializes_and_parses() {
    let (sink, _guard) = fresh();
    {
        let _s = obs::span("stage.a");
        obs::add("rows", 42);
    }
    obs::gauge("metric.auroc", 0.75);
    obs::observe("epoch_ms", 10.0);
    obs::observe("epoch_ms", 20.0);
    obs::series_push("loss", 0.9);
    obs::series_push("loss", 0.5);
    let report = obs::emit_run_report("test-run", &[("dataset", "toy"), ("seed", "7")]).unwrap();
    assert_eq!(sink.reports().len(), 1);

    let doc = json::parse(&report.to_json()).expect("report JSON parses");
    assert_eq!(doc.get("schema_version").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("name").unwrap().as_str(), Some("test-run"));
    assert_eq!(
        doc.get("fingerprint")
            .unwrap()
            .get("dataset")
            .unwrap()
            .as_str(),
        Some("toy")
    );
    assert_eq!(
        doc.get("counters").unwrap().get("rows").unwrap().as_f64(),
        Some(42.0)
    );
    assert_eq!(
        doc.get("gauges")
            .unwrap()
            .get("metric.auroc")
            .unwrap()
            .as_f64(),
        Some(0.75)
    );
    let hist = doc.get("histograms").unwrap().get("epoch_ms").unwrap();
    assert_eq!(hist.get("count").unwrap().as_f64(), Some(2.0));
    assert_eq!(hist.get("mean").unwrap().as_f64(), Some(15.0));
    let series = doc
        .get("series")
        .unwrap()
        .get("loss")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(series.len(), 2);
    let stages = doc.get("stages").unwrap().as_arr().unwrap();
    assert_eq!(stages[0].get("name").unwrap().as_str(), Some("stage.a"));
    assert_eq!(
        stages[0]
            .get("counters")
            .unwrap()
            .get("rows")
            .unwrap()
            .as_f64(),
        Some(42.0)
    );
}

#[test]
fn run_report_v2_surfaces_cache_counters() {
    let (_sink, _guard) = fresh();
    obs::add("serve.cache.prediction.hits", 420);
    obs::add("serve.cache.prediction.misses", 80);
    obs::add("serve.requests", 500); // not a cache counter
    obs::gauge("serve.cache.prediction.hit_rate", 0.84);
    let report = obs::emit_run_report("serve-run", &[]).unwrap();
    // The struct carries the focused view…
    assert!(report
        .cache
        .contains(&("serve.cache.prediction.hits".to_string(), 420)));
    assert!(!report.cache.iter().any(|(k, _)| k == "serve.requests"));
    // …and the JSON exposes it as the schema-2 top-level object.
    let doc = json::parse(&report.to_json()).unwrap();
    assert_eq!(doc.get("schema_version").unwrap().as_f64(), Some(2.0));
    let cache = doc.get("cache").unwrap();
    assert_eq!(
        cache.get("serve.cache.prediction.misses").unwrap().as_f64(),
        Some(80.0)
    );
    assert_eq!(
        doc.get("gauges")
            .unwrap()
            .get("serve.cache.prediction.hit_rate")
            .unwrap()
            .as_f64(),
        Some(0.84)
    );
}

#[test]
fn run_report_v1_documents_still_parse() {
    // A report emitted before the `cache` section existed: readers must
    // treat the key as optional, not required.
    let v1 = r#"{
  "schema_version": 1,
  "name": "relgraph-cli",
  "fingerprint": {"dataset": "toy"},
  "threads": 1,
  "total_ms": 12.5,
  "stages": [],
  "counters": {"rows": 42},
  "gauges": {},
  "histograms": {},
  "series": {}
}"#;
    let doc = json::parse(v1).expect("version-1 report parses");
    assert_eq!(doc.get("schema_version").unwrap().as_f64(), Some(1.0));
    assert_eq!(
        doc.get("counters").unwrap().get("rows").unwrap().as_f64(),
        Some(42.0)
    );
    assert!(doc.get("cache").is_none(), "cache is absent pre-v2");
}

#[test]
fn json_lines_sink_writes_parseable_events() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join(format!("relgraph_obs_test_{}.jsonl", std::process::id()));
    let path_str = path.to_str().unwrap();
    obs::install(std::sync::Arc::new(
        obs::JsonLinesSink::create(path_str).unwrap(),
    ));
    obs::reset();
    {
        let _s = obs::span("stage.sink");
        obs::add("n", 1);
    }
    obs::emit_run_report("jsonl", &[("k", "v")]).unwrap();
    obs::disable();
    let content = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert!(lines.len() >= 2);
    for line in &lines {
        json::parse(line).unwrap_or_else(|e| panic!("line not JSON ({e}): {line}"));
    }
    let last = json::parse(lines.last().unwrap()).unwrap();
    assert_eq!(last.get("event").unwrap().as_str(), Some("run_report"));
    assert_eq!(
        last.get("report").unwrap().get("name").unwrap().as_str(),
        Some("jsonl")
    );
    let _ = std::fs::remove_file(&path);
}
