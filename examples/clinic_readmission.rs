//! Clinical readmission risk — a task whose signal needs a **two-hop**
//! foreign-key path (patient ← visit ← prescription): risky drugs raise
//! future visit rates, but the drug lives two joins away from the patient.
//!
//! Demonstrates (a) multi-hop join-path resolution in the analyzer, and
//! (b) the depth ablation: a 2-hop GNN vs a 1-hop GNN on the same query.
//!
//! Run with: `cargo run --release --example clinic_readmission`

use relgraph::pq::{execute, ExecConfig};
use relgraph::prelude::*;

fn main() {
    let db = generate_clinic(&ClinicConfig {
        patients: 300,
        seed: 9,
        ..Default::default()
    })
    .expect("generate database");
    println!(
        "clinic database: {} patients, {} visits, {} prescriptions\n",
        db.table("patients").unwrap().len(),
        db.table("visits").unwrap().len(),
        db.table("prescriptions").unwrap().len()
    );

    // Readmission: will this patient have a visit in the next 60 days?
    let query = "PREDICT EXISTS(visits.*, 0, 60) FOR EACH patients.patient_id";
    println!("{query}\n");
    println!("{:<22} {:>8} {:>10}", "model", "auroc", "accuracy");
    let runs: [(&str, ExecConfig); 4] = [
        (
            "gnn (2 hops)",
            ExecConfig {
                epochs: 10,
                fanouts: vec![8, 8],
                ..Default::default()
            },
        ),
        (
            "gnn (1 hop)",
            ExecConfig {
                epochs: 10,
                fanouts: vec![8],
                ..Default::default()
            },
        ),
        ("gbdt", ExecConfig::default()),
        ("trivial", ExecConfig::default()),
    ];
    for (name, mut cfg) in runs {
        let model = if name.starts_with("gnn") { "gnn" } else { name };
        cfg.model = match model {
            "gbdt" => relgraph::pq::ModelChoice::Gbdt,
            "trivial" => relgraph::pq::ModelChoice::Trivial,
            _ => relgraph::pq::ModelChoice::Gnn,
        };
        let outcome = execute(&db, query, &cfg).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        println!(
            "{:<22} {:>8.4} {:>10.4}",
            name,
            outcome.metric("auroc").unwrap_or(f64::NAN),
            outcome.metric("accuracy").unwrap_or(f64::NAN),
        );
    }

    // A two-join-path regression: prescriptions per patient.
    let rx_query = "PREDICT COUNT(prescriptions.*, 0, 90) FOR EACH patients.patient_id \
                    USING model = gnn, epochs = 8";
    let outcome = execute(&db, rx_query, &ExecConfig::default()).expect("rx query");
    println!("\n{}", outcome.explain);
    println!("Prescription-count regression: {}", outcome.summary());
}
