//! Quickstart: generate a synthetic shop database, ask one predictive
//! query, and inspect the compiled plan, test metrics and live predictions.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The per-stage timing tree (parse → traintable → sample → train → eval)
//! prints on stderr; set `RELGRAPH_OBS=json:<path>` for machine-readable
//! span events plus a final run-report document instead.

use relgraph::pq::{execute, ExecConfig, PredictionValue};
use relgraph::prelude::*;

fn main() {
    // 0. Observability: stderr span trees unless RELGRAPH_OBS says otherwise.
    relgraph::obs::init_from_env_or_stderr();

    // 1. A relational database: customers / products / orders / reviews.
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 300,
        products: 40,
        seed: 7,
        ..Default::default()
    })
    .expect("generate database");
    println!("{}", db.summary());

    // 2. One declarative predictive query: "for each customer, will they
    //    place an order in the next 30 days?" — the query alone defines
    //    the entity set, the label, the temporal training table and the
    //    model task.
    let query = "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
                 USING model = gnn, epochs = 8";
    let cfg = ExecConfig {
        fanouts: vec![8, 8],
        hidden_dim: 24,
        ..Default::default()
    };
    let outcome = execute(&db, query, &cfg).expect("execute query");
    relgraph::obs::emit_run_report(
        "quickstart",
        &[
            ("dataset", "demo:ecommerce"),
            ("task", &outcome.task.to_string()),
            ("model", &outcome.model.to_string()),
            ("seed", "7"),
        ],
    );

    // 3. The compiled plan, backtest metrics, and deploy-time answers.
    println!("{}", outcome.explain);
    println!("Backtest: {}", outcome.summary());
    println!("\nFirst 10 live predictions (anchored at the latest DB time):");
    for p in outcome.predictions.iter().take(10) {
        if let PredictionValue::Score(s) = p.value {
            println!(
                "  customer {:>5} → P(order in 30d) = {:.3}",
                p.entity_key.to_string(),
                s
            );
        }
    }
}
