//! Streaming ingest: validate and append live row batches, maintain the
//! graph incrementally, and re-serve a prepared predictive query — without
//! recompiling anything from scratch.
//!
//! Run with: `cargo run --release --example streaming_ingest`
//!
//! The flow mirrors a deployed system: the query is prepared once, the
//! database→graph compilation happens once, and each arriving batch is
//! (1) validated by an ingest policy, (2) applied atomically, (3) folded
//! into the graph as a delta, and (4) served by re-running the prepared
//! query against the updated graph.

use relgraph::db2graph::{build_graph, update_graph, ConvertOptions, GraphCursor};
use relgraph::pq::{ExecConfig, PreparedQuery};
use relgraph::prelude::*;
use relgraph::store::{IngestPolicy, RowBatch};

fn main() {
    relgraph::obs::init_from_env_or_stderr();

    // 1. Yesterday's database: the ecommerce demo truncated at 90% of its
    //    time span. The rows beyond the cut play the role of today's
    //    event stream.
    let full = generate_ecommerce(&EcommerceConfig {
        customers: 300,
        products: 40,
        seed: 7,
        ..Default::default()
    })
    .expect("generate database");
    let (lo, hi) = full.time_span().expect("timed tables");
    let t_cut = hi - (hi - lo) / 10;

    let mut db = Database::new("shop");
    for t in full.tables() {
        db.create_table(t.schema().clone()).unwrap();
    }
    let mut stream = Vec::new();
    for t in full.tables() {
        let event_table = matches!(t.name(), "orders" | "reviews");
        for i in 0..t.len() {
            let row = t.row(i).unwrap();
            match t.row_timestamp(i) {
                Some(rt) if event_table && rt > t_cut => {
                    stream.push((t.name().to_string(), rt, row))
                }
                _ => {
                    db.insert(t.name(), row).unwrap();
                }
            }
        }
    }
    stream.sort_by_key(|&(_, rt, _)| rt);
    println!("{}", db.summary());
    println!("event stream: {} rows after t = {t_cut}", stream.len());

    // 2. Prepare once. Analysis binds schema-level facts only, so the
    //    prepared query stays valid as the data grows.
    let pq = PreparedQuery::prepare(
        &db,
        "PREDICT COUNT(orders.*, 0, 30) > 0 FOR EACH customers.customer_id \
         USING model = gnn, epochs = 6",
        &ExecConfig {
            fanouts: vec![8, 8],
            hidden_dim: 24,
            ..Default::default()
        },
    )
    .expect("prepare query");

    // 3. Compile the graph once; afterwards only deltas are applied.
    let opts = ConvertOptions::default();
    let (mut graph, mut mapping) = build_graph(&db, &opts).expect("compile graph");
    let mut cursor = GraphCursor::capture(&db);

    // 4. Ingest the stream in batches. `coerce_all` accepts late
    //    (out-of-order) events — the CSR re-sorts them into place — and
    //    quarantines anything unfixable instead of failing the batch.
    let policy = IngestPolicy::coerce_all();
    for (day, chunk) in stream.chunks(stream.len().div_ceil(3).max(1)).enumerate() {
        let mut batch = RowBatch::new();
        for (table, _, row) in chunk {
            batch.push(table.clone(), row.clone());
        }
        let report = db.ingest(batch, &policy).expect("validated ingest");
        let delta = update_graph(&db, &mut graph, &mut mapping, &mut cursor, &opts)
            .expect("incremental update");
        println!(
            "batch {day}: {} accepted ({} late), {} quarantined → +{} nodes, +{} edges",
            report.accepted, report.late, report.quarantined, delta.new_nodes, delta.new_edges
        );
    }
    for q in db.quarantine() {
        println!(
            "  quarantined `{}` row {}: {}",
            q.table, q.batch_row, q.reason
        );
    }

    // 5. Serve: the prepared query runs against the incrementally
    //    maintained graph — no database→graph recompilation.
    let outcome = pq.run_on_graph(&db, &graph, &mapping).expect("serve query");
    relgraph::obs::emit_run_report(
        "streaming_ingest",
        &[
            ("dataset", "demo:ecommerce"),
            ("task", &outcome.task.to_string()),
            ("model", &outcome.model.to_string()),
            ("seed", "7"),
        ],
    );
    println!("\nBacktest after ingest: {}", outcome.summary());
}
