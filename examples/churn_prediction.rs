//! Customer-churn prediction: the paper's headline comparison on one task.
//!
//! The same predictive query — "will this customer stay active over the
//! next 30 days?" — is executed with the relational GNN and with three
//! tabular baselines (gradient-boosted trees and logistic regression on
//! hand-style engineered features, plus the class prior), printing an
//! AUROC leaderboard.
//!
//! Run with: `cargo run --release --example churn_prediction`

use relgraph::pq::{execute, ExecConfig};
use relgraph::prelude::*;

fn main() {
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 400,
        products: 50,
        seed: 21,
        ..Default::default()
    })
    .expect("generate database");
    println!(
        "shop database: {} customers, {} orders\n",
        db.table("customers").unwrap().len(),
        db.table("orders").unwrap().len()
    );

    let query = "PREDICT EXISTS(orders.*, 0, 30) FOR EACH customers.customer_id";
    let cfg = ExecConfig {
        epochs: 25,
        fanouts: vec![8, 8],
        ..Default::default()
    };

    println!(
        "{:<12} {:>8} {:>10} {:>10}",
        "model", "auroc", "accuracy", "logloss"
    );
    for model in ["gnn", "gbdt", "logreg", "trivial"] {
        let outcome = execute(&db, &format!("{query} USING model = {model}"), &cfg)
            .unwrap_or_else(|e| panic!("model {model} failed: {e}"));
        println!(
            "{:<12} {:>8.4} {:>10.4} {:>10.4}",
            model,
            outcome.metric("auroc").unwrap_or(f64::NAN),
            outcome.metric("accuracy").unwrap_or(f64::NAN),
            outcome.metric("logloss").unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nExpected shape (paper): gnn ≥ gbdt ≥ logreg > trivial on AUROC — the \
         relational model sees multi-hop signal (product quality via other \
         customers' reviews) that flat features miss."
    );
}
