//! Product recommendation as a predictive query.
//!
//! `LIST_DISTINCT(orders.product_id, 0, 60)` asks: *which products will
//! each customer buy in the next 60 days?* The executor infers a ranking
//! task, trains a two-tower GNN, and is compared against popularity and
//! co-visitation recommenders.
//!
//! Run with: `cargo run --release --example product_recommendation`

use relgraph::pq::{execute, ExecConfig, PredictionValue};
use relgraph::prelude::*;

fn main() {
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 300,
        products: 60,
        seed: 33,
        ..Default::default()
    })
    .expect("generate database");

    let query = "PREDICT LIST_DISTINCT(orders.product_id, 0, 60) \
                 FOR EACH customers.customer_id";
    let cfg = ExecConfig {
        epochs: 30,
        lr: 0.02,
        hidden_dim: 48,
        top_k: 10,
        ..Default::default()
    };

    println!(
        "{:<12} {:>9} {:>11} {:>9}",
        "model", "map@10", "recall@10", "ndcg@10"
    );
    let mut sample: Option<Vec<String>> = None;
    for model in ["gnn", "covisit", "popularity"] {
        let outcome = execute(&db, &format!("{query} USING model = {model}"), &cfg)
            .unwrap_or_else(|e| panic!("model {model} failed: {e}"));
        println!(
            "{:<12} {:>9.4} {:>11.4} {:>9.4}",
            model,
            outcome.metric("map@10").unwrap_or(f64::NAN),
            outcome.metric("recall@10").unwrap_or(f64::NAN),
            outcome.metric("ndcg@10").unwrap_or(f64::NAN),
        );
        if model == "gnn" {
            sample = outcome.predictions.first().map(|p| {
                let items = match &p.value {
                    PredictionValue::Items(items) => {
                        items.iter().map(ToString::to_string).collect()
                    }
                    _ => vec![],
                };
                items
            });
        }
    }
    if let Some(items) = sample {
        println!("\nGNN top-10 for the first customer: {}", items.join(", "));
    }
    println!(
        "\nExpected shape: both learned/heuristic personalized models clearly beat \
         popularity; co-visitation is a notoriously strong heuristic on \
         repeat-purchase domains and can edge out the two-tower GNN — the same \
         finding RelBench reports for its link-prediction tasks."
    );
}
