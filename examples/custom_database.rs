//! Bring your own database: build a schema and rows through the public
//! API (or a `schema.ddl` + CSVs directory), then ask predictive queries —
//! including the multiclass `MODE` form.
//!
//! Run with: `cargo run --release --example custom_database`

use relgraph::pq::{execute, ExecConfig};
use relgraph::store::{render_ddl, DataType, Database, Row, TableSchema, Value};

const DAY: i64 = 86_400;

/// A small streaming service: users watch shows of different genres.
fn build_database() -> Database {
    let mut db = Database::new("streaming");
    db.create_table(
        TableSchema::builder("users")
            .column("user_id", DataType::Int)
            .column("joined_at", DataType::Timestamp)
            .column("plan", DataType::Text)
            .primary_key("user_id")
            .time_column("joined_at")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("watches")
            .column("watch_id", DataType::Int)
            .column("user_id", DataType::Int)
            .column("genre", DataType::Text)
            .column("minutes", DataType::Int)
            .column("watched_at", DataType::Timestamp)
            .primary_key("watch_id")
            .time_column("watched_at")
            .foreign_key("user_id", "users")
            .build()
            .unwrap(),
    )
    .unwrap();

    // 120 users; binge-watchers favour one genre, casual users roam.
    let genres = ["drama", "comedy", "documentary", "anime"];
    let plans = ["free", "basic", "premium"];
    let mut watch_id = 0i64;
    for user in 0..120i64 {
        let joined = (user % 60) * DAY;
        db.insert(
            "users",
            Row::new()
                .push(user)
                .push(Value::Timestamp(joined))
                .push(plans[(user % 3) as usize]),
        )
        .unwrap();
        let favourite = (user % 4) as usize;
        let intensity = 1 + (user % 5); // watches per 10 days
        let mut t = joined;
        while t < 180 * DAY {
            for k in 0..intensity {
                // Favourite genre 70% of the time (deterministic pattern).
                let genre = if (user + k + t / DAY) % 10 < 7 {
                    favourite
                } else {
                    ((user + k) % 4) as usize
                };
                db.insert(
                    "watches",
                    Row::new()
                        .push(watch_id)
                        .push(user)
                        .push(genres[genre])
                        .push(20 + (watch_id % 70))
                        .push(Value::Timestamp(t + k * DAY)),
                )
                .unwrap();
                watch_id += 1;
            }
            t += 10 * DAY;
        }
    }
    db.validate().expect("referential integrity");
    db
}

fn main() {
    let db = build_database();
    println!("{}", db.summary());

    // The same schema as portable DDL (save with `save_database_dir`).
    let schemas: Vec<_> = db.tables().iter().map(|t| t.schema().clone()).collect();
    println!("Portable schema.ddl:\n{}", render_ddl(&schemas));

    let cfg = ExecConfig {
        epochs: 10,
        max_predictions: Some(5),
        ..Default::default()
    };

    // 1. Will this user watch anything next week? (binary)
    let q1 = "PREDICT EXISTS(watches.*, 0, 7) FOR EACH users.user_id USING model = gbdt";
    let out = execute(&db, q1, &cfg).expect("q1");
    println!("Q1 {}\n   → {}\n", q1, out.summary());

    // 2. How many minutes will they watch next month? (regression,
    //    conditional aggregate: long sessions only)
    let q2 = "PREDICT SUM(watches.minutes WHERE minutes > 30, 0, 30) \
              FOR EACH users.user_id USING model = gnn, epochs = 8";
    let out = execute(&db, q2, &cfg).expect("q2");
    println!("Q2 {}\n   → {}\n", q2, out.summary());

    // 3. Which genre will dominate their next month? (multiclass MODE)
    let q3 = "PREDICT MODE(watches.genre, 0, 30) FOR EACH users.user_id USING model = gnn";
    let out = execute(&db, q3, &cfg).expect("q3");
    println!("Q3 {}\n   → {}", q3, out.summary());
    for p in out.predictions.iter().take(5) {
        println!("     user {} → {:?}", p.entity_key, p.value);
    }
}
