//! EXPLAIN-style tour of the predictive query compiler: parse, analyze and
//! print the compiled plan for a range of queries — including the errors
//! the analyzer raises for ill-typed ones — without training any model.
//!
//! Run with: `cargo run --example explain_query`

use relgraph::pq::traintable::TrainTableConfig;
use relgraph::pq::{analyze, build_training_table, explain, parse};
use relgraph::prelude::*;

fn main() {
    // Span trees on stderr show how long each compile stage takes.
    relgraph::obs::init_from_env_or_stderr();
    let db = generate_ecommerce(&EcommerceConfig {
        customers: 120,
        products: 30,
        seed: 2,
        ..Default::default()
    })
    .expect("generate database");

    let queries = [
        // Classification via thresholded count.
        "PREDICT COUNT(orders.order_id, 0, 30) > 0 FOR EACH customers.customer_id",
        // Regression on future spend.
        "PREDICT SUM(orders.amount, 0, 30) FOR EACH customers.customer_id",
        // Recommendation.
        "PREDICT LIST_DISTINCT(orders.product_id, 0, 14) FOR EACH customers.customer_id",
        // Filtered entity set with boolean structure.
        "PREDICT EXISTS(reviews.*, 0, 60) FOR EACH customers.customer_id \
         WHERE region = 'north' OR region = 'south'",
        // Average future rating (skips entities with empty windows).
        "PREDICT AVG(reviews.rating, 0, 90) FOR EACH customers.customer_id",
    ];
    for q in queries {
        println!("─────────────────────────────────────────────────────────");
        let parsed = parse(q).expect("parse");
        let analyzed = analyze(&db, parsed).expect("analyze");
        let table = build_training_table(&db, &analyzed, &TrainTableConfig::default())
            .expect("training table");
        println!("{}", explain(&db, &analyzed, Some(&table)));
    }

    println!("─────────────────────────────────────────────────────────");
    println!("And what the analyzer rejects:\n");
    let bad = [
        "PREDICT COUNT(orders.*, 30, 10) FOR EACH customers.customer_id",
        "PREDICT SUM(customers.region, 0, 30) FOR EACH customers.customer_id",
        "PREDICT COUNT(customers.*, 0, 30) FOR EACH products.product_id",
        "PREDICT COUNT(orders.*, 0, 30) FOR EACH customers.customer_id WHERE bogus = 1",
    ];
    for q in bad {
        let err = parse(q).and_then(|p| analyze(&db, p)).unwrap_err();
        println!("  {q}\n    ✗ {err}\n");
    }
}
